"""Length-prefixed binary wire protocol for the optimizer service.

JSON-lines framing is friendly but it is also the socket transport's
remaining tax: every query round-trips through ``json.loads`` /
``json.dumps`` and a per-query Python dict even though the batcher
already normalizes queries into exactly the numpy buffers
:func:`repro.service.batch.resolve_queries` consumes.  This module is
the lean alternative — struct-packed query arrays in, contiguous
float64 answer arrays plus provenance codes out — and it is the single
source of truth for every frame constant: the server and both clients
import the magic, version, opcodes, and record layouts from here (the
``protocol-drift`` rule of :mod:`repro.check.rules` flags any
redefinition).

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic          b"RPRW"
    4       1     version        WIRE_VERSION (currently 1)
    5       1     opcode         OP_* below
    6       2     reserved       0
    8       4     payload length (<= MAX_FRAME_BYTES)
    12      n     payload

Opcodes and payloads:

``OP_HELLO`` (client -> server)
    Opens a binary session; MUST be the first frame on the connection
    (the leading magic is also how the server distinguishes a binary
    client from a JSON-lines one — anything else falls back to the
    JSON transport byte-for-byte unchanged).  Payload: a UTF-8 JSON
    object, ``{"token": "..."}`` (empty string when no auth is used).
``OP_HELLO_OK`` (server -> client)
    Negotiation answer.  Payload: UTF-8 JSON ``{"version": 1,
    "presets": [...], "default_preset": ..., "max_queries": N}``.  The
    ``presets`` list is the catalog: a query's ``preset`` field is an
    index into it.
``OP_QUERY`` (client -> server)
    Payload: a packed array of :data:`QUERY_DTYPE` records —
    ``(preset: u16, d: u16, m: f64)``, 12 bytes per query, any count
    up to the server's per-request limit.
``OP_RESULT`` (server -> client)
    Payload: ``u32 count`` | ``f64 time_us[count]`` |
    ``u8 source[count]`` (:data:`SOURCE_NAMES` index) |
    ``u8 nparts[count]`` | ``u8 parts[sum(nparts)]`` — answers in
    query order for the matching ``OP_QUERY`` frame.
``OP_ERROR`` (server -> client)
    Payload: UTF-8 message.  The binary analogue of the JSON
    ``{"ok": false}`` document; the session survives unless framing
    itself was lost (bad magic, oversized length, truncation).
``OP_RETRY_LATER`` (server -> client)
    Payload: UTF-8 message.  Admission control shed the matching
    ``OP_QUERY`` frame; nothing was resolved — retry after backoff.

The shard-fabric control plane (:mod:`repro.fabric`) rides the same
framing with its own opcode range (16+).  Control traffic is rare and
schema-evolving, so every fabric payload is a UTF-8 JSON object
(:func:`fabric_payload` / :func:`parse_fabric_payload`):

``OP_JOIN`` / ``OP_JOIN_OK``
    A node registers with the coordinator (node id, advertised
    address, preset catalog, shard inventory); the answer carries the
    routing epoch plus the heartbeat cadence and miss limit the
    coordinator enforces.
``OP_HEARTBEAT`` / ``OP_HEARTBEAT_OK``
    Periodic node liveness plus a stats snapshot (shed counter, p99,
    loaded tables); the answer echoes the current epoch and may carry
    ``{"drain": true}`` to ask the node to drain and exit.
``OP_ROUTES`` / ``OP_ROUTES_OK``
    A client fetches the versioned routing table; the request may
    carry the client's cached ``epoch`` and the answer is
    ``{"unchanged": true}`` when that epoch is still current.
``OP_STATUS`` / ``OP_STATUS_OK``
    The full membership document — every node with state, last-seen
    age, and latest stats (``repro cluster status``).
``OP_DRAIN`` / ``OP_DRAIN_OK``
    Administratively drain one node: it leaves the routing table at
    the next epoch and is told to shut down on its next heartbeat.

Every frame helper here is transport-agnostic bytes-in/bytes-out so
the asyncio server, the blocking client, and the asyncio client share
one codec; :exc:`WireError` carries a ``fatal`` flag separating
recoverable in-band errors (unknown opcode, bad payload) from lost
framing (bad magic, oversized length), mirroring how the JSON
transport treats an overlong line.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.batch import QueryResult

__all__ = [
    "HEADER",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "OP_DRAIN",
    "OP_DRAIN_OK",
    "OP_ERROR",
    "OP_HEARTBEAT",
    "OP_HEARTBEAT_OK",
    "OP_HELLO",
    "OP_HELLO_OK",
    "OP_JOIN",
    "OP_JOIN_OK",
    "OP_QUERY",
    "OP_RESULT",
    "OP_RETRY_LATER",
    "OP_ROUTES",
    "OP_ROUTES_OK",
    "OP_STATUS",
    "OP_STATUS_OK",
    "QUERY_DTYPE",
    "SOURCE_CODES",
    "SOURCE_NAMES",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "decode_query_payload",
    "decode_result_payload",
    "encode_query_records",
    "encode_results",
    "error_frame",
    "fabric_payload",
    "hello_ok_payload",
    "hello_payload",
    "make_query_records",
    "pack_frame",
    "parse_fabric_payload",
    "parse_header",
    "parse_hello",
    "parse_hello_ok",
    "read_frame",
    "read_frame_blocking",
]

#: the four bytes that open every binary frame — and the negotiation
#: sniff: a connection whose first bytes are not this magic is served
#: as JSON lines, unchanged
WIRE_MAGIC = b"RPRW"
#: protocol revision carried in every frame header
WIRE_VERSION = 1
#: frame header: magic, version, opcode, reserved, payload length
HEADER = struct.Struct("<4sBBHI")
HEADER_BYTES = 12
#: payload cap — the binary twin of the JSON transport's 1 MiB line cap
MAX_FRAME_BYTES = 1 << 20

OP_HELLO = 1
OP_HELLO_OK = 2
OP_QUERY = 3
OP_RESULT = 4
OP_ERROR = 5
OP_RETRY_LATER = 6

# -- shard-fabric control plane (16+; JSON payloads, see module doc) --
OP_JOIN = 16
OP_JOIN_OK = 17
OP_HEARTBEAT = 18
OP_HEARTBEAT_OK = 19
OP_ROUTES = 20
OP_ROUTES_OK = 21
OP_STATUS = 22
OP_STATUS_OK = 23
OP_DRAIN = 24
OP_DRAIN_OK = 25

#: one packed query: catalog index, cube dimension, block size
QUERY_DTYPE = np.dtype([("preset", "<u2"), ("d", "<u2"), ("m", "<f8")])

#: provenance codes on the wire; index = code (see QueryResult.source)
SOURCE_NAMES = ("memo", "grid", "pool")
SOURCE_CODES = {name: code for code, name in enumerate(SOURCE_NAMES)}

#: fixed prefix of the OP_RESULT payload
_RESULT_COUNT = struct.Struct("<I")


class WireError(ValueError):
    """A malformed binary frame.

    ``fatal`` distinguishes errors after which framing is still intact
    (the peer can keep the session) from ones where the byte stream's
    frame boundaries are unknowable (bad magic, oversized length,
    truncation) and the connection must end after the in-band error.
    """

    def __init__(self, message: str, *, fatal: bool = False) -> None:
        super().__init__(message)
        self.fatal = fatal


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def pack_frame(opcode: int, payload: bytes = b"", *, version: int = WIRE_VERSION) -> bytes:
    """One complete frame: header + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return HEADER.pack(WIRE_MAGIC, version, opcode, 0, len(payload)) + payload


def parse_header(header: bytes, *, max_payload: int = MAX_FRAME_BYTES) -> tuple[int, int, int]:
    """``(version, opcode, payload_length)`` from 12 header bytes.

    Raises :exc:`WireError` (fatal) on bad magic or an oversized
    length prefix — both mean frame boundaries can no longer be
    trusted.
    """
    magic, version, opcode, _, length = HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise WireError(
            f"bad frame magic {magic!r} (expected {WIRE_MAGIC!r})", fatal=True
        )
    if length > max_payload:
        raise WireError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte cap",
            fatal=True,
        )
    return version, opcode, length


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    first: bytes = b"",
    max_payload: int = MAX_FRAME_BYTES,
) -> tuple[int, int, bytes]:
    """Read one frame from an asyncio stream.

    ``first`` holds header bytes already consumed by the caller (the
    server's transport sniff eats the magic of the first frame).
    Header truncation surfaces as :exc:`asyncio.IncompleteReadError`
    (the caller checks ``partial`` to tell a clean frame-boundary EOF
    from a mid-header cut); a payload cut after a complete header is
    always mid-frame, so it raises a fatal :exc:`WireError`.
    """
    header = first + await reader.readexactly(HEADER_BYTES - len(first))
    version, opcode, length = parse_header(header, max_payload=max_payload)
    if not length:
        return version, opcode, b""
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError(
            "connection closed mid-frame (truncated payload)", fatal=True
        ) from None
    return version, opcode, payload


def read_frame_blocking(
    read: Any, *, max_payload: int = MAX_FRAME_BYTES
) -> tuple[int, int, bytes]:
    """Read one frame via a blocking ``read(n)`` callable (file/socket).

    Raises :exc:`ConnectionError` when the peer closes mid-frame.
    """
    header = read(HEADER_BYTES)
    if len(header) < HEADER_BYTES:
        raise ConnectionError("server closed the connection mid-frame")
    version, opcode, length = parse_header(header, max_payload=max_payload)
    payload = read(length) if length else b""
    if len(payload) < length:
        raise ConnectionError("server closed the connection mid-frame")
    return version, opcode, payload


def error_frame(message: str, *, retry: bool = False) -> bytes:
    """An in-band ``OP_ERROR`` (or ``OP_RETRY_LATER``) frame."""
    return pack_frame(OP_RETRY_LATER if retry else OP_ERROR, message.encode("utf-8"))


# ----------------------------------------------------------------------
# negotiation payloads (one-time per connection, JSON for flexibility)
# ----------------------------------------------------------------------
def hello_payload(token: str | None = None) -> bytes:
    """The ``OP_HELLO`` payload a client sends."""
    return json.dumps({"token": token or ""}).encode("utf-8")


def parse_hello(payload: bytes) -> str:
    """The auth token out of an ``OP_HELLO`` payload (may be empty)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed HELLO payload: {exc}") from None
    if not isinstance(obj, dict) or not isinstance(obj.get("token", ""), str):
        raise WireError("malformed HELLO payload: expected {\"token\": str}")
    return str(obj.get("token", ""))


def hello_ok_payload(
    presets: Sequence[str],
    default_preset: str | None,
    max_queries: int,
) -> bytes:
    """The ``OP_HELLO_OK`` payload: the preset catalog and limits."""
    return json.dumps({
        "version": WIRE_VERSION,
        "presets": list(presets),
        "default_preset": default_preset,
        "max_queries": max_queries,
    }).encode("utf-8")


def parse_hello_ok(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed HELLO_OK payload: {exc}") from None
    if not isinstance(obj, dict) or not isinstance(obj.get("presets"), list):
        raise WireError("malformed HELLO_OK payload: no preset catalog")
    return obj


# ----------------------------------------------------------------------
# fabric control-plane payloads (rare, schema-evolving -> JSON objects)
# ----------------------------------------------------------------------
def fabric_payload(doc: dict) -> bytes:
    """The payload for any fabric control-plane frame (OP_JOIN etc.)."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")


def parse_fabric_payload(payload: bytes) -> dict:
    """The JSON object inside a fabric control-plane frame.

    Raises :exc:`WireError` (non-fatal — framing is intact) when the
    payload is not a JSON object.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed fabric payload: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError("malformed fabric payload: expected a JSON object")
    return obj


# ----------------------------------------------------------------------
# query payload codec
# ----------------------------------------------------------------------
def make_query_records(
    specs: Sequence[tuple[int, int, float]] | np.ndarray,
) -> np.ndarray:
    """Pack ``(preset_id, d, m)`` triples into a QUERY_DTYPE array."""
    if isinstance(specs, np.ndarray) and specs.dtype == QUERY_DTYPE:
        return specs
    return np.array([tuple(s) for s in specs], dtype=QUERY_DTYPE)


def encode_query_records(records: np.ndarray) -> bytes:
    """The ``OP_QUERY`` payload for a QUERY_DTYPE record array."""
    if records.dtype != QUERY_DTYPE:
        records = records.astype(QUERY_DTYPE)
    return records.tobytes()


def decode_query_payload(payload: bytes) -> np.ndarray:
    """The QUERY_DTYPE record array inside an ``OP_QUERY`` payload."""
    itemsize = QUERY_DTYPE.itemsize
    if len(payload) % itemsize:
        raise WireError(
            f"query payload of {len(payload)} bytes is not a whole number "
            f"of {itemsize}-byte records"
        )
    return np.frombuffer(payload, dtype=QUERY_DTYPE)


# ----------------------------------------------------------------------
# result payload codec
# ----------------------------------------------------------------------
def encode_results(
    results: Sequence["QueryResult"], inverse: np.ndarray | None = None
) -> bytes:
    """The ``OP_RESULT`` payload for resolved queries.

    ``inverse`` (from ``np.unique(..., return_inverse=True)``) expands
    deduplicated results back to the request's query order entirely in
    numpy — the per-Python-object work stays proportional to the
    number of *distinct* cells, not the number of queries.
    """
    n = len(results)
    times = np.fromiter((r.time_us for r in results), dtype="<f8", count=n)
    sources = np.fromiter(
        (SOURCE_CODES[r.source] for r in results), dtype=np.uint8, count=n
    )
    nparts = np.fromiter(
        (len(r.partition) for r in results), dtype=np.uint8, count=n
    )
    total = int(nparts.sum())
    parts = np.fromiter(
        (part for r in results for part in r.partition), dtype=np.uint8, count=total
    )
    if inverse is not None:
        inverse = np.asarray(inverse).reshape(-1)
        starts = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.cumsum(nparts[:-1], out=starts[1:])
        # int64 throughout: uint8 counts would promote the index math
        # to float64 (int64 - uint64) and break fancy indexing
        out_nparts = nparts[inverse].astype(np.int64)
        out_total = int(out_nparts.sum())
        # absolute index of every expanded part: each output query
        # copies its unique cell's slice of the parts array
        base = np.repeat(starts[inverse], out_nparts)
        ends = np.cumsum(out_nparts)
        within = np.arange(out_total, dtype=np.int64) - np.repeat(
            ends - out_nparts, out_nparts
        )
        times = times[inverse]
        sources = sources[inverse]
        parts = parts[base + within]
        nparts = out_nparts.astype(np.uint8)
    return b"".join((
        _RESULT_COUNT.pack(len(times)),
        times.tobytes(),
        sources.tobytes(),
        nparts.tobytes(),
        parts.tobytes(),
    ))


def decode_result_payload(
    payload: bytes,
) -> tuple[np.ndarray, list[str], list[tuple[int, ...]]]:
    """``(times, source_names, partitions)`` out of an ``OP_RESULT``.

    ``times`` stays a float64 array; sources come back as their
    protocol names and partitions as tuples, in query order.
    """
    if len(payload) < _RESULT_COUNT.size:
        raise WireError("result payload shorter than its count prefix")
    (count,) = _RESULT_COUNT.unpack_from(payload)
    offset = _RESULT_COUNT.size
    need = offset + count * 8 + count + count
    if len(payload) < need:
        raise WireError(
            f"result payload of {len(payload)} bytes is shorter than the "
            f"{need} bytes its count of {count} implies"
        )
    times = np.frombuffer(payload, dtype="<f8", count=count, offset=offset)
    offset += count * 8
    codes = np.frombuffer(payload, dtype=np.uint8, count=count, offset=offset)
    offset += count
    nparts = np.frombuffer(payload, dtype=np.uint8, count=count, offset=offset)
    offset += count
    total = int(nparts.sum())
    if len(payload) < offset + total:
        raise WireError("result payload truncates its partition section")
    parts = np.frombuffer(payload, dtype=np.uint8, count=total, offset=offset)
    if codes.size and int(codes.max()) >= len(SOURCE_NAMES):
        raise WireError(f"unknown source code {int(codes.max())}")
    sources = [SOURCE_NAMES[code] for code in codes.tolist()]
    partitions: list[tuple[int, ...]] = []
    cursor = 0
    flat = parts.tolist()
    for k in nparts.tolist():
        partitions.append(tuple(flat[cursor:cursor + k]))
        cursor += k
    return times, sources, partitions
