"""JSON-lines request loop for the optimizer query service.

One request per line on the input stream, one JSON response per line
on the output stream — the transport behind ``repro serve``.  The
protocol is deliberately tiny:

* ``{"d": 7, "m": 40, "preset": "ipsc860", "id": 1}``
    one lookup; ``preset`` defaults to the server's default, ``id``
    (any JSON value) is echoed back.
* ``{"queries": [{...}, {...}], "id": 2}`` (or a bare JSON array)
    a batch — resolved in one coalesced pass through
    :func:`repro.service.batch.resolve_queries`; the response carries
    a ``results`` list in input order.
* ``{"op": "stats", "id": 3}``
    the registry's live counters (queries, memo hit rate, grid calls,
    table loads/evictions).

Malformed lines answer ``{"ok": false, "error": ...}`` and the loop
keeps serving; EOF ends the session.  Responses are flushed per line
so pipe-driven clients can interleave requests and replies.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.service.batch import Query, resolve_queries
from repro.service.registry import OptimizerRegistry, RegistryStats

__all__ = ["handle_request", "serve"]


def _query_from_obj(obj: dict, default_preset: str | None) -> Query:
    if not isinstance(obj, dict):
        raise ValueError(f"query must be an object, got {type(obj).__name__}")
    unknown = set(obj) - {"preset", "d", "m", "id"}
    if unknown:
        raise ValueError(f"unknown query fields {sorted(unknown)}")
    try:
        d, m = obj["d"], obj["m"]
    except KeyError as missing:
        raise ValueError(f"query is missing required field {missing}") from None
    preset = obj.get("preset", default_preset)
    if preset is None:
        raise ValueError("query has no machine preset and the server has no default")
    if not isinstance(preset, str):
        raise ValueError(f"preset must be a string, got {preset!r}")
    if not isinstance(d, int) or isinstance(d, bool):
        raise ValueError(f"d must be an integer, got {d!r}")
    if isinstance(m, bool) or not isinstance(m, (int, float)):
        raise ValueError(f"m must be a number, got {m!r}")
    return Query(preset=preset, d=d, m=float(m), tag=obj.get("id"))


def _result_to_dict(result) -> dict:
    doc = {
        "ok": True,
        "preset": result.preset,
        "d": result.d,
        "m": result.m,
        "partition": list(result.partition),
        "time_us": result.time_us,
        "source": result.source,
    }
    if result.tag is not None:
        doc["id"] = result.tag
    return doc


def handle_request(
    obj: Any,
    registry: OptimizerRegistry,
    *,
    default_preset: str | None = None,
) -> dict:
    """Answer one decoded request object (see module docstring)."""
    request_id = obj.get("id") if isinstance(obj, dict) else None
    try:
        if isinstance(obj, dict) and "op" in obj:
            op = obj["op"]
            if op == "stats":
                response = {"ok": True, "op": "stats", "stats": registry.stats.as_dict()}
            elif op == "presets":
                response = {"ok": True, "op": "presets", "presets": list(registry.preset_names)}
            else:
                raise ValueError(f"unknown op {op!r}; use 'stats' or 'presets'")
        elif isinstance(obj, list) or (isinstance(obj, dict) and "queries" in obj):
            items = obj if isinstance(obj, list) else obj["queries"]
            if not isinstance(items, list):
                raise ValueError("'queries' must be an array")
            queries = [_query_from_obj(item, default_preset) for item in items]
            results = resolve_queries(registry, queries)
            response = {"ok": True, "results": [_result_to_dict(r) for r in results]}
        elif isinstance(obj, dict):
            query = _query_from_obj(obj, default_preset)
            return _result_to_dict(resolve_queries(registry, [query])[0])
        else:
            raise ValueError(f"request must be an object or array, got {type(obj).__name__}")
    except (TypeError, ValueError, OverflowError) as exc:
        # OverflowError: e.g. an integer m too large for float() —
        # still a malformed request, never a reason to die
        response = {"ok": False, "error": str(exc)}
    if request_id is not None:
        response["id"] = request_id
    return response


def serve(
    registry: OptimizerRegistry,
    in_stream: IO[str],
    out_stream: IO[str],
    *,
    default_preset: str | None = None,
) -> RegistryStats:
    """Run the request loop until EOF; returns the final stats.

    >>> import io
    >>> registry = OptimizerRegistry()
    >>> out = io.StringIO()
    >>> stats = serve(
    ...     registry,
    ...     io.StringIO('{"preset": "ipsc860", "d": 7, "m": 40}\\n'),
    ...     out,
    ... )
    >>> json.loads(out.getvalue())["partition"]
    [4, 3]
    """
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"invalid JSON: {exc}"}
        else:
            response = handle_request(obj, registry, default_preset=default_preset)
        try:
            out_stream.write(json.dumps(response) + "\n")
            out_stream.flush()
        except BrokenPipeError:
            # the client hung up — a routine end of session, not a crash
            break
    return registry.stats
