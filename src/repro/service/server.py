"""JSON-lines request loop for the optimizer query service.

One request per line on the input stream, one JSON response per line
on the output stream — the transport behind ``repro serve``.  The
protocol is deliberately tiny:

* ``{"d": 7, "m": 40, "preset": "ipsc860", "id": 1}``
    one lookup; ``preset`` defaults to the server's default, ``id``
    (any JSON value) is echoed back.
* ``{"queries": [{...}, {...}], "id": 2}`` (or a bare JSON array)
    a batch — resolved in one coalesced pass through
    :func:`repro.service.batch.resolve_queries`; the response carries
    a ``results`` list in input order.
* ``{"op": "stats", "id": 3}``
    the registry's live counters (queries, memo hit rate, grid calls,
    table loads/evictions).

Malformed lines answer ``{"ok": false, "error": ...}`` and the loop
keeps serving; EOF ends the session.  Responses are flushed per line
so pipe-driven clients can interleave requests and replies.

The request/response shaping lives in the public helpers
:func:`query_from_obj`, :func:`extract_queries`, and
:func:`result_to_dict` so every transport — this stdio loop and the
socket server of :mod:`repro.service.async_server` — speaks byte-for-
byte the same protocol; :func:`handle_request` is the single source of
truth for request semantics.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.service.batch import Query, QueryResult, resolve_queries
from repro.service.registry import OptimizerRegistry, RegistryStats

__all__ = [
    "MAX_BATCH_QUERIES",
    "build_response",
    "error_response",
    "extract_queries",
    "handle_op",
    "handle_request",
    "overload_response",
    "query_from_obj",
    "result_to_dict",
    "serve",
]

#: per-request ceiling on batched queries — a malformed or hostile
#: client must not be able to schedule an unbounded grid evaluation
#: with one line; overridable per server for tests and small deployments
MAX_BATCH_QUERIES = 4096


def query_from_obj(obj: dict, default_preset: str | None) -> Query:
    if not isinstance(obj, dict):
        raise ValueError(f"query must be an object, got {type(obj).__name__}")
    unknown = set(obj) - {"preset", "d", "m", "id"}
    if unknown:
        raise ValueError(f"unknown query fields {sorted(unknown)}")
    try:
        d, m = obj["d"], obj["m"]
    except KeyError as missing:
        raise ValueError(f"query is missing required field {missing}") from None
    preset = obj.get("preset", default_preset)
    if preset is None:
        raise ValueError("query has no machine preset and the server has no default")
    if not isinstance(preset, str):
        raise ValueError(f"preset must be a string, got {preset!r}")
    if not isinstance(d, int) or isinstance(d, bool):
        raise ValueError(f"d must be an integer, got {d!r}")
    if isinstance(m, bool) or not isinstance(m, (int, float)):
        raise ValueError(f"m must be a number, got {m!r}")
    return Query(preset=preset, d=d, m=float(m), tag=obj.get("id"))


def result_to_dict(result: QueryResult) -> dict:
    """The JSON-ready response document for one :class:`QueryResult`."""
    doc = {
        "ok": True,
        "preset": result.preset,
        "d": result.d,
        "m": result.m,
        "partition": list(result.partition),
        "time_us": result.time_us,
        "source": result.source,
    }
    if result.tag is not None:
        doc["id"] = result.tag
    return doc


def extract_queries(
    obj: Any,
    *,
    default_preset: str | None = None,
    max_queries: int = MAX_BATCH_QUERIES,
) -> tuple[str, list[Query]] | None:
    """Classify a decoded request as a query request.

    Returns ``("single", [query])`` for the one-lookup form,
    ``("batch", queries)`` for the array/``queries`` forms, or ``None``
    when the request is an op (or not a query request at all — the op
    dispatcher owns those).  Raises :class:`ValueError` on malformed
    query requests, including batches larger than ``max_queries``.
    """
    if isinstance(obj, dict) and "op" in obj:
        return None
    if isinstance(obj, list) or (isinstance(obj, dict) and "queries" in obj):
        items = obj if isinstance(obj, list) else obj["queries"]
        if not isinstance(items, list):
            raise ValueError("'queries' must be an array")
        if len(items) > max_queries:
            raise ValueError(
                f"batch of {len(items)} queries exceeds the per-request "
                f"limit of {max_queries}"
            )
        return "batch", [query_from_obj(item, default_preset) for item in items]
    if isinstance(obj, dict):
        return "single", [query_from_obj(obj, default_preset)]
    raise ValueError(f"request must be an object or array, got {type(obj).__name__}")


def handle_op(obj: dict, registry: OptimizerRegistry) -> dict:
    """Answer one ``{"op": ...}`` request (id is attached by the caller)."""
    op = obj["op"]
    if op == "stats":
        return {"ok": True, "op": "stats", "stats": registry.stats.as_dict()}
    if op == "presets":
        return {"ok": True, "op": "presets", "presets": list(registry.preset_names)}
    raise ValueError(f"unknown op {op!r}; use 'stats' or 'presets'")


def build_response(
    kind: str, results: list, request_id: Any = None
) -> dict:
    """Shape resolved results the way :func:`handle_request` does.

    The ``single`` form returns the bare result document (its ``id``
    rides on the query tag); the ``batch`` form wraps the documents in
    ``{"ok": true, "results": [...]}`` with the request id echoed.
    """
    if kind == "single":
        return result_to_dict(results[0])
    response: dict = {"ok": True, "results": [result_to_dict(r) for r in results]}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(exc: BaseException, request_id: Any = None) -> dict:
    """The canonical in-band error document."""
    response: dict = {"ok": False, "error": str(exc)}
    if request_id is not None:
        response["id"] = request_id
    return response


def overload_response(reason: str, request_id: Any = None) -> dict:
    """The canonical load-shed document — the JSON twin of the binary
    wire's ``OP_RETRY_LATER`` frame.  ``"retry": true`` tells clients
    the request was refused by admission control, not rejected as
    malformed: resend after backoff."""
    response: dict = {
        "ok": False,
        "error": f"server overloaded: {reason}; retry later",
        "retry": True,
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def handle_request(
    obj: Any,
    registry: OptimizerRegistry,
    *,
    default_preset: str | None = None,
    max_queries: int = MAX_BATCH_QUERIES,
) -> dict:
    """Answer one decoded request object (see module docstring)."""
    request_id = obj.get("id") if isinstance(obj, dict) else None
    try:
        extracted = extract_queries(
            obj, default_preset=default_preset, max_queries=max_queries
        )
        if extracted is None:
            response = handle_op(obj, registry)
        else:
            kind, queries = extracted
            return build_response(kind, resolve_queries(registry, queries), request_id)
    except (TypeError, ValueError, OverflowError) as exc:
        # OverflowError: e.g. an integer m too large for float() —
        # still a malformed request, never a reason to die
        return error_response(exc, request_id)
    if request_id is not None:
        response["id"] = request_id
    return response


def serve(
    registry: OptimizerRegistry,
    in_stream: IO[str],
    out_stream: IO[str],
    *,
    default_preset: str | None = None,
    max_queries: int = MAX_BATCH_QUERIES,
) -> RegistryStats:
    """Run the request loop until EOF; returns the final stats.

    >>> import io
    >>> registry = OptimizerRegistry()
    >>> out = io.StringIO()
    >>> stats = serve(
    ...     registry,
    ...     io.StringIO('{"preset": "ipsc860", "d": 7, "m": 40}\\n'),
    ...     out,
    ... )
    >>> json.loads(out.getvalue())["partition"]
    [4, 3]
    """
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"invalid JSON: {exc}"}
        else:
            response = handle_request(
                obj, registry, default_preset=default_preset, max_queries=max_queries
            )
        try:
            out_stream.write(json.dumps(response) + "\n")
            out_stream.flush()
        except BrokenPipeError:
            # the client hung up — a routine end of session, not a crash
            break
    return registry.stats
