"""Async multi-client serving with cross-client micro-batching.

:class:`AsyncOptimizerServer` puts the JSON-lines protocol of
:mod:`repro.service.server` on an asyncio socket (TCP ``host:port`` or
``unix:path``) so many clients can hold connections open and pipeline
requests.  The request semantics are untouched — classification,
validation, and response shaping are the same
:func:`~repro.service.server.extract_queries` /
:func:`~repro.service.server.handle_op` /
:func:`~repro.service.server.build_response` helpers the stdio loop
uses — what the socket transport adds is *concurrency*:

* **per-connection pipelining** — a connection's requests are admitted
  synchronously as its lines arrive and answered strictly in request
  order, so a client may write hundreds of lines before reading one
  response;
* **cross-client micro-batching** — every admitted query, from every
  connection, lands in one shared :class:`_MicroBatcher`.  A batch
  flushes into a single coalesced
  :func:`~repro.service.batch.resolve_queries` pass when it reaches
  ``max_batch`` queries or, by default, at the end of the current
  event-loop turn — i.e. once every connection with readable data has
  been admitted, so concurrent clients coalesce while a lone serial
  client never waits on a clock.  A ``hold_us`` window (``> 0``)
  instead holds the batch up to that long to gather occupancy across
  turns — the latency/amortization trade is configuration, not code;
* **a negotiated binary wire** — a connection whose first four bytes
  are :data:`repro.service.wire.WIRE_MAGIC` speaks the length-prefixed
  binary protocol of :mod:`repro.service.wire`: a ``HELLO`` exchange
  carries the auth token and returns the preset catalog, then packed
  ``(preset_id, d, m)`` query frames answer with contiguous float64
  time arrays plus provenance codes.  Query frames are deduplicated
  with :func:`numpy.unique` and validated column-wise
  (:func:`~repro.service.batch.queries_from_arrays`), so the Python
  object work per frame is proportional to *distinct* cells, not
  queries.  Any other first bytes fall back to the JSON-lines
  transport byte-for-byte unchanged;
* **graceful drain** — :meth:`AsyncOptimizerServer.aclose` (also
  triggered by the socket-only ``{"op": "shutdown"}`` request and by
  SIGINT/SIGTERM under :func:`run_server`) stops accepting, stops
  reading, and answers everything already admitted; a client that
  stopped reading gets ``drain_timeout`` seconds before its remaining
  responses are dropped, so shutdown always terminates.  Pipelining is
  bounded per connection (``max_pipeline``): past the bound the server
  stops reading and lets TCP push back, so a client that never reads
  its responses cannot grow server memory without limit;
* **SLO-grade telemetry and admission control** — every request's
  admission-to-response latency lands in a fixed-bucket
  :class:`LatencyHistogram` surfaced as ``p50_us``/``p99_us`` in
  :class:`ServerStats` and the ``{"op": "stats"}`` response; when the
  batcher depth or admitted-but-unanswered bytes pass the configurable
  ``shed_queries`` / ``shed_bytes`` high-water marks, new query
  requests are shed with an explicit retry signal (a JSON error doc
  with ``"retry": true``, an ``OP_RETRY_LATER`` frame on the binary
  wire) instead of queueing without bound;
* **optional shared-secret auth** — with ``auth_token`` set, a binary
  client's ``HELLO`` must carry the token and a JSON client must send
  ``{"op": "auth", "token": ...}`` before anything else; failures are
  answered in-band and counted, then the connection closes.

One event loop, one registry: resolution runs on the loop, so the
registry needs no locking and the memo/LRU stay exactly as consistent
as under the stdio loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable

import numpy as np

from repro.service import wire
from repro.service.batch import (
    Query,
    QueryResult,
    check_query_values,
    queries_from_arrays,
    resolve_queries,
)
from repro.service.client import Address, parse_address
from repro.service.config import ServerConfig
from repro.service.registry import OptimizerRegistry
from repro.service.server import (
    MAX_BATCH_QUERIES,
    build_response,
    error_response,
    extract_queries,
    handle_op,
    overload_response,
)
from repro.service.wire import (
    OP_HELLO,
    OP_HELLO_OK,
    OP_QUERY,
    OP_RESULT,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireError,
    error_frame,
    pack_frame,
)

__all__ = [
    "AsyncOptimizerServer",
    "LatencyHistogram",
    "ServerStats",
    "run_server",
]

#: sentinel distinguishing "keyword not passed" from an explicit None,
#: so config= and loose keywords cannot silently fight
_UNSET: Any = object()


class LatencyHistogram:
    """Fixed-bucket request-latency histogram (microseconds).

    Power-of-two bucket bounds from 1 µs to ~33 s plus an overflow
    bucket: recording is one :func:`bisect.bisect_left` and an
    increment, so it is cheap enough for every response, and the fixed
    shape means percentile queries never allocate.  Percentiles
    interpolate linearly inside the winning bucket (the overflow
    bucket reports the observed maximum).
    """

    #: upper bounds (inclusive) of the finite buckets, in microseconds
    BOUNDS: tuple[float, ...] = tuple(float(1 << k) for k in range(26))

    __slots__ = ("counts", "count", "total_us", "max_us")

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0

    def record(self, us: float) -> None:
        self.counts[bisect_left(self.BOUNDS, us)] += 1
        self.count += 1
        self.total_us += us
        if us > self.max_us:
            self.max_us = us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile latency in microseconds."""
        if not self.count:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                low = self.BOUNDS[index - 1] if index else 0.0
                high = (
                    self.BOUNDS[index]
                    if index < len(self.BOUNDS)
                    else self.max_us
                )
                return low + (high - low) * (rank - cumulative) / bucket_count
            cumulative += bucket_count
        return self.max_us

    def as_dict(self) -> dict:
        """Count, mean/max, p50/p99, and the non-empty buckets as
        ``[upper_bound_us_or_null, count]`` pairs (null = overflow)."""
        buckets = [
            [self.BOUNDS[i] if i < len(self.BOUNDS) else None, c]
            for i, c in enumerate(self.counts)
            if c
        ]
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
            "p50_us": self.percentile(50.0),
            "p99_us": self.percentile(99.0),
            "buckets": buckets,
        }


@dataclass
class ServerStats:
    """Counters for one socket server's lifetime."""

    #: connections accepted / fully closed
    connections_opened: int = 0
    connections_closed: int = 0
    #: connections that negotiated the binary wire protocol
    binary_connections: int = 0
    #: request lines admitted (including ones that answer with errors)
    requests: int = 0
    #: responses written back to clients
    responses: int = 0
    #: responses that carried ``{"ok": false}`` (or an error frame)
    errors: int = 0
    #: query requests refused by admission control (RETRY_LATER)
    shed: int = 0
    #: responses dropped at drain because their client stopped reading
    dropped: int = 0
    #: failed authentication attempts (wrong token)
    auth_failures: int = 0
    #: requests admitted but not yet answered (live gauge) and its peak
    in_flight: int = 0
    peak_in_flight: int = 0
    #: request bytes admitted but not yet answered, and its peak —
    #: the byte-denominated twin of ``in_flight`` that ``shed_bytes``
    #: admission control watches
    inflight_bytes: int = 0
    peak_inflight_bytes: int = 0
    #: micro-batcher flushes, and what triggered each
    batches: int = 0
    flushes_size: int = 0
    flushes_drain: int = 0
    flushes_timer: int = 0
    #: queries resolved through the batcher, requests they came from,
    #: and the largest single flush (cross-client occupancy high-water)
    batched_queries: int = 0
    batched_requests: int = 0
    peak_batch_queries: int = 0
    #: admission-to-response latency of every answered request
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def connections_active(self) -> int:
        return self.connections_opened - self.connections_closed

    @property
    def mean_batch_queries(self) -> float:
        """Average flush occupancy (queries per grid-coalesced pass)."""
        return self.batched_queries / self.batches if self.batches else 0.0

    @property
    def p50_us(self) -> float:
        return self.latency.percentile(50.0)

    @property
    def p99_us(self) -> float:
        return self.latency.percentile(99.0)

    def as_dict(self) -> dict:
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "connections_active": self.connections_active,
            "binary_connections": self.binary_connections,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "shed": self.shed,
            "dropped": self.dropped,
            "auth_failures": self.auth_failures,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "inflight_bytes": self.inflight_bytes,
            "peak_inflight_bytes": self.peak_inflight_bytes,
            "batches": self.batches,
            "flushes_size": self.flushes_size,
            "flushes_drain": self.flushes_drain,
            "flushes_timer": self.flushes_timer,
            "batched_queries": self.batched_queries,
            "batched_requests": self.batched_requests,
            "peak_batch_queries": self.peak_batch_queries,
            "mean_batch_queries": self.mean_batch_queries,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "latency": self.latency.as_dict(),
        }


class _MicroBatcher:
    """Coalesce concurrently pending queries into one grid pass.

    Submissions accumulate until one of three triggers flushes them all
    through a single :func:`resolve_queries` call:

    ``size``
        the pending pool reached ``max_batch`` queries;
    ``drain``
        the event loop reached the end of the turn in which the first
        pending query was admitted (``hold_s == 0``).  Admission is
        synchronous in each connection's read loop, so by then every
        connection with buffered input has contributed — concurrent
        load coalesces, and a lone serial request flushes immediately;
    ``timer``
        the opt-in ``hold_s > 0`` window expired: the batch was held
        across turns to gather more occupancy at a bounded latency
        cost.
    """

    def __init__(
        self,
        registry: OptimizerRegistry,
        stats: ServerStats,
        *,
        max_batch: int,
        hold_s: float,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if hold_s < 0:
            raise ValueError(f"hold window must be >= 0, got {hold_s}")
        self._registry = registry
        self._stats = stats
        self._max_batch = max_batch
        self._hold_s = hold_s
        self._pending: list[tuple[list[Query], asyncio.Future]] = []
        self._pending_queries = 0
        self._scheduled: asyncio.TimerHandle | asyncio.Handle | None = None

    @property
    def pending_queries(self) -> int:
        """Queries admitted but not yet flushed — the depth that
        ``shed_queries`` admission control watches."""
        return self._pending_queries

    def submit(self, queries: list[Query]) -> "asyncio.Future[list[QueryResult]]":
        """Queue one request's queries; the future resolves at flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((queries, future))
        self._pending_queries += len(queries)
        if self._pending_queries >= self._max_batch:
            self.flush("size")
        elif self._scheduled is None:
            if self._hold_s > 0:
                self._scheduled = loop.call_later(self._hold_s, self._flush_scheduled)
            else:
                self._scheduled = loop.call_soon(self._flush_scheduled)
        return future

    def _flush_scheduled(self) -> None:
        self._scheduled = None
        self.flush("drain" if self._hold_s == 0 else "timer")

    def flush(self, reason: str = "drain") -> None:
        """Resolve everything pending in one coalesced pass."""
        if self._scheduled is not None:
            self._scheduled.cancel()
            self._scheduled = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        n_queries, self._pending_queries = self._pending_queries, 0
        stats = self._stats
        stats.batches += 1
        stats.batched_queries += n_queries
        stats.batched_requests += len(pending)
        stats.peak_batch_queries = max(stats.peak_batch_queries, n_queries)
        setattr(stats, f"flushes_{reason}", getattr(stats, f"flushes_{reason}") + 1)
        flat = [query for queries, _ in pending for query in queries]
        try:
            # every query passed _admit_query, so skip re-normalization
            results = resolve_queries(self._registry, flat, pre_normalized=True)
        except Exception as exc:  # pre-validated queries: only infrastructure
            # failures (e.g. a shard file going bad mid-serving) land here;
            # every waiter gets the error instead of the whole server dying
            for _, future in pending:
                if not future.done():
                    future.set_exception(
                        RuntimeError(f"batch resolution failed: {exc}")
                    )
            return
        offset = 0
        for queries, future in pending:
            chunk = results[offset : offset + len(queries)]
            offset += len(queries)
            if not future.done():
                future.set_result(chunk)

class AsyncOptimizerServer:
    """Socket transport for one :class:`OptimizerRegistry`.

    Construct, then ``await start(address)``; ``await wait_closed()``
    blocks until a shutdown request, :meth:`aclose`, or a signal under
    :func:`run_server` drains the server.
    """

    def __init__(
        self,
        registry: OptimizerRegistry,
        config: ServerConfig | None = None,
        *,
        default_preset: Any = _UNSET,
        max_batch: Any = _UNSET,
        hold_us: Any = _UNSET,
        max_queries: Any = _UNSET,
        max_line_bytes: Any = _UNSET,
        max_pipeline: Any = _UNSET,
        drain_timeout: Any = _UNSET,
        auth_token: Any = _UNSET,
        shed_queries: Any = _UNSET,
        shed_bytes: Any = _UNSET,
    ) -> None:
        overrides = {
            name: value
            for name, value in (
                ("default_preset", default_preset),
                ("max_batch", max_batch),
                ("hold_us", hold_us),
                ("max_queries", max_queries),
                ("max_line_bytes", max_line_bytes),
                ("max_pipeline", max_pipeline),
                ("drain_timeout", drain_timeout),
                ("auth_token", auth_token),
                ("shed_queries", shed_queries),
                ("shed_bytes", shed_bytes),
            )
            if value is not _UNSET
        }
        if config is not None and overrides:
            raise ValueError(
                "pass either config=ServerConfig(...) or individual server "
                f"keywords, not both (got {sorted(overrides)})"
            )
        cfg = config if config is not None else ServerConfig(**overrides)
        self.registry = registry
        self.stats = ServerStats()
        #: the validated configuration this server runs under
        self.config = cfg
        self._default_preset = cfg.default_preset
        self._max_queries = cfg.max_queries
        self._max_line_bytes = cfg.max_line_bytes
        #: per-connection cap on admitted-but-unwritten responses: past
        #: it the read loop stops admitting, which stops reading, which
        #: pushes TCP backpressure onto a client that isn't reading —
        #: server memory stays bounded no matter how a client behaves
        self._max_pipeline = cfg.max_pipeline
        #: how long a drain waits for a connection's queued responses to
        #: reach a slow client before dropping them (shutdown must not
        #: hang on a client that stopped reading)
        self._drain_timeout = cfg.drain_timeout
        #: shared secret: binary HELLOs must carry it, JSON connections
        #: must send {"op": "auth", "token": ...} before anything else
        self._auth_token = cfg.auth_token
        #: admission-control high-water marks (None = shedding off):
        #: queries pending in the batcher / bytes admitted-but-unanswered
        self._shed_queries = cfg.shed_queries
        self._shed_bytes = cfg.shed_bytes
        self._batcher = _MicroBatcher(
            registry, self.stats, max_batch=cfg.max_batch, hold_s=cfg.hold_us / 1e6
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._bound: Address | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, address: str | Address) -> "AsyncOptimizerServer":
        """Bind and begin accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._loop = asyncio.get_running_loop()
        addr = parse_address(address)
        if addr.kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=addr.path, limit=self._max_line_bytes
            )
            self._bound = addr
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, addr.host, addr.port,
                limit=self._max_line_bytes,
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self._bound = Address("tcp", host=host, port=int(port))
        return self

    @property
    def address(self) -> Address:
        """The actually bound endpoint (resolves an ephemeral port 0)."""
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, stop reading, answer every
        admitted request, flush the batcher, close all connections."""
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # interrupt each connection's read loop; its handler flushes the
        # responses already queued (bounded by drain_timeout per
        # connection for clients that stopped reading) before closing
        for task in list(self._connections):
            task.cancel()
        self._batcher.flush("drain")
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        # lines admitted while the read loops were being cancelled may
        # have queued new work — resolve it so no waiter leaks
        self._batcher.flush("drain")
        if self._bound is not None and self._bound.kind == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self._bound.path)
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _now(self) -> float:
        assert self._loop is not None
        return self._loop.time()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.stats.connections_opened += 1
        responses: asyncio.Queue = asyncio.Queue()
        # the pipelining bound: acquired per admitted request, released
        # by the writer once the response is out (or dropped)
        window = asyncio.Semaphore(self._max_pipeline)
        writer_task = asyncio.create_task(
            self._write_responses(responses, writer, window)
        )
        try:
            # transport sniff: a binary session opens with the frame
            # magic; anything else — including a short line like "[]" —
            # is the JSON transport, with the sniffed bytes replayed
            prefix, eof = b"", False
            try:
                prefix = await reader.readexactly(len(WIRE_MAGIC))
            except asyncio.IncompleteReadError as short:
                prefix, eof = short.partial, True
            if prefix == WIRE_MAGIC:
                self.stats.binary_connections += 1
                await self._serve_binary(reader, responses, window)
            else:
                await self._serve_json(reader, prefix, eof, responses, window)
        except asyncio.CancelledError:
            pass  # drain: stop reading, fall through to flush the queue
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # the client vanished; answer what we can, then close
        finally:
            responses.put_nowait(None)
            await self._drain_writer(writer_task, responses)
            writer.close()
            try:
                # close() flushes buffered data first — which never ends
                # when the peer stopped reading, so bound it and abort
                await asyncio.wait_for(writer.wait_closed(), self._drain_timeout)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                writer.transport.abort()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.stats.connections_closed += 1
            self._connections.discard(task)

    # ------------------------------------------------------------------
    # JSON-lines transport
    # ------------------------------------------------------------------
    async def _iter_lines(
        self, reader: asyncio.StreamReader, prefix: bytes, eof: bool
    ) -> AsyncIterator[bytes]:
        """The connection's request lines, replaying sniffed bytes."""
        while b"\n" in prefix:
            line, _, prefix = prefix.partition(b"\n")
            yield line + b"\n"
        if eof:
            if prefix:
                yield prefix  # final unterminated line
            return
        if prefix:
            yield prefix + await reader.readline()
        while True:
            line = await reader.readline()
            if not line:
                return
            yield line

    async def _serve_json(
        self,
        reader: asyncio.StreamReader,
        prefix: bytes,
        eof: bool,
        responses: asyncio.Queue,
        window: asyncio.Semaphore,
    ) -> None:
        authed = self._auth_token is None
        lines = self._iter_lines(reader, prefix, eof)
        while True:
            try:
                line = await anext(lines)
            except StopAsyncIteration:
                break
            except ValueError:
                # a line beyond the transport cap: answer in-band,
                # then close — framing past it is unknowable
                self._count_admitted()
                responses.put_nowait(("done", {
                    "ok": False,
                    "error": f"request line exceeds {self._max_line_bytes} bytes",
                }, self._now(), 0))
                break
            text = line.strip()
            if not text:
                continue
            # blocks only when the client is max_pipeline responses
            # behind — reading stops, and TCP pushes back
            await window.acquire()
            t0 = self._now()
            decoded = text.decode("utf-8", "replace")
            if not authed:
                authed, keep_open = self._admit_preauth(
                    decoded, responses.put_nowait, t0, len(line)
                )
                if not keep_open:
                    break
                continue
            # admission is synchronous: when every readable line has
            # been admitted the loop turn ends, and that is exactly
            # when the batcher's end-of-turn flush fires
            self._admit_line(decoded, responses.put_nowait, t0, len(line))

    def _admit_preauth(
        self,
        text: str,
        enqueue: Callable[[tuple], None],
        t0: float,
        nbytes: int,
    ) -> tuple[bool, bool]:
        """Answer one line on a connection that has not authenticated
        yet; returns ``(authed, keep_open)``.  Only ``{"op": "auth"}``
        can make progress — everything else is refused in-band (the
        connection survives, so a client can still discover the
        requirement), and a wrong token closes the session."""
        self._count_admitted(nbytes)
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            enqueue(("done", {"ok": False, "error": f"invalid JSON: {exc}"}, t0, nbytes))
            return False, True
        request_id = obj.get("id") if isinstance(obj, dict) else None
        if isinstance(obj, dict) and obj.get("op") == "auth":
            if obj.get("token") == self._auth_token:
                doc: dict = {"ok": True, "op": "auth"}
                if request_id is not None:
                    doc["id"] = request_id
                enqueue(("done", doc, t0, nbytes))
                return True, True
            self.stats.auth_failures += 1
            enqueue(("done", error_response(
                ValueError("invalid auth token"), request_id
            ), t0, nbytes))
            return False, False
        enqueue(("done", error_response(
            ValueError(
                'authentication required: send {"op": "auth", "token": ...} first'
            ),
            request_id,
        ), t0, nbytes))
        return False, True

    # ------------------------------------------------------------------
    # binary transport
    # ------------------------------------------------------------------
    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        responses: asyncio.Queue,
        window: asyncio.Semaphore,
    ) -> None:
        enqueue = responses.put_nowait
        catalog = list(self.registry.preset_names)
        hello_done = False
        first = WIRE_MAGIC  # the sniff consumed the first frame's magic
        while True:
            try:
                version, opcode, payload = await wire.read_frame(
                    reader, first=first, max_payload=self._max_line_bytes
                )
            except asyncio.IncompleteReadError as short:
                if short.partial or first:
                    # mid-header cut: answer in-band, then close
                    self._count_admitted()
                    enqueue(("frame", error_frame(
                        "connection closed mid-frame (truncated header)"
                    ), True, self._now(), 0))
                break  # clean EOF at a frame boundary
            except WireError as exc:
                # bad magic / oversized length / truncated payload:
                # framing is lost — answer in-band, then close
                self._count_admitted()
                enqueue(("frame", error_frame(str(exc)), True, self._now(), 0))
                break
            first = b""
            await window.acquire()
            t0 = self._now()
            nbytes = wire.HEADER_BYTES + len(payload)
            self._count_admitted(nbytes)
            if opcode == OP_HELLO:
                if version != WIRE_VERSION:
                    enqueue(("frame", error_frame(
                        f"unsupported wire version {version} "
                        f"(server speaks {WIRE_VERSION})"
                    ), True, t0, nbytes))
                    continue  # the client may retry with a supported HELLO
                try:
                    token = wire.parse_hello(payload)
                except WireError as exc:
                    enqueue(("frame", error_frame(str(exc)), True, t0, nbytes))
                    continue
                if self._auth_token is not None and token != self._auth_token:
                    self.stats.auth_failures += 1
                    enqueue(("frame", error_frame("invalid auth token"), True, t0, nbytes))
                    break
                hello_done = True
                enqueue(("frame", pack_frame(OP_HELLO_OK, wire.hello_ok_payload(
                    catalog, self._default_preset, self._max_queries
                )), False, t0, nbytes))
                continue
            if not hello_done:
                enqueue(("frame", error_frame(
                    f"expected a HELLO frame before opcode {opcode}"
                ), True, t0, nbytes))
                continue
            if opcode != OP_QUERY:
                enqueue(("frame", error_frame(
                    f"unknown opcode {opcode}; clients send HELLO and QUERY"
                ), True, t0, nbytes))
                continue
            self._admit_query_frame(payload, catalog, enqueue, t0, nbytes)

    def _admit_query_frame(
        self,
        payload: bytes,
        catalog: list[str],
        enqueue: Callable[[tuple], None],
        t0: float,
        nbytes: int,
    ) -> None:
        """Admit one ``OP_QUERY`` frame: decode, shed-check, validate
        column-wise, deduplicate, and enter the shared micro-batch."""
        try:
            records = wire.decode_query_payload(payload)
        except WireError as exc:
            enqueue(("frame", error_frame(str(exc)), True, t0, nbytes))
            return
        if len(records) > self._max_queries:
            enqueue(("frame", error_frame(
                f"batch of {len(records)} queries exceeds the per-request "
                f"limit of {self._max_queries}"
            ), True, t0, nbytes))
            return
        shed = self._shed_reason()
        if shed is not None:
            self.stats.shed += 1
            enqueue(("frame", error_frame(
                f"server overloaded: {shed}; retry later", retry=True
            ), True, t0, nbytes))
            return
        try:
            # within-frame dedup: Query construction and memo probing
            # cost one pass over *distinct* cells; the writer scatters
            # results back to request order through the inverse
            unique, inverse = np.unique(records, return_inverse=True)
            queries = queries_from_arrays(catalog, unique)
        except (TypeError, ValueError, OverflowError) as exc:
            enqueue(("frame", error_frame(str(exc)), True, t0, nbytes))
            return
        except Exception as exc:  # noqa: BLE001 — see _admit_line
            enqueue(("frame", error_frame(
                f"internal server error: {exc}"
            ), True, t0, nbytes))
            return
        # np.unique sorts, so results come back in *cell* order; the
        # writer needs the inverse to restore request order unless the
        # frame already was sorted-and-distinct (then inverse is the
        # identity and the scatter can be skipped)
        identity = len(unique) == len(records) and bool(
            np.array_equal(inverse, np.arange(len(records)))
        )
        scatter = None if identity else inverse
        enqueue(("bquery", self._batcher.submit(queries), scatter, t0, nbytes))

    # ------------------------------------------------------------------
    # shared admission plumbing
    # ------------------------------------------------------------------
    async def _drain_writer(
        self, writer_task: asyncio.Task, responses: asyncio.Queue
    ) -> None:
        """Give already-admitted responses up to ``drain_timeout`` to
        reach the client, tolerating the drain cancellation itself —
        then drop the remainder: a client that stopped reading must
        never wedge shutdown."""
        cancels = 0
        while not writer_task.done():
            try:
                await asyncio.wait_for(
                    asyncio.shield(writer_task), self._drain_timeout
                )
            except asyncio.TimeoutError:
                writer_task.cancel()  # stalled client: drop the rest
                break
            except asyncio.CancelledError:
                # first cancel is aclose() interrupting the wait — keep
                # draining; repeats mean event-loop rundown: stop
                cancels += 1
                if cancels >= 2:
                    writer_task.cancel()
                    break
            except Exception:
                break
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await writer_task
        # whatever never reached the writer still counts as answered for
        # the in-flight gauge
        while True:
            try:
                item = responses.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                self.stats.in_flight -= 1
                self.stats.inflight_bytes -= item[-1]
                self.stats.dropped += 1

    def _count_admitted(self, nbytes: int = 0) -> None:
        stats = self.stats
        stats.requests += 1
        stats.in_flight += 1
        stats.peak_in_flight = max(stats.peak_in_flight, stats.in_flight)
        stats.inflight_bytes += nbytes
        stats.peak_inflight_bytes = max(
            stats.peak_inflight_bytes, stats.inflight_bytes
        )

    def _shed_reason(self) -> str | None:
        """The admission-control verdict for one query request —
        ``None`` admits; a reason string sheds with RETRY_LATER."""
        if (
            self._shed_queries is not None
            and self._batcher.pending_queries >= self._shed_queries
        ):
            return (
                f"batcher depth {self._batcher.pending_queries} at the "
                f"high-water mark of {self._shed_queries} queries"
            )
        if (
            self._shed_bytes is not None
            and self.stats.inflight_bytes >= self._shed_bytes
        ):
            return (
                f"{self.stats.inflight_bytes} request bytes in flight at the "
                f"high-water mark of {self._shed_bytes}"
            )
        return None

    def _admit_line(
        self,
        text: str,
        enqueue: Callable[[tuple], None],
        t0: float,
        nbytes: int = 0,
    ) -> None:
        """Admit one request line without yielding: immediate responses
        enqueue as ``("done", doc, t0, nbytes)``, query requests enter
        the shared micro-batch and enqueue as
        ``("query", kind, id, future, t0, nbytes)``."""
        self._count_admitted(nbytes)
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            enqueue(("done", {"ok": False, "error": f"invalid JSON: {exc}"}, t0, nbytes))
            return
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            if isinstance(obj, dict) and obj.get("op") == "shutdown":
                enqueue(("done", self._handle_shutdown(request_id), t0, nbytes))
                return
            if isinstance(obj, dict) and obj.get("op") == "auth":
                # no auth is configured (or it already succeeded) — the
                # op acknowledges idempotently, like shutdown it is a
                # socket-transport op the stdio loop never sees
                doc: dict = {"ok": True, "op": "auth"}
                if request_id is not None:
                    doc["id"] = request_id
                enqueue(("done", doc, t0, nbytes))
                return
            if isinstance(obj, (list, dict)) and not (
                isinstance(obj, dict) and "op" in obj
            ):
                shed = self._shed_reason()
                if shed is not None:
                    self.stats.shed += 1
                    enqueue(("done", overload_response(shed, request_id), t0, nbytes))
                    return
            extracted = extract_queries(
                obj,
                default_preset=self._default_preset,
                max_queries=self._max_queries,
            )
            if extracted is None:
                response = handle_op(obj, self.registry)
                if obj.get("op") == "stats":
                    # the socket transport reports itself alongside the
                    # registry (stdio responses are unchanged)
                    response["server"] = self.stats.as_dict()
                if request_id is not None:
                    response["id"] = request_id
                enqueue(("done", response, t0, nbytes))
                return
            kind, queries = extracted
            # admission-validate *before* entering the shared batch: one
            # client's bad query must never poison a flush that carries
            # other clients' requests
            normalized = [self._admit_query(query) for query in queries]
        except (TypeError, ValueError, OverflowError) as exc:
            enqueue(("done", error_response(exc, request_id), t0, nbytes))
            return
        except Exception as exc:  # noqa: BLE001 — a multi-client server
            # answers in-band and keeps serving rather than dying
            enqueue(("done", self._internal_error(exc, request_id), t0, nbytes))
            return
        enqueue(("query", kind, request_id, self._batcher.submit(normalized), t0, nbytes))

    def _admit_query(self, query: Query) -> Query:
        """The :func:`~repro.service.batch.as_query` checks, applied in
        place: ``query_from_obj`` already coerced the field types, so
        validating via the shared :func:`check_query_values` without
        rebuilding the (frozen) Query keeps admission cheap."""
        check_query_values(query.d, query.m)
        self.registry.params(query.preset)  # unknown presets fail here
        return query

    @staticmethod
    def _internal_error(exc: BaseException, request_id: object | None) -> dict:
        response: dict = {"ok": False, "error": f"internal server error: {exc}"}
        if request_id is not None:
            response["id"] = request_id
        return response

    def _handle_shutdown(self, request_id: object | None) -> dict:
        """Acknowledge, then drain in the background.  The ack is queued
        before the drain cancels the reader, so it is always written."""
        asyncio.get_running_loop().create_task(self.aclose())
        response: dict = {"ok": True, "op": "shutdown", "draining": True}
        if request_id is not None:
            response["id"] = request_id
        return response

    async def _write_responses(
        self,
        responses: asyncio.Queue,
        writer: asyncio.StreamWriter,
        window: asyncio.Semaphore,
    ) -> None:
        """Consume the admission queue in FIFO order — resolving query
        futures as they come up — and write each response.  Both
        transports meet here: JSON items encode to a line, binary items
        to a frame, and every settled item records its latency."""
        broken = False
        while True:
            item = await responses.get()
            if item is None:
                return
            tag = item[0]
            t0, nbytes = item[-2], item[-1]
            is_error = False
            if tag == "done":
                doc = item[1]
                is_error = not doc.get("ok", True)
                out = json.dumps(doc).encode() + b"\n"
            elif tag == "query":
                _, kind, request_id, future, _, _ = item
                try:
                    doc = build_response(kind, await future, request_id)
                except Exception as exc:  # noqa: BLE001 — see _admit_line
                    doc = self._internal_error(exc, request_id)
                is_error = not doc.get("ok", True)
                out = json.dumps(doc).encode() + b"\n"
            elif tag == "frame":
                out, is_error = item[1], item[2]
            else:  # "bquery": a binary query's resolved future
                _, future, scatter, _, _ = item
                try:
                    out = pack_frame(
                        OP_RESULT, wire.encode_results(await future, scatter)
                    )
                except Exception as exc:  # noqa: BLE001 — see _admit_line
                    out = error_frame(f"internal server error: {exc}")
                    is_error = True
            stats = self.stats
            stats.in_flight -= 1
            stats.inflight_bytes -= nbytes
            stats.latency.record((self._now() - t0) * 1e6)
            window.release()
            if is_error:
                stats.errors += 1
            if broken:
                continue  # keep consuming so in-flight accounting drains
            try:
                writer.write(out)
                await writer.drain()
                stats.responses += 1
            except (ConnectionResetError, BrokenPipeError, OSError):
                broken = True


def run_server(
    registry: OptimizerRegistry,
    address: str | Address,
    *,
    config: ServerConfig | None = None,
    default_preset: str | None = None,
    max_batch: int = 64,
    hold_us: float = 0.0,
    max_queries: int = MAX_BATCH_QUERIES,
    auth_token: str | None = None,
    shed_queries: int | None = None,
    shed_bytes: int | None = None,
    install_signal_handlers: bool = True,
    ready: Callable[[AsyncOptimizerServer], None] | None = None,
) -> ServerStats:
    """Serve until shutdown (request, signal, or KeyboardInterrupt);
    returns the transport stats.  The blocking entry behind
    ``repro serve --socket``; ``ready`` fires once the socket is bound.
    A ``config`` (:class:`~repro.service.config.ServerConfig`) carries
    every tunable at once and takes precedence over the loose keywords.
    """
    cfg = config if config is not None else ServerConfig(
        default_preset=default_preset,
        max_batch=max_batch,
        hold_us=hold_us,
        max_queries=max_queries,
        auth_token=auth_token,
        shed_queries=shed_queries,
        shed_bytes=shed_bytes,
    )

    async def _main() -> ServerStats:
        server = AsyncOptimizerServer(registry, cfg)
        await server.start(address)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(server.aclose())
                    )
        if ready is not None:
            ready(server)
        await server.wait_closed()
        return server.stats

    return asyncio.run(_main())
