"""Async multi-client serving with cross-client micro-batching.

:class:`AsyncOptimizerServer` puts the JSON-lines protocol of
:mod:`repro.service.server` on an asyncio socket (TCP ``host:port`` or
``unix:path``) so many clients can hold connections open and pipeline
requests.  The request semantics are untouched — classification,
validation, and response shaping are the same
:func:`~repro.service.server.extract_queries` /
:func:`~repro.service.server.handle_op` /
:func:`~repro.service.server.build_response` helpers the stdio loop
uses — what the socket transport adds is *concurrency*:

* **per-connection pipelining** — a connection's requests are admitted
  synchronously as its lines arrive and answered strictly in request
  order, so a client may write hundreds of lines before reading one
  response;
* **cross-client micro-batching** — every admitted query, from every
  connection, lands in one shared :class:`_MicroBatcher`.  A batch
  flushes into a single coalesced
  :func:`~repro.service.batch.resolve_queries` pass when it reaches
  ``max_batch`` queries or, by default, at the end of the current
  event-loop turn — i.e. once every connection with readable data has
  been admitted, so concurrent clients coalesce while a lone serial
  client never waits on a clock.  A ``hold_us`` window (``> 0``)
  instead holds the batch up to that long to gather occupancy across
  turns — the latency/amortization trade is configuration, not code;
* **graceful drain** — :meth:`AsyncOptimizerServer.aclose` (also
  triggered by the socket-only ``{"op": "shutdown"}`` request and by
  SIGINT/SIGTERM under :func:`run_server`) stops accepting, stops
  reading, and answers everything already admitted; a client that
  stopped reading gets ``drain_timeout`` seconds before its remaining
  responses are dropped, so shutdown always terminates.  Pipelining is
  bounded per connection (``max_pipeline``): past the bound the server
  stops reading and lets TCP push back, so a client that never reads
  its responses cannot grow server memory without limit;
* **per-server stats** — :class:`ServerStats` counts connections,
  requests, in-flight depth, and batch occupancy next to the
  registry's own memo/grid counters; the ``{"op": "stats"}`` response
  carries them in a ``server`` section (stdio responses are
  unchanged).

One event loop, one registry: resolution runs on the loop, so the
registry needs no locking and the memo/LRU stay exactly as consistent
as under the stdio loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from dataclasses import dataclass
from typing import Callable

from repro.service.batch import Query, QueryResult, check_query_values, resolve_queries
from repro.service.client import Address, parse_address
from repro.service.registry import OptimizerRegistry
from repro.service.server import (
    MAX_BATCH_QUERIES,
    build_response,
    error_response,
    extract_queries,
    handle_op,
)

__all__ = ["AsyncOptimizerServer", "ServerStats", "run_server"]


@dataclass
class ServerStats:
    """Counters for one socket server's lifetime."""

    #: connections accepted / fully closed
    connections_opened: int = 0
    connections_closed: int = 0
    #: request lines admitted (including ones that answer with errors)
    requests: int = 0
    #: responses written back to clients
    responses: int = 0
    #: responses that carried ``{"ok": false}``
    errors: int = 0
    #: requests admitted but not yet answered (live gauge) and its peak
    in_flight: int = 0
    peak_in_flight: int = 0
    #: micro-batcher flushes, and what triggered each
    batches: int = 0
    flushes_size: int = 0
    flushes_drain: int = 0
    flushes_timer: int = 0
    #: queries resolved through the batcher, requests they came from,
    #: and the largest single flush (cross-client occupancy high-water)
    batched_queries: int = 0
    batched_requests: int = 0
    peak_batch_queries: int = 0

    @property
    def connections_active(self) -> int:
        return self.connections_opened - self.connections_closed

    @property
    def mean_batch_queries(self) -> float:
        """Average flush occupancy (queries per grid-coalesced pass)."""
        return self.batched_queries / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "connections_active": self.connections_active,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "batches": self.batches,
            "flushes_size": self.flushes_size,
            "flushes_drain": self.flushes_drain,
            "flushes_timer": self.flushes_timer,
            "batched_queries": self.batched_queries,
            "batched_requests": self.batched_requests,
            "peak_batch_queries": self.peak_batch_queries,
            "mean_batch_queries": self.mean_batch_queries,
        }


class _MicroBatcher:
    """Coalesce concurrently pending queries into one grid pass.

    Submissions accumulate until one of three triggers flushes them all
    through a single :func:`resolve_queries` call:

    ``size``
        the pending pool reached ``max_batch`` queries;
    ``drain``
        the event loop reached the end of the turn in which the first
        pending query was admitted (``hold_s == 0``).  Admission is
        synchronous in each connection's read loop, so by then every
        connection with buffered input has contributed — concurrent
        load coalesces, and a lone serial request flushes immediately;
    ``timer``
        the opt-in ``hold_s > 0`` window expired: the batch was held
        across turns to gather more occupancy at a bounded latency
        cost.
    """

    def __init__(
        self,
        registry: OptimizerRegistry,
        stats: ServerStats,
        *,
        max_batch: int,
        hold_s: float,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if hold_s < 0:
            raise ValueError(f"hold window must be >= 0, got {hold_s}")
        self._registry = registry
        self._stats = stats
        self._max_batch = max_batch
        self._hold_s = hold_s
        self._pending: list[tuple[list[Query], asyncio.Future]] = []
        self._pending_queries = 0
        self._scheduled: asyncio.TimerHandle | asyncio.Handle | None = None

    def submit(self, queries: list[Query]) -> "asyncio.Future[list[QueryResult]]":
        """Queue one request's queries; the future resolves at flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((queries, future))
        self._pending_queries += len(queries)
        if self._pending_queries >= self._max_batch:
            self.flush("size")
        elif self._scheduled is None:
            if self._hold_s > 0:
                self._scheduled = loop.call_later(self._hold_s, self._flush_scheduled)
            else:
                self._scheduled = loop.call_soon(self._flush_scheduled)
        return future

    def _flush_scheduled(self) -> None:
        self._scheduled = None
        self.flush("drain" if self._hold_s == 0 else "timer")

    def flush(self, reason: str = "drain") -> None:
        """Resolve everything pending in one coalesced pass."""
        if self._scheduled is not None:
            self._scheduled.cancel()
            self._scheduled = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        n_queries, self._pending_queries = self._pending_queries, 0
        stats = self._stats
        stats.batches += 1
        stats.batched_queries += n_queries
        stats.batched_requests += len(pending)
        stats.peak_batch_queries = max(stats.peak_batch_queries, n_queries)
        setattr(stats, f"flushes_{reason}", getattr(stats, f"flushes_{reason}") + 1)
        flat = [query for queries, _ in pending for query in queries]
        try:
            # every query passed _admit_query, so skip re-normalization
            results = resolve_queries(self._registry, flat, pre_normalized=True)
        except Exception as exc:  # pre-validated queries: only infrastructure
            # failures (e.g. a shard file going bad mid-serving) land here;
            # every waiter gets the error instead of the whole server dying
            for _, future in pending:
                if not future.done():
                    future.set_exception(
                        RuntimeError(f"batch resolution failed: {exc}")
                    )
            return
        offset = 0
        for queries, future in pending:
            chunk = results[offset : offset + len(queries)]
            offset += len(queries)
            if not future.done():
                future.set_result(chunk)

class AsyncOptimizerServer:
    """Socket transport for one :class:`OptimizerRegistry`.

    Construct, then ``await start(address)``; ``await wait_closed()``
    blocks until a shutdown request, :meth:`aclose`, or a signal under
    :func:`run_server` drains the server.
    """

    def __init__(
        self,
        registry: OptimizerRegistry,
        *,
        default_preset: str | None = None,
        max_batch: int = 64,
        hold_us: float = 0.0,
        max_queries: int = MAX_BATCH_QUERIES,
        max_line_bytes: int = 1 << 20,
        max_pipeline: int = 1024,
        drain_timeout: float = 5.0,
    ) -> None:
        self.registry = registry
        self.stats = ServerStats()
        self._default_preset = default_preset
        self._max_queries = max_queries
        self._max_line_bytes = max_line_bytes
        #: per-connection cap on admitted-but-unwritten responses: past
        #: it the read loop stops admitting, which stops reading, which
        #: pushes TCP backpressure onto a client that isn't reading —
        #: server memory stays bounded no matter how a client behaves
        self._max_pipeline = max_pipeline
        #: how long a drain waits for a connection's queued responses to
        #: reach a slow client before dropping them (shutdown must not
        #: hang on a client that stopped reading)
        self._drain_timeout = drain_timeout
        self._batcher = _MicroBatcher(
            registry, self.stats, max_batch=max_batch, hold_s=hold_us / 1e6
        )
        self._server: asyncio.base_events.Server | None = None
        self._bound: Address | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, address: str | Address) -> "AsyncOptimizerServer":
        """Bind and begin accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        addr = parse_address(address)
        if addr.kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=addr.path, limit=self._max_line_bytes
            )
            self._bound = addr
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, addr.host, addr.port,
                limit=self._max_line_bytes,
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self._bound = Address("tcp", host=host, port=int(port))
        return self

    @property
    def address(self) -> Address:
        """The actually bound endpoint (resolves an ephemeral port 0)."""
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, stop reading, answer every
        admitted request, flush the batcher, close all connections."""
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # interrupt each connection's read loop; its handler flushes the
        # responses already queued (bounded by drain_timeout per
        # connection for clients that stopped reading) before closing
        for task in list(self._connections):
            task.cancel()
        self._batcher.flush("drain")
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        # lines admitted while the read loops were being cancelled may
        # have queued new work — resolve it so no waiter leaks
        self._batcher.flush("drain")
        if self._bound is not None and self._bound.kind == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self._bound.path)
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.stats.connections_opened += 1
        responses: asyncio.Queue = asyncio.Queue()
        # the pipelining bound: acquired per admitted request, released
        # by the writer once the response is out (or dropped)
        window = asyncio.Semaphore(self._max_pipeline)
        writer_task = asyncio.create_task(
            self._write_responses(responses, writer, window)
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # a line beyond the transport cap: answer in-band,
                    # then close — framing past it is unknowable
                    self._count_admitted()
                    responses.put_nowait(("done", {
                        "ok": False,
                        "error": f"request line exceeds {self._max_line_bytes} bytes",
                    }))
                    break
                if not line:
                    break
                text = line.strip()
                if not text:
                    continue
                # blocks only when the client is max_pipeline responses
                # behind — reading stops, and TCP pushes back
                await window.acquire()
                # admission is synchronous: when every readable line has
                # been admitted the loop turn ends, and that is exactly
                # when the batcher's end-of-turn flush fires
                self._admit_line(
                    text.decode("utf-8", "replace"), responses.put_nowait
                )
        except asyncio.CancelledError:
            pass  # drain: stop reading, fall through to flush the queue
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # the client vanished; answer what we can, then close
        finally:
            responses.put_nowait(None)
            await self._drain_writer(writer_task, responses)
            writer.close()
            try:
                # close() flushes buffered data first — which never ends
                # when the peer stopped reading, so bound it and abort
                await asyncio.wait_for(writer.wait_closed(), self._drain_timeout)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                writer.transport.abort()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.stats.connections_closed += 1
            self._connections.discard(task)

    async def _drain_writer(
        self, writer_task: asyncio.Task, responses: asyncio.Queue
    ) -> None:
        """Give already-admitted responses up to ``drain_timeout`` to
        reach the client, tolerating the drain cancellation itself —
        then drop the remainder: a client that stopped reading must
        never wedge shutdown."""
        cancels = 0
        while not writer_task.done():
            try:
                await asyncio.wait_for(
                    asyncio.shield(writer_task), self._drain_timeout
                )
            except asyncio.TimeoutError:
                writer_task.cancel()  # stalled client: drop the rest
                break
            except asyncio.CancelledError:
                # first cancel is aclose() interrupting the wait — keep
                # draining; repeats mean event-loop rundown: stop
                cancels += 1
                if cancels >= 2:
                    writer_task.cancel()
                    break
            except Exception:
                break
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await writer_task
        # whatever never reached the writer still counts as answered for
        # the in-flight gauge
        while True:
            try:
                item = responses.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                self.stats.in_flight -= 1

    def _count_admitted(self) -> None:
        self.stats.requests += 1
        self.stats.in_flight += 1
        self.stats.peak_in_flight = max(
            self.stats.peak_in_flight, self.stats.in_flight
        )

    def _admit_line(self, text: str, enqueue: Callable[[tuple], None]) -> None:
        """Admit one request line without yielding: immediate responses
        enqueue as ``("done", doc)``, query requests enter the shared
        micro-batch and enqueue as ``("query", kind, id, future)``."""
        self._count_admitted()
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            enqueue(("done", {"ok": False, "error": f"invalid JSON: {exc}"}))
            return
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            if isinstance(obj, dict) and obj.get("op") == "shutdown":
                enqueue(("done", self._handle_shutdown(request_id)))
                return
            extracted = extract_queries(
                obj,
                default_preset=self._default_preset,
                max_queries=self._max_queries,
            )
            if extracted is None:
                response = handle_op(obj, self.registry)
                if obj.get("op") == "stats":
                    # the socket transport reports itself alongside the
                    # registry (stdio responses are unchanged)
                    response["server"] = self.stats.as_dict()
                if request_id is not None:
                    response["id"] = request_id
                enqueue(("done", response))
                return
            kind, queries = extracted
            # admission-validate *before* entering the shared batch: one
            # client's bad query must never poison a flush that carries
            # other clients' requests
            normalized = [self._admit_query(query) for query in queries]
        except (TypeError, ValueError, OverflowError) as exc:
            enqueue(("done", error_response(exc, request_id)))
            return
        except Exception as exc:  # noqa: BLE001 — a multi-client server
            # answers in-band and keeps serving rather than dying
            enqueue(("done", self._internal_error(exc, request_id)))
            return
        enqueue(("query", kind, request_id, self._batcher.submit(normalized)))

    def _admit_query(self, query: Query) -> Query:
        """The :func:`~repro.service.batch.as_query` checks, applied in
        place: ``query_from_obj`` already coerced the field types, so
        validating via the shared :func:`check_query_values` without
        rebuilding the (frozen) Query keeps admission cheap."""
        check_query_values(query.d, query.m)
        self.registry.params(query.preset)  # unknown presets fail here
        return query

    @staticmethod
    def _internal_error(exc: BaseException, request_id: object | None) -> dict:
        response: dict = {"ok": False, "error": f"internal server error: {exc}"}
        if request_id is not None:
            response["id"] = request_id
        return response

    def _handle_shutdown(self, request_id: object | None) -> dict:
        """Acknowledge, then drain in the background.  The ack is queued
        before the drain cancels the reader, so it is always written."""
        asyncio.get_running_loop().create_task(self.aclose())
        response: dict = {"ok": True, "op": "shutdown", "draining": True}
        if request_id is not None:
            response["id"] = request_id
        return response

    async def _write_responses(
        self,
        responses: asyncio.Queue,
        writer: asyncio.StreamWriter,
        window: asyncio.Semaphore,
    ) -> None:
        """Consume the admission queue in FIFO order — resolving query
        futures as they come up — and write each response."""
        broken = False
        while True:
            item = await responses.get()
            if item is None:
                return
            if item[0] == "done":
                response = item[1]
            else:
                _, kind, request_id, future = item
                try:
                    response = build_response(kind, await future, request_id)
                except Exception as exc:  # noqa: BLE001 — see _admit_line
                    response = self._internal_error(exc, request_id)
            self.stats.in_flight -= 1
            window.release()
            if not response.get("ok", True):
                self.stats.errors += 1
            if broken:
                continue  # keep consuming so in-flight accounting drains
            try:
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                self.stats.responses += 1
            except (ConnectionResetError, BrokenPipeError, OSError):
                broken = True


def run_server(
    registry: OptimizerRegistry,
    address: str | Address,
    *,
    default_preset: str | None = None,
    max_batch: int = 64,
    hold_us: float = 0.0,
    max_queries: int = MAX_BATCH_QUERIES,
    install_signal_handlers: bool = True,
    ready: Callable[[AsyncOptimizerServer], None] | None = None,
) -> ServerStats:
    """Serve until shutdown (request, signal, or KeyboardInterrupt);
    returns the transport stats.  The blocking entry behind
    ``repro serve --socket``; ``ready`` fires once the socket is bound.
    """

    async def _main() -> ServerStats:
        server = AsyncOptimizerServer(
            registry,
            default_preset=default_preset,
            max_batch=max_batch,
            hold_us=hold_us,
            max_queries=max_queries,
        )
        await server.start(address)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(server.aclose())
                    )
        if ready is not None:
            ready(server)
        await server.wait_closed()
        return server.stats

    return asyncio.run(_main())
