"""One server configuration, shared by every way a server starts.

``repro serve --socket``, ``repro cluster join``, and programmatic
:class:`~repro.service.async_server.AsyncOptimizerServer` construction
used to thread the same knobs (``--max-batch``, ``--hold-us``,
``--auth-token``, ``--shed-queries``, ``--shed-bytes``, ...) as loose
kwargs through three code paths.  :class:`ServerConfig` is the single
frozen dataclass they all consume: validation lives here once, the CLI
builds one with :meth:`ServerConfig.from_flags`, and
``AsyncOptimizerServer(registry, config=cfg)`` applies it verbatim —
so a cluster node is guaranteed to interpret the flags exactly as a
standalone server would.

>>> ServerConfig(max_batch=32).max_batch
32
>>> ServerConfig(shed_queries=0)
Traceback (most recent call last):
    ...
ValueError: shed_queries must be >= 1, got 0
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.service.server import MAX_BATCH_QUERIES

__all__ = ["ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Every tunable of one optimizer server, validated at construction."""

    #: preset assumed when a request names none
    default_preset: str | None = None
    #: micro-batcher flush size (cross-client coalescing high-water)
    max_batch: int = 64
    #: opt-in micro-batch hold window, microseconds (0 = end-of-turn)
    hold_us: float = 0.0
    #: per-request query-count cap
    max_queries: int = MAX_BATCH_QUERIES
    #: JSON line / binary frame payload cap, bytes
    max_line_bytes: int = 1 << 20
    #: per-connection cap on admitted-but-unwritten responses
    max_pipeline: int = 1024
    #: seconds a drain waits on a client that stopped reading
    drain_timeout: float = 5.0
    #: shared secret (binary HELLO / JSON ``{"op": "auth"}``)
    auth_token: str | None = None
    #: admission-control high-water marks (None = shedding off)
    shed_queries: int | None = None
    shed_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.hold_us < 0:
            raise ValueError(f"hold_us must be >= 0, got {self.hold_us}")
        if self.max_queries < 1:
            raise ValueError(f"max_queries must be >= 1, got {self.max_queries}")
        if self.max_line_bytes < 1:
            raise ValueError(
                f"max_line_bytes must be >= 1, got {self.max_line_bytes}"
            )
        if self.max_pipeline < 1:
            raise ValueError(f"max_pipeline must be >= 1, got {self.max_pipeline}")
        if self.drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )
        if self.shed_queries is not None and self.shed_queries < 1:
            raise ValueError(
                f"shed_queries must be >= 1, got {self.shed_queries}"
            )
        if self.shed_bytes is not None and self.shed_bytes < 1:
            raise ValueError(f"shed_bytes must be >= 1, got {self.shed_bytes}")

    def as_kwargs(self) -> dict[str, Any]:
        """The exact keyword set ``AsyncOptimizerServer`` accepts."""
        return asdict(self)

    @classmethod
    def from_flags(
        cls, args: Any, *, default_preset: str | None = None
    ) -> "ServerConfig":
        """Build from an argparse namespace carrying the shared server
        flags (``repro serve`` and ``repro cluster join`` both add them
        via one parser helper; absent/None flags keep the defaults)."""

        def flag(name: str, fallback: Any) -> Any:
            value = getattr(args, name, None)
            return fallback if value is None else value

        return cls(
            default_preset=default_preset,
            max_batch=flag("max_batch", cls.max_batch),
            hold_us=flag("hold_us", cls.hold_us),
            auth_token=getattr(args, "auth_token", None),
            shed_queries=getattr(args, "shed_queries", None),
            shed_bytes=getattr(args, "shed_bytes", None),
        )
