"""Batched query resolution over an optimizer registry.

A :class:`QueryBatch` collects heterogeneous ``(preset, d, m)``
lookups and answers them all in one pass:

1. every query checks the registry's result memo first;
2. the misses are grouped by ``(preset, d)`` and deduplicated by block
   size, so repeats inside one batch cost one cell;
3. each group does its partition lookups against the preset's stored
   :class:`~repro.model.optimizer.OptimizerTable` (a bisect, no model
   evaluation) and prices them with one
   :func:`~repro.model.vectorized.multiphase_time_grid` call per
   winning partition — exactly the needed cells, no cross product;
4. block sizes beyond the table's recorded sweep bound — where the
   table's last segment would be an unverified extrapolation — are
   scored exactly over the full candidate pool in one grid call,
   matching :func:`~repro.model.optimizer.best_partition` bit for bit.

The grid kernel is bitwise-identical to the scalar model, so each
result's ``time_us`` equals ``multiphase_time(m, d, partition,
params)`` to the last bit; within the sweep bound the partition is the
stored table's answer, whose switch points are located to ~1e-3 bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.core.partitions import cached_partitions
from repro.model.vectorized import grid_winners, multiphase_time_grid
from repro.util.validation import MAX_DIMENSION, check_block_size, check_dimension

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.registry import OptimizerRegistry

__all__ = [
    "Query",
    "QueryBatch",
    "QueryResult",
    "as_query",
    "check_query_values",
    "queries_from_arrays",
    "resolve_queries",
]


@dataclass(frozen=True)
class Query:
    """One optimal-partition lookup."""

    preset: str
    d: int
    m: float
    #: opaque caller payload echoed on the result (e.g. a request id)
    tag: Any = None


@dataclass(frozen=True)
class QueryResult:
    """The served answer for one :class:`Query`."""

    preset: str
    d: int
    m: float
    partition: tuple[int, ...]
    time_us: float
    #: ``"memo"`` (repeat query), ``"grid"`` (table + grid call), or
    #: ``"pool"`` (beyond the table's sweep bound: exact full-pool scoring)
    source: str
    tag: Any = None


def check_query_values(d: int, m: float) -> None:
    """The admission checks every transport shares: one place to add a
    rule so the stdio loop and the socket server cannot drift apart."""
    check_dimension(d, minimum=1)
    check_block_size(m)
    if not math.isfinite(m):
        raise ValueError(f"block size must be finite, got {m}")


def queries_from_arrays(
    catalog: Sequence[str], records: np.ndarray
) -> list[Query]:
    """Normalized :class:`Query` objects for packed wire records.

    ``records`` is an array of ``(preset, d, m)`` records (the binary
    transport's :data:`repro.service.wire.QUERY_DTYPE`); ``catalog``
    maps its integer preset indices to preset names.  Validation is the
    same gate :func:`check_query_values` applies per query — dimension
    in range, block size finite and non-negative — but evaluated over
    whole columns in numpy, so the admission cost of a frame is
    proportional to one pass, not one Python call per query.  The
    returned queries are ``pre_normalized``-grade for
    :func:`resolve_queries`.
    """
    presets = records["preset"]
    dims = records["d"]
    sizes = records["m"]
    if presets.size and int(presets.max()) >= len(catalog):
        bad = int(presets[presets >= len(catalog)][0])
        raise ValueError(
            f"preset index {bad} out of range for a catalog of {len(catalog)}"
        )
    if dims.size:
        lo, hi = int(dims.min()), int(dims.max())
        if lo < 1:
            raise ValueError(f"cube dimension must be >= 1, got {lo}")
        if hi > MAX_DIMENSION:
            raise ValueError(
                f"cube dimension {hi} exceeds the supported maximum "
                f"{MAX_DIMENSION} ({2 ** MAX_DIMENSION} nodes); did you "
                f"pass the node count instead?"
            )
    if sizes.size and not bool(np.isfinite(sizes).all()):
        bad_m = float(sizes[~np.isfinite(sizes)][0])
        raise ValueError(f"block size must be finite, got {bad_m}")
    if sizes.size and bool((sizes < 0).any()):
        raise ValueError(
            f"block size must be >= 0, got {float(sizes[sizes < 0][0])}"
        )
    names = [catalog[int(p)] for p in presets.tolist()]
    return [
        Query(preset=name, d=d, m=m)
        for name, d, m in zip(names, dims.tolist(), sizes.tolist())
    ]


def as_query(item: "Query | tuple[str | None, int, float]") -> Query:
    """Normalize and validate one lookup (a :class:`Query` or a bare
    ``(preset, d, m)`` tuple) — the shared admission check for every
    resolution path, including the socket transports."""
    if isinstance(item, Query):
        query = item
    else:
        preset, d, m = item
        query = Query(preset=preset, d=d, m=m)
    check_query_values(query.d, query.m)
    return Query(query.preset, int(query.d), float(query.m), query.tag)


def resolve_queries(
    registry: "OptimizerRegistry",
    queries: Iterable[Query | tuple],
    *,
    pre_normalized: bool = False,
) -> list[QueryResult]:
    """Answer every query, coalescing misses into grid-kernel calls.

    Accepts :class:`Query` objects or bare ``(preset, d, m)`` tuples;
    results come back in input order.  ``pre_normalized=True`` skips
    re-validation for callers (like the socket transport's admission
    path) whose queries already passed :func:`as_query`-grade checks —
    on a hot serving path the redundant :class:`Query` reconstruction
    is measurable.
    """
    if pre_normalized:
        return _resolve_normalized(registry, list(queries))
    return _resolve_normalized(registry, [as_query(q) for q in queries])


def _resolve_normalized(
    registry: "OptimizerRegistry", normalized: list[Query]
) -> list[QueryResult]:
    for query in normalized:
        registry.params(query.preset)  # reject unknown presets before any
        # stats/memo mutation, so a failed batch leaves no partial state
    results: list[QueryResult | None] = [None] * len(normalized)
    stats = registry.stats
    #: (preset, d) -> m -> indices awaiting that cell
    pending: dict[tuple[str, int], dict[float, list[int]]] = {}

    for i, query in enumerate(normalized):
        stats.queries += 1
        hit = registry.memo_get((query.preset, query.d, query.m))
        if hit is not None:
            partition, time_us = hit
            stats.memo_hits += 1
            results[i] = QueryResult(
                query.preset, query.d, query.m, partition, time_us, "memo", query.tag
            )
        else:
            stats.memo_misses += 1
            group = pending.setdefault((query.preset, query.d), {})
            group.setdefault(query.m, []).append(i)

    for (preset, d), by_m in pending.items():
        params = registry.params(preset)
        bound = registry.coverage(preset, d)

        def finish(
            m: float, partition: tuple[int, ...], time_us: float, source: str
        ) -> None:
            registry.memo_put((preset, d, m), (partition, time_us))
            waiting = by_m[m]
            stats.coalesced += len(waiting) - 1
            for i in waiting:
                results[i] = QueryResult(
                    preset, d, m, partition, time_us, source, normalized[i].tag
                )

        covered: list[float] = []
        beyond: list[float] = []
        for m in sorted(by_m):
            (covered if m <= bound else beyond).append(m)

        # block sizes the table's sweep covers: partition from the
        # stored table (a bisect), price per winning partition so only
        # the needed cells are evaluated; the table itself is fetched
        # only here so an all-beyond group never loads (or sweeps) it
        if covered:
            table = registry.table(preset, d)
            groups: dict[tuple[int, ...], list[float]] = {}
            for m in covered:
                groups.setdefault(table.lookup(m), []).append(m)
            for partition, ms in groups.items():
                grid = multiphase_time_grid(ms, d, [partition], params)
                stats.grid_calls += 1
                stats.grid_cells += grid.size
                for col, m in enumerate(ms):
                    finish(m, partition, float(grid[0, col]), "grid")

        # beyond the sweep bound the table's last segment is just an
        # extrapolation, so score the full candidate pool exactly
        if beyond:
            pool = cached_partitions(d)
            grid = multiphase_time_grid(beyond, d, pool, params)
            stats.grid_calls += 1
            stats.grid_cells += grid.size
            winners = grid_winners(grid, pool)
            rows = {partition: row for row, partition in enumerate(pool)}
            for col, m in enumerate(beyond):
                finish(m, winners[col], float(grid[rows[winners[col]], col]), "pool")
    return results  # type: ignore[return-value]


class QueryBatch:
    """Accumulate lookups, then :meth:`resolve` them in one pass.

    >>> from repro.service.registry import OptimizerRegistry
    >>> batch = QueryBatch(OptimizerRegistry())
    >>> _ = batch.add("ipsc860", 7, 40.0)
    >>> _ = batch.add("ipsc860", 5, 40.0)
    >>> [r.partition for r in batch.resolve()]
    [(4, 3), (3, 2)]
    """

    def __init__(self, registry: "OptimizerRegistry") -> None:
        self._registry = registry
        self._queries: list[Query] = []

    def add(self, preset: str, d: int, m: float, *, tag: Any = None) -> int:
        """Queue one lookup; returns its index in the result list."""
        self._queries.append(as_query(Query(preset, d, m, tag)))
        return len(self._queries) - 1

    def extend(self, queries: Iterable[Query | tuple]) -> None:
        """Queue many lookups (``Query`` objects or bare tuples)."""
        normalized = [as_query(q) for q in queries]
        # validate everything first so a bad item leaves the batch
        # unchanged instead of half-queued
        self._queries.extend(normalized)

    def __len__(self) -> int:
        return len(self._queries)

    def resolve(self) -> list[QueryResult]:
        """Answer every queued query (and clear the batch)."""
        queries, self._queries = self._queries, []
        # add()/extend() already normalized and validated each query
        return _resolve_normalized(self._registry, queries)
