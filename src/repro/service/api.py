"""One way in: ``connect()`` / ``aconnect()`` and the client protocol.

Callers used to juggle :class:`ServiceClient` vs
:class:`AsyncServiceClient`, ``parse_address``, ``wire=``, and
``auth_token=`` by hand — and none of that said anything about
clusters.  These factories collapse the surface to a single decision,
the *target string*:

``"HOST:PORT"`` / ``":PORT"`` / ``"unix:PATH"``
    One server.  ``connect`` returns a
    :class:`~repro.service.client.ServerClient`, ``aconnect`` an
    :class:`~repro.service.client.AsyncServerClient`.
``"cluster:HOST:PORT"`` / ``"cluster:unix:PATH"``
    A coordinator.  The same calls return a
    :class:`~repro.fabric.cluster.ClusterClient` /
    :class:`~repro.fabric.cluster.AsyncClusterClient` that routes each
    query by its (preset, d) shard key, fails over across replicas,
    and refreshes the routing table on epoch change.

Both shapes satisfy :class:`OptimizerClient` (resp.
:class:`AsyncOptimizerClient`) — context manager, ``query``,
``query_many``, ``stats``, ``close`` — so call sites are agnostic to
whether one server or a whole fabric answers:

>>> from repro.service import connect
>>> # with connect("cluster:127.0.0.1:7840", wire="binary") as client:
>>> #     client.query_many([(7, 40.0), (5, 8.0)])
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.service.client import AsyncServerClient, ServerClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.cluster import RetryPolicy

__all__ = [
    "AsyncOptimizerClient",
    "CLUSTER_SCHEME",
    "OptimizerClient",
    "aconnect",
    "connect",
]

#: target prefix that selects cluster routing via a coordinator
CLUSTER_SCHEME = "cluster:"


@runtime_checkable
class OptimizerClient(Protocol):
    """What every blocking optimizer client — one server or a whole
    cluster — guarantees its callers."""

    def query(self, d: int, m: float, *, preset: str | None = None) -> dict: ...

    def query_many(
        self, queries: Iterable, *, preset: str | None = None,
        frame_queries: int | None = None,
    ) -> list[dict]: ...

    def stats(self) -> dict: ...

    def presets(self) -> list[str]: ...

    def close(self) -> None: ...

    def __enter__(self) -> "OptimizerClient": ...

    def __exit__(self, *exc_info: object) -> None: ...


@runtime_checkable
class AsyncOptimizerClient(Protocol):
    """The asyncio twin of :class:`OptimizerClient`."""

    async def query(self, d: int, m: float, *, preset: str | None = None) -> dict: ...

    async def query_many(
        self, queries: Iterable, *, preset: str | None = None,
        frame_queries: int | None = None,
    ) -> list[dict]: ...

    async def stats(self) -> dict: ...

    async def presets(self) -> list[str]: ...

    async def aclose(self) -> None: ...


def connect(
    target: str,
    *,
    wire: str = "json",
    auth_token: str | None = None,
    timeout: float | None = 30.0,
    retry: "RetryPolicy | None" = None,
) -> OptimizerClient:
    """A ready-to-use blocking client for ``target``.

    ``retry`` (a :class:`~repro.fabric.cluster.RetryPolicy`) only
    applies to cluster targets — replica failover is meaningless
    against a single server — and raises :exc:`ValueError` otherwise.
    """
    if target.startswith(CLUSTER_SCHEME):
        from repro.fabric.cluster import ClusterClient, CoordinatorRoutes

        routes = CoordinatorRoutes(
            target[len(CLUSTER_SCHEME):], timeout=timeout
        )
        return ClusterClient(
            routes, wire=wire, auth_token=auth_token, timeout=timeout,
            retry=retry,
        )
    if retry is not None:
        raise ValueError(
            "retry= applies to cluster targets only "
            f"(got single-server target {target!r})"
        )
    return ServerClient(target, wire=wire, auth_token=auth_token, timeout=timeout)


async def aconnect(
    target: str,
    *,
    wire: str = "json",
    auth_token: str | None = None,
    timeout: float | None = 30.0,
    retry: "RetryPolicy | None" = None,
) -> AsyncOptimizerClient:
    """A ready-to-use asyncio client for ``target`` (see
    :func:`connect` for the target grammar)."""
    if target.startswith(CLUSTER_SCHEME):
        from repro.fabric.cluster import AsyncClusterClient, CoordinatorRoutes

        routes = CoordinatorRoutes(
            target[len(CLUSTER_SCHEME):], timeout=timeout
        )
        client = AsyncClusterClient(
            routes, wire=wire, auth_token=auth_token, timeout=timeout,
            retry=retry,
        )
        await client.refresh()
        return client
    if retry is not None:
        raise ValueError(
            "retry= applies to cluster targets only "
            f"(got single-server target {target!r})"
        )
    return await AsyncServerClient.connect(
        target, wire=wire, auth_token=auth_token, timeout=timeout
    )
