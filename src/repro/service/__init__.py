"""Long-lived optimizer query service (paper §6, served at scale).

The paper's punchline is that the block-size/partition enumeration
"needs to be done only once and the optimal combination stored for
repeated future use".  This subsystem is the *repeated future use*:

:mod:`repro.service.registry`
    :class:`OptimizerRegistry` — precomputes and shards
    :class:`~repro.model.optimizer.OptimizerTable` objects per machine
    preset × cube dimension (backed by the v2 shard files of
    :mod:`repro.model.store`), with lazy loading, LRU eviction, a
    result memo cache, and cache-hit statistics.
:mod:`repro.service.batch`
    :class:`QueryBatch` — coalesces heterogeneous ``(preset, d, m)``
    lookups into as few grid-kernel calls as possible.
:mod:`repro.service.server`
    :func:`serve` — the stdin/stdout JSON-lines request loop behind
    ``repro serve`` (and the one-shot ``repro query``).
"""

from repro.service.batch import Query, QueryBatch, QueryResult, resolve_queries
from repro.service.registry import DEFAULT_DIMS, OptimizerRegistry, RegistryStats
from repro.service.server import serve

__all__ = [
    "DEFAULT_DIMS",
    "OptimizerRegistry",
    "Query",
    "QueryBatch",
    "QueryResult",
    "RegistryStats",
    "resolve_queries",
    "serve",
]
