"""Long-lived optimizer query service (paper §6, served at scale).

The paper's punchline is that the block-size/partition enumeration
"needs to be done only once and the optimal combination stored for
repeated future use".  This subsystem is the *repeated future use*:

:mod:`repro.service.registry`
    :class:`OptimizerRegistry` — precomputes and shards
    :class:`~repro.model.optimizer.OptimizerTable` objects per machine
    preset × cube dimension (backed by the v2 shard files of
    :mod:`repro.model.store`), with lazy loading, LRU eviction, a
    result memo cache, and cache-hit statistics.
:mod:`repro.service.batch`
    :class:`QueryBatch` — coalesces heterogeneous ``(preset, d, m)``
    lookups into as few grid-kernel calls as possible.
:mod:`repro.service.server`
    :func:`serve` — the stdin/stdout JSON-lines request loop behind
    ``repro serve`` (and the one-shot ``repro query``), plus the
    protocol helpers every transport shares.
:mod:`repro.service.async_server`
    :class:`AsyncOptimizerServer` — the same protocol on asyncio
    TCP/Unix sockets with per-connection pipelining and a cross-client
    micro-batcher coalescing concurrently pending queries into single
    grid passes (``repro serve --socket``).
:mod:`repro.service.wire`
    The length-prefixed binary wire protocol (magic + version + opcode
    frames, packed ``(preset_id, d, m)`` query records, contiguous
    answer arrays) negotiated per connection with JSON fallback.
:mod:`repro.service.client`
    :class:`ServerClient` / :class:`AsyncServerClient` — sync and
    asyncio clients with pipelined ``query_many`` on either wire
    (the old ``ServiceClient`` / ``AsyncServiceClient`` names remain
    as deprecation shims).
:mod:`repro.service.api`
    :func:`connect` / :func:`aconnect` — the one public entry point:
    hand it ``"HOST:PORT"`` for a server or ``"cluster:HOST:PORT"``
    for a :mod:`repro.fabric` coordinator and get back one
    :class:`OptimizerClient`, identical surface either way.
:mod:`repro.service.config`
    :class:`ServerConfig` — every server tunable in one validated
    dataclass, consumed identically by ``repro serve``,
    ``repro cluster join``, and programmatic construction.
:mod:`repro.service.warmup`
    :func:`warm_registry` — seed the result memo from a JSON-lines
    query log before the first connection (``repro serve --warm``).
"""

from repro.service.api import (
    AsyncOptimizerClient,
    OptimizerClient,
    aconnect,
    connect,
)
from repro.service.async_server import (
    AsyncOptimizerServer,
    LatencyHistogram,
    ServerStats,
    run_server,
)
from repro.service.batch import Query, QueryBatch, QueryResult, as_query, resolve_queries
from repro.service.client import (
    Address,
    AsyncServerClient,
    AsyncServiceClient,
    ServerClient,
    ServiceClient,
    ServiceError,
    parse_address,
)
from repro.service.config import ServerConfig
from repro.service.registry import DEFAULT_DIMS, OptimizerRegistry, RegistryStats
from repro.service.server import MAX_BATCH_QUERIES, handle_request, serve
from repro.service.warmup import WarmupReport, load_query_log, warm_registry

__all__ = [
    "Address",
    "AsyncOptimizerClient",
    "AsyncOptimizerServer",
    "AsyncServerClient",
    "AsyncServiceClient",
    "DEFAULT_DIMS",
    "LatencyHistogram",
    "MAX_BATCH_QUERIES",
    "OptimizerClient",
    "OptimizerRegistry",
    "Query",
    "QueryBatch",
    "QueryResult",
    "RegistryStats",
    "ServerClient",
    "ServerConfig",
    "ServerStats",
    "ServiceClient",
    "ServiceError",
    "WarmupReport",
    "aconnect",
    "as_query",
    "connect",
    "handle_request",
    "load_query_log",
    "parse_address",
    "resolve_queries",
    "run_server",
    "serve",
    "warm_registry",
]
