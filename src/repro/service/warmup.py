"""Memo warm-up from a JSON-lines query log.

A production serving process should not pay cold-start grid calls for
traffic it has seen in a previous life.  ``repro serve --warm LOG``
(and :func:`warm_registry` directly) replays a query log — one JSON
request per line, exactly what clients send over the wire, so a capped
``tee`` of yesterday's traffic is already a valid log — through the
registry **before** the first connection: every distinct
``(preset, d, m)`` lands in the result memo in one coalesced
:func:`~repro.service.batch.resolve_queries` pass, and the first
client to ask again is served from the memo.

The parser is deliberately forgiving: op requests, malformed lines,
unknown presets, and invalid queries are counted and skipped — a log
is history, not input to validate against today's configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable

from repro.service.batch import Query, as_query, resolve_queries
from repro.service.registry import OptimizerRegistry
from repro.service.server import extract_queries

__all__ = ["WarmupReport", "load_query_log", "warm_registry"]


@dataclass
class WarmupReport:
    """What one warm-up pass read and resolved."""

    #: non-blank lines examined
    lines: int = 0
    #: individual queries parsed out of query-request lines
    queries: int = 0
    #: distinct (preset, d, m) cells resolved into the memo
    unique: int = 0
    #: lines or queries dropped (ops, bad JSON, unknown presets, ...)
    skipped: int = 0

    def describe(self) -> str:
        return (
            f"warmed {self.unique} unique queries "
            f"({self.queries} seen on {self.lines} log lines, "
            f"{self.skipped} skipped)"
        )


def load_query_log(
    source: str | Path | IO[str] | Iterable[str],
    *,
    default_preset: str | None = None,
    known_presets: tuple[str, ...] | None = None,
) -> tuple[list[Query], WarmupReport]:
    """Parse a JSON-lines query log into deduplicated queries.

    ``source`` is a path or any iterable of lines.  Single-query,
    ``queries``-batch, and bare-array request forms all contribute;
    everything else is skipped and counted.  When ``known_presets`` is
    given, queries for other presets are skipped too (the registry that
    is about to be warmed cannot answer them).
    """
    if isinstance(source, (str, Path)):
        # stream — a production log can be far larger than memory; only
        # the deduplicated query list needs to persist
        with Path(source).open(encoding="utf-8") as handle:
            return _load_from_lines(handle, default_preset, known_presets)
    return _load_from_lines(source, default_preset, known_presets)


def _load_from_lines(
    lines: Iterable[str],
    default_preset: str | None,
    known_presets: tuple[str, ...] | None,
) -> tuple[list[Query], WarmupReport]:
    report = WarmupReport()
    queries: list[Query] = []
    seen: set[tuple[str, int, float]] = set()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        report.lines += 1
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            report.skipped += 1
            continue
        try:
            # no size cap: the log is replayed in one offline pass, not
            # admitted through the per-request serving limit
            extracted = extract_queries(
                obj, default_preset=default_preset, max_queries=1 << 30
            )
        except (TypeError, ValueError, OverflowError):
            report.skipped += 1
            continue
        if extracted is None:  # an op request — nothing to warm
            report.skipped += 1
            continue
        for item in extracted[1]:
            report.queries += 1
            try:
                query = as_query(item)
            except (TypeError, ValueError, OverflowError):
                report.skipped += 1
                continue
            if known_presets is not None and query.preset not in known_presets:
                report.skipped += 1
                continue
            key = (query.preset, query.d, query.m)
            if key in seen:
                continue
            seen.add(key)
            # drop the tag: warm-up results belong to no request
            queries.append(Query(query.preset, query.d, query.m))
    report.unique = len(queries)
    return queries, report


def warm_registry(
    registry: OptimizerRegistry,
    source: str | Path | IO[str] | Iterable[str],
    *,
    default_preset: str | None = None,
) -> WarmupReport:
    """Replay a query log through ``registry`` to seed its result memo.

    Returns the :class:`WarmupReport`; after it, every logged cell that
    still fits the memo bound answers with ``"source": "memo"``.
    """
    queries, report = load_query_log(
        source,
        default_preset=default_preset,
        known_presets=registry.preset_names,
    )
    if queries:
        resolve_queries(registry, queries)
    return report
