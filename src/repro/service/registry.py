"""Sharded registry of precomputed optimizer tables.

The registry is the storage half of the query service: it owns one
:class:`~repro.model.optimizer.OptimizerTable` per (machine preset ×
cube dimension), either loaded lazily from the v2 shard files of
:mod:`repro.model.store` or built on demand by the grid-kernel hull
sweep.  Two bounded caches keep a long-lived process healthy under
arbitrary traffic:

* a **table LRU** (``max_loaded_tables``) over materialized tables —
  shard-backed tables reload lazily after eviction, built tables are
  re-swept;
* a **result memo** (``memo_capacity``) over resolved
  ``(preset, d, m)`` queries, so repeat lookups skip both the table
  bisect and the grid call entirely.

Every interaction is counted in :class:`RegistryStats`, which the
JSON-lines server reports in-band (``{"op": "stats"}``) and the CLI
prints after a serving session.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.model.optimizer import OptimizerTable, hull_of_optimality
from repro.model.params import PRESETS, MachineParams
from repro.model.store import ShardFile, load_shard, save_shard

__all__ = ["DEFAULT_DIMS", "OptimizerRegistry", "RegistryStats", "SHARD_SUFFIX"]

#: dimensions precomputed/sharded by default — the paper's figure range
#: plus the neighbouring cubes a library is likely to be asked about
DEFAULT_DIMS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)

#: shard files in a registry directory are named ``<preset><suffix>``
SHARD_SUFFIX = ".shard"


@dataclass
class RegistryStats:
    """Counters for one registry's lifetime."""

    #: individual queries seen by :func:`repro.service.batch.resolve_queries`
    queries: int = 0
    #: queries answered straight from the result memo
    memo_hits: int = 0
    #: queries that needed a table lookup + grid evaluation
    memo_misses: int = 0
    #: same-batch duplicates folded into an already-scheduled grid cell
    coalesced: int = 0
    #: tables swept from scratch (no shard held them)
    tables_built: int = 0
    #: tables materialized from a shard file
    tables_loaded: int = 0
    #: tables dropped by the LRU bound
    tables_evicted: int = 0
    #: grid-kernel invocations issued by batch resolution
    grid_calls: int = 0
    #: total cells across those invocations
    grid_cells: int = 0

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of queries served from the memo (0.0 when idle)."""
        return self.memo_hits / self.queries if self.queries else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot, hit rate included."""
        return {
            "queries": self.queries,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_hit_rate": self.memo_hit_rate,
            "coalesced": self.coalesced,
            "tables_built": self.tables_built,
            "tables_loaded": self.tables_loaded,
            "tables_evicted": self.tables_evicted,
            "grid_calls": self.grid_calls,
            "grid_cells": self.grid_cells,
        }


def _normalize_presets(
    presets: Mapping[str, MachineParams | Callable[[], MachineParams]] | None,
) -> dict[str, MachineParams]:
    source = presets if presets is not None else PRESETS
    out: dict[str, MachineParams] = {}
    for name, value in source.items():
        out[name] = value() if callable(value) else value
    return out


class OptimizerRegistry:
    """Precomputed optimal-partition tables, served preset × dimension.

    >>> registry = OptimizerRegistry()
    >>> registry.lookup("ipsc860", 7, 40.0)
    (4, 3)
    """

    def __init__(
        self,
        presets: Mapping[str, MachineParams | Callable[[], MachineParams]] | None = None,
        *,
        shard_dir: str | Path | None = None,
        m_max: float = 400.0,
        resolution: float = 0.25,
        max_loaded_tables: int = 64,
        memo_capacity: int = 65536,
    ) -> None:
        if max_loaded_tables < 1:
            raise ValueError(f"max_loaded_tables must be >= 1, got {max_loaded_tables}")
        if memo_capacity < 0:
            raise ValueError(f"memo_capacity must be >= 0, got {memo_capacity}")
        self.m_max = float(m_max)
        self.resolution = float(resolution)
        self.max_loaded_tables = int(max_loaded_tables)
        self.memo_capacity = int(memo_capacity)
        self.stats = RegistryStats()
        self._presets = _normalize_presets(presets)
        self._shards: dict[str, ShardFile] = {}
        self._tables: OrderedDict[tuple[str, int], OptimizerTable] = OrderedDict()
        self._memo: OrderedDict[
            tuple[str, int, float], tuple[tuple[int, ...], float]
        ] = OrderedDict()
        if shard_dir is not None:
            self._attach_shard_dir(Path(shard_dir))

    # ------------------------------------------------------------------
    # presets and shards
    # ------------------------------------------------------------------
    def _attach_shard_dir(self, directory: Path) -> None:
        if not directory.is_dir():
            raise ValueError(f"shard directory {directory} does not exist")
        paths = sorted(directory.glob(f"*{SHARD_SUFFIX}"))
        if not paths:
            raise ValueError(
                f"shard directory {directory} holds no *{SHARD_SUFFIX} files; "
                "build it with 'repro shards' (or check the path)"
            )
        for path in paths:
            shard = load_shard(path)
            name = path.name[: -len(SHARD_SUFFIX)]
            if shard.preset is not None and shard.preset != name:
                raise ValueError(
                    f"shard {path} was saved for preset {shard.preset!r} but is "
                    f"named {name!r}; renaming a shard would serve the wrong "
                    "calibration"
                )
            known = self._presets.get(name)
            if known is not None and known != shard.params:
                raise ValueError(
                    f"shard {path} was built for a different {name!r} calibration; "
                    "rebuild the shard or drop the preset override"
                )
            # shards may introduce presets the process didn't configure
            self._presets[name] = shard.params
            self._shards[name] = shard

    @property
    def preset_names(self) -> tuple[str, ...]:
        """Presets this registry can answer for, sorted."""
        return tuple(sorted(self._presets))

    def params(self, preset: str) -> MachineParams:
        """The calibration behind ``preset``."""
        try:
            return self._presets[preset]
        except KeyError:
            raise ValueError(
                f"unknown machine preset {preset!r}; have {sorted(self._presets)}"
            ) from None

    # ------------------------------------------------------------------
    # tables (LRU over materialized tables)
    # ------------------------------------------------------------------
    def table(self, preset: str, d: int) -> OptimizerTable:
        """The optimizer table for ``(preset, d)`` — from the LRU, the
        preset's shard, or a fresh grid-kernel sweep, in that order."""
        key = (preset, int(d))
        cached = self._tables.get(key)
        if cached is not None:
            self._tables.move_to_end(key)
            return cached
        params = self.params(preset)
        shard = self._shards.get(preset)
        if shard is not None and int(d) in shard:
            table = shard.load(int(d))
            self.stats.tables_loaded += 1
        else:
            table = hull_of_optimality(
                int(d), params, m_max=self.m_max, resolution=self.resolution
            )
            self.stats.tables_built += 1
        self._tables[key] = table
        while len(self._tables) > self.max_loaded_tables:
            (old_preset, old_d), _ = self._tables.popitem(last=False)
            old_shard = self._shards.get(old_preset)
            if old_shard is not None:
                old_shard.unload(old_d)
            self.stats.tables_evicted += 1
        return table

    @property
    def loaded_tables(self) -> int:
        """How many tables are currently materialized."""
        return len(self._tables)

    def has_shard(self, preset: str, d: int) -> bool:
        """Whether a shard file backs the ``(preset, d)`` table."""
        shard = self._shards.get(preset)
        return shard is not None and int(d) in shard

    def lookup(self, preset: str, d: int, m: float) -> tuple[int, ...]:
        """The stored optimal partition for one ``(preset, d, m)``."""
        return self.table(preset, d).lookup(m)

    def coverage(self, preset: str, d: int) -> float:
        """Block-size bound up to which the ``(preset, d)`` table's
        answers are exact.  Shards record the bound they were swept
        to; a shard that never recorded one is not trusted at all
        (bound 0.0 — every query re-scores the full pool exactly).
        Tables built in-process are exact up to this registry's
        ``m_max``.  Queries beyond the bound are re-evaluated exactly
        instead of trusting the table's last segment."""
        self.params(preset)  # unknown presets raise like everywhere else
        shard = self._shards.get(preset)
        if shard is not None and int(d) in shard:
            return shard.m_max if shard.m_max is not None else 0.0
        return self.m_max

    # ------------------------------------------------------------------
    # result memo
    # ------------------------------------------------------------------
    def memo_get(
        self, key: tuple[str, int, float]
    ) -> tuple[tuple[int, ...], float] | None:
        entry = self._memo.get(key)
        if entry is not None:
            self._memo.move_to_end(key)
        return entry

    def memo_put(
        self, key: tuple[str, int, float], value: tuple[tuple[int, ...], float]
    ) -> None:
        if self.memo_capacity == 0:
            return
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_capacity:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def resolve(self, queries: Iterable) -> list:
        """Resolve many ``(preset, d, m)`` lookups in one coalesced
        pass — see :func:`repro.service.batch.resolve_queries`."""
        from repro.service.batch import resolve_queries

        return resolve_queries(self, queries)

    # ------------------------------------------------------------------
    # precompute / persist
    # ------------------------------------------------------------------
    def precompute(
        self,
        presets: Sequence[str] | None = None,
        dims: Sequence[int] = DEFAULT_DIMS,
    ) -> None:
        """Materialize tables for every requested preset × dimension."""
        for preset in presets if presets is not None else self.preset_names:
            for d in dims:
                self.table(preset, d)

    def save_shards(
        self,
        directory: str | Path,
        presets: Sequence[str] | None = None,
        dims: Sequence[int] = DEFAULT_DIMS,
    ) -> list[Path]:
        """Write one shard file per preset into ``directory``.

        Tables not yet materialized are computed first; the result is a
        directory :meth:`from_shards` (or ``repro serve --shards``) can
        serve without re-running any sweep.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for preset in presets if presets is not None else self.preset_names:
            tables = {int(d): self.table(preset, d) for d in dims}
            # a table loaded from a shard is only exact up to the bound
            # *that* shard was swept to, which may be tighter than this
            # registry's m_max — record the tightest bound among the
            # exported dims so a re-exported shard never overclaims
            bound = min(
                (self.coverage(preset, d) for d in dims), default=self.m_max
            )
            path = directory / f"{preset}{SHARD_SUFFIX}"
            written.append(
                save_shard(
                    tables, self.params(preset), path, m_max=bound, preset=preset
                )
            )
        return written

    @classmethod
    def from_shards(cls, directory: str | Path, **kwargs) -> "OptimizerRegistry":
        """A registry serving a prebuilt shard directory.

        Presets are taken from the shard headers themselves, so the
        serving process needs no calibration of its own.
        """
        return cls(presets={}, shard_dir=directory, **kwargs)
