"""Client library for the optimizer query service socket transport.

Two clients over the same protocols the socket server speaks
(:mod:`repro.service.async_server`) — the JSON-lines protocol of the
stdio loop (:mod:`repro.service.server`) and, with ``wire="binary"``,
the length-prefixed binary protocol of :mod:`repro.service.wire`:

:class:`ServerClient`
    Blocking sockets, for scripts and the ``repro query --connect``
    CLI.  :meth:`ServerClient.query_many` pipelines: every request is
    written before the first response is read, so a server that
    micro-batches across in-flight requests sees them all at once.
:class:`AsyncServerClient`
    The same surface on asyncio streams, for concurrent load
    generators and services embedding the client in an event loop.

Prefer the :func:`repro.service.connect` / :func:`repro.service.aconnect`
factories over constructing these directly — they return the same
objects for a single server and a cluster-routing client for a
``cluster:`` target, behind one :class:`~repro.service.api.OptimizerClient`
protocol.  The pre-fabric names ``ServiceClient`` / ``AsyncServiceClient``
remain as deprecation shims.

On the binary wire the client opens with a ``HELLO`` (carrying the
optional ``auth_token``) and keeps the server's ``HELLO_OK`` preset
catalog, then :meth:`~ServerClient.query_many` packs queries into
``(preset_id, d, m)`` record frames and decodes the answer arrays back
into the same response documents the JSON wire produces — callers
cannot tell the transports apart by result shape.  Ops (``stats``,
``shutdown``) stay JSON-connection affairs; a binary
:meth:`~ServerClient.presets` answers from the negotiated catalog.
With ``auth_token`` on the JSON wire, the client authenticates with
``{"op": "auth", "token": ...}`` before anything else.

Addresses are written ``HOST:PORT`` (TCP; a bare ``:PORT`` binds
loopback) or ``unix:PATH`` / any spec containing ``/`` (Unix domain
socket), parsed by :func:`parse_address`:

>>> parse_address("127.0.0.1:7831")
Address(kind='tcp', host='127.0.0.1', port=7831, path='')
>>> str(parse_address("unix:/tmp/repro.sock"))
'unix:/tmp/repro.sock'

Responses are the protocol's JSON documents as plain dicts;
:meth:`~ServerClient.query` raises :class:`ServiceError` when the
server answers ``{"ok": false}`` so callers cannot mistake an in-band
error for a result.
"""

from __future__ import annotations

import asyncio
import json
import socket
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.service import wire as wire_proto

__all__ = [
    "Address",
    "AsyncServerClient",
    "AsyncServiceClient",
    "ServerClient",
    "ServiceClient",
    "ServiceError",
    "parse_address",
]

#: wire protocol selectors accepted by the clients
_WIRES = ("json", "binary")


class ServiceError(RuntimeError):
    """The server answered a request with ``{"ok": false}``."""

    def __init__(self, response: dict) -> None:
        super().__init__(response.get("error", "unknown service error"))
        #: the full error document the server sent back
        self.response = response


@dataclass(frozen=True)
class Address:
    """One serving endpoint: TCP ``host:port`` or a Unix socket path."""

    kind: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


def parse_address(spec: str | Address) -> Address:
    """Parse ``HOST:PORT``, ``:PORT``, ``unix:PATH``, or a filesystem
    path into an :class:`Address` (an :class:`Address` passes through).
    """
    if isinstance(spec, Address):
        return spec
    if not isinstance(spec, str) or not spec:
        raise ValueError("address must be 'HOST:PORT' or 'unix:PATH'")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("unix socket address has an empty path")
        return Address("unix", path=path)
    if "/" in spec:
        # a bare filesystem path is unambiguous — treat it as a socket
        return Address("unix", path=spec)
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        raise ValueError(
            f"address {spec!r} is not 'HOST:PORT' or 'unix:PATH'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {spec!r} has a non-integer port") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} is out of range 0..65535")
    return Address("tcp", host=host or "127.0.0.1", port=port)


def _query_request(item: object, default_preset: str | None) -> dict:
    """One protocol request document from a client-side query spec."""
    if isinstance(item, dict):
        doc = dict(item)
    elif isinstance(item, Sequence) and len(item) == 3:
        doc = {"preset": item[0], "d": item[1], "m": item[2]}
    elif isinstance(item, Sequence) and len(item) == 2:
        doc = {"d": item[0], "m": item[1]}
    else:
        raise ValueError(
            f"query must be a dict, (d, m), or (preset, d, m); got {item!r}"
        )
    if default_preset is not None:
        doc.setdefault("preset", default_preset)
    return doc


class _BinarySession:
    """The negotiated state and codec logic both clients share on the
    binary wire; the transports differ only in how bytes move."""

    def __init__(self, hello_ok: dict) -> None:
        self.catalog: list[str] = [str(name) for name in hello_ok["presets"]]
        self.preset_ids = {name: i for i, name in enumerate(self.catalog)}
        default = hello_ok.get("default_preset")
        self.default_preset: str | None = default if isinstance(default, str) else None

    def spec(self, item: object, preset: str | None) -> dict:
        """One query spec: the JSON request document plus its packed
        preset index, validated client-side against the catalog."""
        doc = _query_request(item, preset)
        unknown = set(doc) - {"preset", "d", "m", "id"}
        if unknown:
            raise ValueError(f"unknown query fields {sorted(unknown)}")
        name = doc.get("preset", self.default_preset)
        if name is None:
            raise ValueError(
                "query has no machine preset and the server has no default"
            )
        preset_id = self.preset_ids.get(name)
        if preset_id is None:
            raise ValueError(
                f"unknown machine preset {name!r} (server has {self.catalog})"
            )
        try:
            d, m = doc["d"], doc["m"]
        except KeyError as missing:
            raise ValueError(
                f"query is missing required field {missing}"
            ) from None
        return {"preset": name, "pid": preset_id, "d": d, "m": m, "id": doc.get("id")}

    @staticmethod
    def query_frame(specs: list[dict]) -> bytes:
        records = wire_proto.make_query_records(
            [(spec["pid"], spec["d"], spec["m"]) for spec in specs]
        )
        return wire_proto.pack_frame(
            wire_proto.OP_QUERY, wire_proto.encode_query_records(records)
        )

    @staticmethod
    def frame_docs(opcode: int, payload: bytes, specs: list[dict]) -> list[dict]:
        """The response documents for one answer frame — the same
        shape the JSON wire produces, so transports are swappable."""
        if opcode == wire_proto.OP_RESULT:
            times, sources, partitions = wire_proto.decode_result_payload(payload)
            if len(sources) != len(specs):
                raise ServiceError({
                    "ok": False,
                    "error": f"result frame carries {len(sources)} answers "
                             f"for {len(specs)} queries",
                })
            docs = []
            for spec, time_us, source, partition in zip(
                specs, times.tolist(), sources, partitions
            ):
                doc: dict[str, Any] = {
                    "ok": True,
                    "preset": spec["preset"],
                    "d": spec["d"],
                    "m": spec["m"],
                    "partition": list(partition),
                    "time_us": time_us,
                    "source": source,
                }
                if spec["id"] is not None:
                    doc["id"] = spec["id"]
                docs.append(doc)
            return docs
        message = payload.decode("utf-8", "replace")
        base: dict[str, Any] = {"ok": False, "error": message}
        if opcode == wire_proto.OP_RETRY_LATER:
            base["retry"] = True
        elif opcode != wire_proto.OP_ERROR:
            base["error"] = f"unexpected frame opcode {opcode}: {message!r}"
        docs = []
        for spec in specs:
            doc = dict(base)
            if spec["id"] is not None:
                doc["id"] = spec["id"]
            docs.append(doc)
        return docs


def _frame_chunk(n_specs: int, frame_queries: int | None) -> int:
    if frame_queries is None:
        return max(n_specs, 1)
    if frame_queries < 1:
        raise ValueError(f"frame_queries must be >= 1, got {frame_queries}")
    return frame_queries


def _hello_session(opcode: int, payload: bytes) -> _BinarySession:
    """Interpret the server's answer to a HELLO frame."""
    if opcode == wire_proto.OP_ERROR:
        raise ServiceError({"ok": False, "error": payload.decode("utf-8", "replace")})
    if opcode != wire_proto.OP_HELLO_OK:
        raise ServiceError({
            "ok": False,
            "error": f"expected HELLO_OK from the server, got opcode {opcode}",
        })
    return _BinarySession(wire_proto.parse_hello_ok(payload))


class ServerClient:
    """Blocking client for one server connection.

    ``wire="binary"`` negotiates the binary protocol at connect (and
    carries ``auth_token`` in the HELLO); on the default JSON wire an
    ``auth_token`` is presented via ``{"op": "auth"}`` first.  Usable
    as a context manager; the connection closes on exit.
    """

    def __init__(
        self,
        address: str | Address,
        *,
        timeout: float | None = 30.0,
        wire: str = "json",
        auth_token: str | None = None,
    ) -> None:
        if wire not in _WIRES:
            raise ValueError(f"wire must be one of {_WIRES}, got {wire!r}")
        addr = parse_address(address)
        if addr.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(addr.path)
        else:
            sock = socket.create_connection((addr.host, addr.port), timeout=timeout)
            sock.settimeout(timeout)
        self.address = addr
        self.wire = wire
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._session: _BinarySession | None = None
        if wire == "binary":
            self._file.write(wire_proto.pack_frame(
                wire_proto.OP_HELLO, wire_proto.hello_payload(auth_token)
            ))
            self._file.flush()
            self._session = _hello_session(*self._read_frame())
        elif auth_token is not None:
            response = self.request({"op": "auth", "token": auth_token})
            if not response.get("ok", False):
                raise ServiceError(response)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _write_lines(self, docs: Iterable[dict]) -> None:
        payload = b"".join(json.dumps(doc).encode() + b"\n" for doc in docs)
        self._file.write(payload)
        self._file.flush()

    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _read_frame(self) -> tuple[int, bytes]:
        _, opcode, payload = wire_proto.read_frame_blocking(self._file.read)
        return opcode, payload

    def request(self, obj: dict) -> dict:
        """One request, one response — no interpretation of either."""
        if self.wire == "binary":
            raise ValueError(
                "the binary wire carries query frames only; connect with "
                "wire='json' for ops"
            )
        self._write_lines([obj])
        return self._read_response()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, d: int, m: float, *, preset: str | None = None) -> dict:
        """One lookup; raises :class:`ServiceError` on an error answer."""
        doc: dict[str, Any] = {"d": d, "m": m}
        if preset is not None:
            doc["preset"] = preset
        if self.wire == "binary":
            response = self.query_many([doc])[0]
        else:
            response = self.request(doc)
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def query_many(
        self,
        queries: Iterable,
        *,
        preset: str | None = None,
        frame_queries: int | None = None,
    ) -> list[dict]:
        """Pipelined lookups: write every request, then read every
        response (in request order — the protocol guarantees it).
        Returns the raw response documents; callers inspect ``ok``.

        On the binary wire the queries pack into ``OP_QUERY`` record
        frames — one frame by default, or ``frame_queries`` per frame
        to bound per-frame latency; the response documents match the
        JSON wire's shape.
        """
        if self.wire != "binary":
            if frame_queries is not None:
                raise ValueError("frame_queries applies to the binary wire only")
            docs = [_query_request(q, preset) for q in queries]
            if not docs:
                return []
            self._write_lines(docs)
            return [self._read_response() for _ in docs]
        session = self._session
        assert session is not None
        specs = [session.spec(q, preset) for q in queries]
        if not specs:
            return []
        chunk = _frame_chunk(len(specs), frame_queries)
        groups = [specs[i : i + chunk] for i in range(0, len(specs), chunk)]
        self._file.write(b"".join(session.query_frame(g) for g in groups))
        self._file.flush()
        responses: list[dict] = []
        for group in groups:
            opcode, payload = self._read_frame()
            responses.extend(session.frame_docs(opcode, payload, group))
        return responses

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The server's live counters (registry stats; socket servers
        add a ``server`` section with transport/batcher counters)."""
        response = self.request({"op": "stats"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def presets(self) -> list[str]:
        if self._session is not None:
            # the HELLO_OK already carried the catalog
            return list(self._session.catalog)
        response = self.request({"op": "presets"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return list(response["presets"])

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (socket transport only)."""
        response = self.request({"op": "shutdown"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServerClient:
    """The same client surface on asyncio streams.

    >>> # client = await AsyncServerClient.connect("127.0.0.1:7831")
    >>> # await client.query(7, 40)  ->  {"ok": True, "partition": [4, 3], ...}
    """

    def __init__(
        self,
        address: Address,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.address = address
        self.wire = "json"
        self._reader = reader
        self._writer = writer
        self._session: _BinarySession | None = None

    @classmethod
    async def connect(
        cls,
        address: str | Address,
        *,
        timeout: float | None = 30.0,
        wire: str = "json",
        auth_token: str | None = None,
    ) -> "AsyncServerClient":
        if wire not in _WIRES:
            raise ValueError(f"wire must be one of {_WIRES}, got {wire!r}")
        addr = parse_address(address)
        if addr.kind == "unix":
            open_coro = asyncio.open_unix_connection(addr.path)
        else:
            open_coro = asyncio.open_connection(addr.host, addr.port)
        reader, writer = await asyncio.wait_for(open_coro, timeout)
        client = cls(addr, reader, writer)
        client.wire = wire
        if wire == "binary":
            writer.write(wire_proto.pack_frame(
                wire_proto.OP_HELLO, wire_proto.hello_payload(auth_token)
            ))
            await writer.drain()
            client._session = _hello_session(*await client._read_frame())
        elif auth_token is not None:
            response = await client.request({"op": "auth", "token": auth_token})
            if not response.get("ok", False):
                raise ServiceError(response)
        return client

    async def _write_lines(self, docs: Iterable[dict]) -> None:
        payload = b"".join(json.dumps(doc).encode() + b"\n" for doc in docs)
        self._writer.write(payload)
        await self._writer.drain()

    async def _read_response(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def _read_frame(self) -> tuple[int, bytes]:
        try:
            _, opcode, payload = await wire_proto.read_frame(self._reader)
        except asyncio.IncompleteReadError:
            raise ConnectionError("server closed the connection mid-frame") from None
        return opcode, payload

    async def request(self, obj: dict) -> dict:
        if self.wire == "binary":
            raise ValueError(
                "the binary wire carries query frames only; connect with "
                "wire='json' for ops"
            )
        await self._write_lines([obj])
        return await self._read_response()

    async def query(self, d: int, m: float, *, preset: str | None = None) -> dict:
        doc: dict[str, Any] = {"d": d, "m": m}
        if preset is not None:
            doc["preset"] = preset
        if self.wire == "binary":
            response = (await self.query_many([doc]))[0]
        else:
            response = await self.request(doc)
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def query_many(
        self,
        queries: Iterable,
        *,
        preset: str | None = None,
        frame_queries: int | None = None,
    ) -> list[dict]:
        """Pipelined lookups: one write carries every request, then the
        responses stream back in order.  On the binary wire the queries
        pack into ``OP_QUERY`` record frames (one by default,
        ``frame_queries`` per frame to bound per-frame latency)."""
        if self.wire != "binary":
            if frame_queries is not None:
                raise ValueError("frame_queries applies to the binary wire only")
            docs = [_query_request(q, preset) for q in queries]
            if not docs:
                return []
            await self._write_lines(docs)
            return [await self._read_response() for _ in docs]
        session = self._session
        assert session is not None
        specs = [session.spec(q, preset) for q in queries]
        if not specs:
            return []
        chunk = _frame_chunk(len(specs), frame_queries)
        groups = [specs[i : i + chunk] for i in range(0, len(specs), chunk)]
        self._writer.write(b"".join(session.query_frame(g) for g in groups))
        await self._writer.drain()
        responses: list[dict] = []
        for group in groups:
            opcode, payload = await self._read_frame()
            responses.extend(session.frame_docs(opcode, payload, group))
        return responses

    async def stats(self) -> dict:
        response = await self.request({"op": "stats"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def presets(self) -> list[str]:
        if self._session is not None:
            return list(self._session.catalog)
        response = await self.request({"op": "presets"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return list(response["presets"])

    async def shutdown(self) -> dict:
        response = await self.request({"op": "shutdown"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServerClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


# ----------------------------------------------------------------------
# deprecation shims (pre-fabric names)
# ----------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.service.{old} is deprecated; use repro.service.{new}",
        DeprecationWarning,
        stacklevel=3,
    )


class ServiceClient(ServerClient):
    """Deprecated name for :class:`ServerClient` — prefer
    :func:`repro.service.connect`, which also understands ``cluster:``
    targets."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        _deprecated("ServiceClient", "connect()")
        super().__init__(*args, **kwargs)


class AsyncServiceClient(AsyncServerClient):
    """Deprecated name for :class:`AsyncServerClient` — prefer
    :func:`repro.service.aconnect`."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        _deprecated("AsyncServiceClient", "aconnect()")
        super().__init__(*args, **kwargs)
