"""Client library for the optimizer query service socket transport.

Two clients over the same JSON-lines protocol the stdio loop speaks
(:mod:`repro.service.server`), pointed at a socket server
(:mod:`repro.service.async_server`):

:class:`ServiceClient`
    Blocking sockets, for scripts and the ``repro query --connect``
    CLI.  :meth:`ServiceClient.query_many` pipelines: every request is
    written before the first response is read, so a server that
    micro-batches across in-flight requests sees them all at once.
:class:`AsyncServiceClient`
    The same surface on asyncio streams, for concurrent load
    generators and services embedding the client in an event loop.

Addresses are written ``HOST:PORT`` (TCP; a bare ``:PORT`` binds
loopback) or ``unix:PATH`` / any spec containing ``/`` (Unix domain
socket), parsed by :func:`parse_address`:

>>> parse_address("127.0.0.1:7831")
Address(kind='tcp', host='127.0.0.1', port=7831, path='')
>>> str(parse_address("unix:/tmp/repro.sock"))
'unix:/tmp/repro.sock'

Responses are the protocol's JSON documents as plain dicts;
:meth:`~ServiceClient.query` raises :class:`ServiceError` when the
server answers ``{"ok": false}`` so callers cannot mistake an in-band
error for a result.
"""

from __future__ import annotations

import asyncio
import json
import socket
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "Address",
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceError",
    "parse_address",
]


class ServiceError(RuntimeError):
    """The server answered a request with ``{"ok": false}``."""

    def __init__(self, response: dict) -> None:
        super().__init__(response.get("error", "unknown service error"))
        #: the full error document the server sent back
        self.response = response


@dataclass(frozen=True)
class Address:
    """One serving endpoint: TCP ``host:port`` or a Unix socket path."""

    kind: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


def parse_address(spec: str | Address) -> Address:
    """Parse ``HOST:PORT``, ``:PORT``, ``unix:PATH``, or a filesystem
    path into an :class:`Address` (an :class:`Address` passes through).
    """
    if isinstance(spec, Address):
        return spec
    if not isinstance(spec, str) or not spec:
        raise ValueError("address must be 'HOST:PORT' or 'unix:PATH'")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("unix socket address has an empty path")
        return Address("unix", path=path)
    if "/" in spec:
        # a bare filesystem path is unambiguous — treat it as a socket
        return Address("unix", path=spec)
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        raise ValueError(
            f"address {spec!r} is not 'HOST:PORT' or 'unix:PATH'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {spec!r} has a non-integer port") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} is out of range 0..65535")
    return Address("tcp", host=host or "127.0.0.1", port=port)


def _query_request(item: object, default_preset: str | None) -> dict:
    """One protocol request document from a client-side query spec."""
    if isinstance(item, dict):
        doc = dict(item)
    elif isinstance(item, Sequence) and len(item) == 3:
        doc = {"preset": item[0], "d": item[1], "m": item[2]}
    elif isinstance(item, Sequence) and len(item) == 2:
        doc = {"d": item[0], "m": item[1]}
    else:
        raise ValueError(
            f"query must be a dict, (d, m), or (preset, d, m); got {item!r}"
        )
    if default_preset is not None:
        doc.setdefault("preset", default_preset)
    return doc


class ServiceClient:
    """Blocking JSON-lines client for one server connection.

    Usable as a context manager; the connection closes on exit.
    """

    def __init__(self, address: str | Address, *, timeout: float | None = 30.0) -> None:
        addr = parse_address(address)
        if addr.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(addr.path)
        else:
            sock = socket.create_connection((addr.host, addr.port), timeout=timeout)
            sock.settimeout(timeout)
        self.address = addr
        self._sock = sock
        self._file = sock.makefile("rwb")

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _write_lines(self, docs: Iterable[dict]) -> None:
        payload = b"".join(json.dumps(doc).encode() + b"\n" for doc in docs)
        self._file.write(payload)
        self._file.flush()

    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, obj: dict) -> dict:
        """One request, one response — no interpretation of either."""
        self._write_lines([obj])
        return self._read_response()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, d: int, m: float, *, preset: str | None = None) -> dict:
        """One lookup; raises :class:`ServiceError` on an error answer."""
        doc: dict[str, Any] = {"d": d, "m": m}
        if preset is not None:
            doc["preset"] = preset
        response = self.request(doc)
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def query_many(
        self, queries: Iterable, *, preset: str | None = None
    ) -> list[dict]:
        """Pipelined lookups: write every request, then read every
        response (in request order — the protocol guarantees it).
        Returns the raw response documents; callers inspect ``ok``.
        """
        docs = [_query_request(q, preset) for q in queries]
        if not docs:
            return []
        self._write_lines(docs)
        return [self._read_response() for _ in docs]

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The server's live counters (registry stats; socket servers
        add a ``server`` section with transport/batcher counters)."""
        response = self.request({"op": "stats"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def presets(self) -> list[str]:
        response = self.request({"op": "presets"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return list(response["presets"])

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (socket transport only)."""
        response = self.request({"op": "shutdown"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServiceClient:
    """The same client surface on asyncio streams.

    >>> # client = await AsyncServiceClient.connect("127.0.0.1:7831")
    >>> # await client.query(7, 40)  ->  {"ok": True, "partition": [4, 3], ...}
    """

    def __init__(
        self,
        address: Address,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.address = address
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls, address: str | Address, *, timeout: float | None = 30.0
    ) -> "AsyncServiceClient":
        addr = parse_address(address)
        if addr.kind == "unix":
            open_coro = asyncio.open_unix_connection(addr.path)
        else:
            open_coro = asyncio.open_connection(addr.host, addr.port)
        reader, writer = await asyncio.wait_for(open_coro, timeout)
        return cls(addr, reader, writer)

    async def _write_lines(self, docs: Iterable[dict]) -> None:
        payload = b"".join(json.dumps(doc).encode() + b"\n" for doc in docs)
        self._writer.write(payload)
        await self._writer.drain()

    async def _read_response(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def request(self, obj: dict) -> dict:
        await self._write_lines([obj])
        return await self._read_response()

    async def query(self, d: int, m: float, *, preset: str | None = None) -> dict:
        doc: dict[str, Any] = {"d": d, "m": m}
        if preset is not None:
            doc["preset"] = preset
        response = await self.request(doc)
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def query_many(
        self, queries: Iterable, *, preset: str | None = None
    ) -> list[dict]:
        """Pipelined lookups: one write carries every request, then the
        responses stream back in order."""
        docs = [_query_request(q, preset) for q in queries]
        if not docs:
            return []
        await self._write_lines(docs)
        return [await self._read_response() for _ in docs]

    async def stats(self) -> dict:
        response = await self.request({"op": "stats"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def presets(self) -> list[str]:
        response = await self.request({"op": "presets"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return list(response["presets"])

    async def shutdown(self) -> dict:
        response = await self.request({"op": "shutdown"})
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
