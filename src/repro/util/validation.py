"""Argument validation shared across the public API.

The library's public entry points validate their arguments eagerly and
raise uniform, descriptive exceptions; these helpers keep the messages
consistent and the call sites one line long.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "check_block_size",
    "check_dimension",
    "check_node",
    "check_partition",
]

#: Largest cube dimension the library accepts.  The cap exists to catch
#: accidentally-swapped arguments (``d`` vs ``n``) early; 24 admits the
#: paper's §6 million-node (d = 20) analytic projection while still
#: rejecting any realistic node count passed as a dimension.  The
#: data-movement engines are practical only to d ≈ 10 regardless.
MAX_DIMENSION = 24


def check_dimension(d: int, *, minimum: int = 0) -> int:
    """Validate a hypercube dimension and return it.

    Parameters
    ----------
    d:
        Dimension of the cube (the paper's ``d``; ``n = 2**d`` nodes).
    minimum:
        Smallest acceptable value (some callers allow the degenerate
        0-cube, others need at least one dimension).
    """
    if not isinstance(d, int) or isinstance(d, bool):
        raise TypeError(f"cube dimension must be an int, got {type(d).__name__}")
    if d < minimum:
        raise ValueError(f"cube dimension must be >= {minimum}, got {d}")
    if d > MAX_DIMENSION:
        raise ValueError(
            f"cube dimension {d} exceeds the supported maximum {MAX_DIMENSION} "
            f"({2 ** MAX_DIMENSION} nodes); did you pass the node count instead?"
        )
    return d


def check_node(node: int, d: int) -> int:
    """Validate a node label for a cube of dimension ``d``."""
    if not isinstance(node, int) or isinstance(node, bool):
        raise TypeError(f"node label must be an int, got {type(node).__name__}")
    if not 0 <= node < (1 << d):
        raise ValueError(f"node label {node} out of range for a {d}-cube (0..{(1 << d) - 1})")
    return node


def check_block_size(m: int | float, *, allow_zero: bool = True) -> float:
    """Validate a block size in bytes and return it as a float.

    The cost model is continuous in ``m`` (the paper sweeps 0–400
    bytes), so fractional sizes are accepted for analysis; the
    data-movement engine separately requires integral sizes.
    """
    if isinstance(m, bool) or not isinstance(m, (int, float)):
        raise TypeError(f"block size must be a number, got {type(m).__name__}")
    if m < 0 or (m == 0 and not allow_zero):
        bound = ">= 0" if allow_zero else "> 0"
        raise ValueError(f"block size must be {bound}, got {m}")
    return float(m)


def check_partition(partition: Sequence[int], d: int) -> tuple[int, ...]:
    """Validate a multiphase partition ``D = (d1, ..., dk)`` of ``d``.

    The parts must be positive integers summing to ``d``.  Order is
    preserved (the paper notes the sequence of dimensions is
    unimportant for cost, but the data-movement engine honours the
    given order, so we keep it).
    """
    check_dimension(d, minimum=1)
    parts = tuple(partition)
    if not parts:
        raise ValueError("partition must contain at least one part")
    for part in parts:
        if not isinstance(part, int) or isinstance(part, bool):
            raise TypeError(f"partition parts must be ints, got {type(part).__name__}")
        if part <= 0:
            raise ValueError(f"partition parts must be positive, got {part}")
    if sum(parts) != d:
        raise ValueError(f"partition {parts} sums to {sum(parts)}, expected cube dimension {d}")
    return parts
