"""Shared low-level utilities.

This subpackage holds helpers with no dependency on the rest of
:mod:`repro`: bit manipulation (:mod:`repro.util.bitops`) and argument
validation (:mod:`repro.util.validation`).
"""

from repro.util.bitops import (
    bit,
    bit_complement,
    bit_field,
    bit_reverse,
    bits_of,
    clear_bit,
    flip_bit,
    from_bits,
    gray_code,
    inverse_gray_code,
    is_power_of_two,
    log2_exact,
    lowest_set_bit,
    popcount,
    rotate_bits_left,
    rotate_bits_right,
    set_bit,
)
from repro.util.validation import (
    check_block_size,
    check_dimension,
    check_node,
    check_partition,
)

__all__ = [
    "bit",
    "bit_complement",
    "bit_field",
    "bit_reverse",
    "bits_of",
    "clear_bit",
    "flip_bit",
    "from_bits",
    "gray_code",
    "inverse_gray_code",
    "is_power_of_two",
    "log2_exact",
    "lowest_set_bit",
    "popcount",
    "rotate_bits_left",
    "rotate_bits_right",
    "set_bit",
    "check_block_size",
    "check_dimension",
    "check_node",
    "check_partition",
]
