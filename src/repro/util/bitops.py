"""Bit-manipulation primitives for hypercube arithmetic.

Hypercube node labels are ``d``-bit integers; every structural question
about the network (neighbourhood, distance, e-cube routing, subcube
membership, exchange schedules) reduces to bit manipulation on labels.
This module collects those primitives in one place so that the rest of
the library reads at the level of the paper's notation.

All functions operate on plain Python ints (arbitrary precision), which
comfortably covers any realistic hypercube dimension.
"""

from __future__ import annotations

__all__ = [
    "bit",
    "bit_complement",
    "bit_field",
    "bit_reverse",
    "bits_of",
    "clear_bit",
    "flip_bit",
    "from_bits",
    "gray_code",
    "inverse_gray_code",
    "is_power_of_two",
    "log2_exact",
    "lowest_set_bit",
    "popcount",
    "rotate_bits_left",
    "rotate_bits_right",
    "set_bit",
]


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (the Hamming weight).

    On a hypercube the distance between nodes ``a`` and ``b`` is
    ``popcount(a ^ b)``.

    >>> popcount(0b1011)
    3
    """
    if x < 0:
        raise ValueError(f"popcount requires a non-negative int, got {x}")
    return x.bit_count()


def bit(x: int, j: int) -> int:
    """Bit ``j`` of ``x`` (0 or 1), with bit 0 the least significant.

    >>> bit(0b100, 2)
    1
    """
    return (x >> j) & 1


def set_bit(x: int, j: int) -> int:
    """Return ``x`` with bit ``j`` set."""
    return x | (1 << j)


def clear_bit(x: int, j: int) -> int:
    """Return ``x`` with bit ``j`` cleared."""
    return x & ~(1 << j)


def flip_bit(x: int, j: int) -> int:
    """Return ``x`` with bit ``j`` flipped.

    ``flip_bit(node, j)`` is the hypercube neighbour of ``node`` across
    dimension ``j``.
    """
    return x ^ (1 << j)


def bit_field(x: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``x`` starting at bit ``lo``.

    This is the subcube-coordinate operation of the multiphase
    algorithm: a phase on bits ``[lo, lo+width)`` identifies each node's
    position within its subcube by ``bit_field(label, lo, width)``.

    >>> bit_field(0b101101, 2, 3)
    3
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (x >> lo) & ((1 << width) - 1)


def bit_complement(x: int, width: int) -> int:
    """Bitwise complement of ``x`` restricted to ``width`` bits."""
    return x ^ ((1 << width) - 1)


def bits_of(x: int, width: int) -> tuple[int, ...]:
    """Tuple of the low ``width`` bits of ``x``, most significant first.

    >>> bits_of(0b0110, 4)
    (0, 1, 1, 0)
    """
    return tuple((x >> j) & 1 for j in range(width - 1, -1, -1))


def from_bits(bits: tuple[int, ...] | list[int]) -> int:
    """Inverse of :func:`bits_of`: assemble an int from MSB-first bits.

    >>> from_bits((0, 1, 1, 0))
    6
    """
    value = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {b}")
        value = (value << 1) | b
    return value


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Base-2 logarithm of an exact power of two.

    Raises :class:`ValueError` for anything else, which makes it a safe
    way to recover the cube dimension ``d`` from the node count
    ``n = 2**d``.
    """
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def lowest_set_bit(x: int) -> int:
    """Index of the least significant set bit of ``x``.

    The e-cube router corrects address bits from the least significant
    end; the next link taken from an intermediate node ``u`` toward
    destination ``t`` crosses dimension ``lowest_set_bit(u ^ t)``.
    """
    if x <= 0:
        raise ValueError(f"lowest_set_bit requires a positive int, got {x}")
    return (x & -x).bit_length() - 1


def rotate_bits_left(x: int, k: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``x`` left by ``k`` positions.

    Index-bit rotations are exactly the paper's block *shuffles*
    (Figure 3): a single left rotation of a block's index bits is one
    elementary shuffle of the `2**width`-entry block array.

    >>> bin(rotate_bits_left(0b0011, 1, 4))
    '0b110'
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    k %= width
    mask = (1 << width) - 1
    x &= mask
    return ((x << k) | (x >> (width - k))) & mask


def rotate_bits_right(x: int, k: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``x`` right by ``k`` positions."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return rotate_bits_left(x, width - (k % width), width)


def bit_reverse(x: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``x``.

    >>> bin(bit_reverse(0b0011, 4))
    '0b1100'
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    out = 0
    for _ in range(width):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


def gray_code(x: int) -> int:
    """Binary-reflected Gray code of ``x``.

    Included because hypercube embeddings of rings/meshes (used by the
    application kernels) follow Gray-code orderings.
    """
    if x < 0:
        raise ValueError(f"gray_code requires a non-negative int, got {x}")
    return x ^ (x >> 1)


def inverse_gray_code(g: int) -> int:
    """Inverse of :func:`gray_code`."""
    if g < 0:
        raise ValueError(f"inverse_gray_code requires a non-negative int, got {g}")
    x = 0
    while g:
        x ^= g
        g >>= 1
    return x
