"""Consistent hash ring mapping (preset, d) shard keys to nodes.

The coordinator places every shard key on ``replication`` distinct
nodes; clients route each query to the key's replica list and fail
over down it.  Consistent hashing keeps placement stable under
membership churn: when a node joins or leaves a ring of *k* nodes,
only ~``1/(k+1)`` (resp. ``1/k``) of the key space moves — every other
key keeps its replicas, so a routing-table refresh invalidates almost
none of a client's open connections.

Each node projects :data:`DEFAULT_VNODES` virtual points onto a 64-bit
circle (BLAKE2b, keyed by ``"{node}#{i}"``) so load spreads evenly
even with a handful of physical nodes; a key hashes once and its
replicas are the first ``n`` *distinct* owners clockwise from that
point.

>>> ring = HashRing(["a", "b", "c"])
>>> replicas = ring.replicas(shard_key("bokhari", 7), 2)
>>> len(replicas) == len(set(replicas)) == 2
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["DEFAULT_VNODES", "HashRing", "moved_fraction", "shard_key"]

#: virtual points per node on the hash circle
DEFAULT_VNODES = 64


def _hash64(text: str) -> int:
    """A stable 64-bit position on the ring for any label."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def shard_key(preset: str, d: int) -> str:
    """The routing key for one (preset, d) optimizer shard."""
    return f"{preset}/{d}"


class HashRing:
    """An immutable consistent-hash ring over a set of node ids.

    Build a fresh ring from the routing table's node list whenever the
    epoch changes — construction is cheap (``nodes * vnodes`` hashes)
    and an immutable ring makes the routing table safely shareable.
    """

    def __init__(self, nodes: Iterable[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes: tuple[str, ...] = tuple(sorted(set(nodes)))
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            points.extend(
                (_hash64(f"{node}#{i}"), node) for i in range(vnodes)
            )
        points.sort()
        self._points: list[int] = [p for p, _ in points]
        self._owners: list[str] = [n for _, n in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def __bool__(self) -> bool:
        return bool(self.nodes)

    def replicas(self, key: str, n: int) -> tuple[str, ...]:
        """The first ``n`` distinct nodes clockwise from ``key``'s
        position — the key's replica set, primary first.  Returns every
        node (in ring order) when fewer than ``n`` exist."""
        if n < 1:
            raise ValueError(f"replica count must be >= 1, got {n}")
        if not self.nodes:
            return ()
        want = min(n, len(self.nodes))
        start = bisect.bisect_right(self._points, _hash64(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return tuple(chosen)

    def primary(self, key: str) -> str:
        """The first replica for ``key`` (ring must be non-empty)."""
        replicas = self.replicas(key, 1)
        if not replicas:
            raise ValueError("hash ring has no nodes")
        return replicas[0]


def moved_fraction(
    before: HashRing, after: HashRing, keys: Sequence[str]
) -> float:
    """The fraction of ``keys`` whose primary changed between rings —
    the property tests bound this against the consistent-hashing
    expectation (``1/k`` for one leave, ``1/(k+1)`` for one join)."""
    if not keys:
        return 0.0
    moved = sum(1 for key in keys if before.primary(key) != after.primary(key))
    return moved / len(keys)
