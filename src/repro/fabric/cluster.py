"""Cluster-aware clients: route, fan out, fail over, retry.

:class:`ClusterClient` (blocking) and :class:`AsyncClusterClient`
(asyncio) present the exact same surface as a single-server client —
``query`` / ``query_many`` / ``stats`` / ``presets`` / ``close``, the
:class:`~repro.service.api.OptimizerClient` protocol — but behind it
they hold one data-plane connection per node and route every query by
its (preset, d) shard key through the coordinator's cached
:class:`~repro.fabric.routing.RoutingTable`:

- ``query_many`` groups the queries by target node and pipelines each
  group over that node's connection (the existing single-server
  pipelining, unchanged), reassembling answers into request order;
- a node that drops, refuses, or answers ``RETRY_LATER`` (shedding)
  fails only its group: those queries retry on the *next replica* in
  their key's failover order, after a capped exponential backoff and a
  forced routing-table refresh — node loss is a normal, retried event;
- group submission is all-or-nothing: answers are committed by query
  index only when a group's full response pipeline arrived, so a
  connection cut mid-pipeline re-runs the whole group on a replica —
  callers see exactly one answer per query, never duplicates or holes;
- the routing table refreshes epoch-conditionally (``OP_ROUTES`` with
  the cached epoch; the coordinator answers ``{"unchanged": true}``
  when nothing moved).

Routing tables come from a pluggable source: :class:`CoordinatorRoutes`
asks a live coordinator, :class:`StaticRoutes` pins a table (tests
script membership changes without a coordinator).  The module-level
:func:`fetch_status` / :func:`request_drain` helpers back
``repro cluster status`` / ``repro cluster drain``.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.fabric.routing import RoutingTable
from repro.service import wire as wire_proto
from repro.service.client import (
    Address,
    AsyncServerClient,
    ServerClient,
    ServiceError,
    parse_address,
    _query_request,
)

__all__ = [
    "AsyncClusterClient",
    "ClusterClient",
    "CoordinatorRoutes",
    "RetryPolicy",
    "RouteError",
    "StaticRoutes",
    "fetch_routes",
    "fetch_status",
    "request_drain",
]


class RouteError(RuntimeError):
    """The cluster could not answer: no routable node, a coordinator
    error, or every replica of some key failed past the retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff across replica failover attempts.

    Deterministic by design (no jitter): the project's unseeded-rand
    rule bans ambient randomness, and a single client retrying against
    a handful of replicas gains nothing from desynchronization.
    """

    attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"need 0 <= base_delay_s <= max_delay_s, got "
                f"{self.base_delay_s}/{self.max_delay_s}"
            )

    def delay_s(self, failure: int) -> float:
        """Seconds to back off after the ``failure``-th failed attempt."""
        return min(self.max_delay_s, self.base_delay_s * (2.0 ** failure))


# ----------------------------------------------------------------------
# control-plane round trips (sync + async)
# ----------------------------------------------------------------------
def _check_control_answer(opcode: int, payload: bytes, expect: int) -> dict:
    if opcode == wire_proto.OP_ERROR:
        raise RouteError(payload.decode("utf-8", "replace"))
    if opcode != expect:
        raise RouteError(f"coordinator answered opcode {opcode}, expected {expect}")
    return wire_proto.parse_fabric_payload(payload)


def _control_request(
    address: str | Address, opcode: int, doc: dict, expect: int,
    *, timeout: float | None,
) -> dict:
    """One blocking control-plane round trip against the coordinator."""
    addr = parse_address(address)
    if addr.kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(addr.path)
    else:
        sock = socket.create_connection((addr.host, addr.port), timeout=timeout)
        sock.settimeout(timeout)
    try:
        file = sock.makefile("rwb")
        file.write(wire_proto.pack_frame(opcode, wire_proto.fabric_payload(doc)))
        file.flush()
        _, answer_op, payload = wire_proto.read_frame_blocking(file.read)
    finally:
        sock.close()
    return _check_control_answer(answer_op, payload, expect)


async def _control_request_async(
    address: str | Address, opcode: int, doc: dict, expect: int,
    *, timeout: float | None,
) -> dict:
    addr = parse_address(address)
    if addr.kind == "unix":
        open_coro = asyncio.open_unix_connection(addr.path)
    else:
        open_coro = asyncio.open_connection(addr.host, addr.port)
    reader, writer = await asyncio.wait_for(open_coro, timeout)
    try:
        writer.write(wire_proto.pack_frame(opcode, wire_proto.fabric_payload(doc)))
        await writer.drain()
        _, answer_op, payload = await asyncio.wait_for(
            wire_proto.read_frame(reader), timeout
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return _check_control_answer(answer_op, payload, expect)


def fetch_routes(
    coordinator: str | Address, *, known_epoch: int | None = None,
    timeout: float | None = 10.0,
) -> RoutingTable | None:
    """The coordinator's routing table, or ``None`` when ``known_epoch``
    is still current."""
    doc = _control_request(
        coordinator, wire_proto.OP_ROUTES,
        {"epoch": -1 if known_epoch is None else known_epoch},
        wire_proto.OP_ROUTES_OK, timeout=timeout,
    )
    if doc.get("unchanged"):
        return None
    return RoutingTable.from_dict(doc)


def fetch_status(
    coordinator: str | Address, *, timeout: float | None = 10.0
) -> dict:
    """The full membership document (``repro cluster status``)."""
    return _control_request(
        coordinator, wire_proto.OP_STATUS, {}, wire_proto.OP_STATUS_OK,
        timeout=timeout,
    )


def request_drain(
    coordinator: str | Address, node_id: str, *, timeout: float | None = 10.0
) -> dict:
    """Ask the coordinator to drain one node (``repro cluster drain``)."""
    return _control_request(
        coordinator, wire_proto.OP_DRAIN, {"node": node_id},
        wire_proto.OP_DRAIN_OK, timeout=timeout,
    )


# ----------------------------------------------------------------------
# routing-table sources
# ----------------------------------------------------------------------
class CoordinatorRoutes:
    """Routing tables straight from a live coordinator."""

    def __init__(self, coordinator: str | Address, *, timeout: float | None = 10.0) -> None:
        self.coordinator = parse_address(coordinator)
        self.timeout = timeout

    def table(self, known_epoch: int | None = None) -> RoutingTable | None:
        return fetch_routes(
            self.coordinator, known_epoch=known_epoch, timeout=self.timeout
        )

    async def table_async(self, known_epoch: int | None = None) -> RoutingTable | None:
        doc = await _control_request_async(
            self.coordinator, wire_proto.OP_ROUTES,
            {"epoch": -1 if known_epoch is None else known_epoch},
            wire_proto.OP_ROUTES_OK, timeout=self.timeout,
        )
        if doc.get("unchanged"):
            return None
        return RoutingTable.from_dict(doc)

    def status(self) -> dict:
        return fetch_status(self.coordinator, timeout=self.timeout)


class StaticRoutes:
    """A pinned routing table (tests script failover without a
    coordinator by swapping tables between attempts)."""

    def __init__(self, table: RoutingTable) -> None:
        self._table = table

    def set(self, table: RoutingTable) -> None:
        self._table = table

    def table(self, known_epoch: int | None = None) -> RoutingTable | None:
        if known_epoch is not None and known_epoch == self._table.epoch:
            return None
        return self._table

    async def table_async(self, known_epoch: int | None = None) -> RoutingTable | None:
        return self.table(known_epoch)

    def status(self) -> dict:
        return {
            "epoch": self._table.epoch,
            "replication": self._table.replication,
            "nodes": [
                {"node": node, "address": address, "state": "alive"}
                for node, address in self._table.nodes
            ],
        }


# ----------------------------------------------------------------------
# shared routing logic (pure: both clients delegate here)
# ----------------------------------------------------------------------
def _route_groups(
    table: RoutingTable, docs: list[dict], pending: list[int], attempt: int
) -> tuple[dict[str, list[int]], list[int]]:
    """Group pending query indices by target address for this attempt.

    Attempt ``k`` routes each key to replica ``k % len(replicas)`` of
    its failover list, so consecutive retries walk the replica set.
    Returns ``(groups, unroutable)`` — keys with no replica at all
    (empty table, unknown preset) stay pending for a later refresh.
    """
    groups: dict[str, list[int]] = {}
    unroutable: list[int] = []
    for idx in pending:
        doc = docs[idx]
        preset = str(doc.get("preset") or table.default_preset or "")
        replicas = table.replicas_for(preset, int(doc.get("d", 0)))
        if not replicas:
            unroutable.append(idx)
            continue
        groups.setdefault(replicas[attempt % len(replicas)], []).append(idx)
    return groups, unroutable


def _commit_group(
    results: list[dict | None], idxs: list[int], answers: list[dict]
) -> list[int]:
    """Commit one group's answers by index; shed answers stay pending.
    The caller only reaches this when the *whole* pipeline arrived, so
    commitment is all-or-nothing per group."""
    still_pending: list[int] = []
    for idx, answer in zip(idxs, answers):
        if answer.get("retry"):
            still_pending.append(idx)
        else:
            results[idx] = answer
    return still_pending


_NODE_FAILURES = (ConnectionError, OSError, wire_proto.WireError, ServiceError)


class ClusterClient:
    """Blocking cluster client (see module docstring for semantics)."""

    def __init__(
        self,
        routes: CoordinatorRoutes | StaticRoutes,
        *,
        wire: str = "json",
        auth_token: str | None = None,
        timeout: float | None = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._routes = routes
        self._wire = wire
        self._auth_token = auth_token
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._table: RoutingTable | None = None
        self._conns: dict[str, ServerClient] = {}

    # -- routing ------------------------------------------------------
    @property
    def table(self) -> RoutingTable:
        if self._table is None:
            self.refresh()
        assert self._table is not None
        return self._table

    def refresh(self, *, force: bool = False) -> RoutingTable:
        known = None if force or self._table is None else self._table.epoch
        fresh = self._routes.table(known)
        if fresh is not None:
            self._table = fresh
        assert self._table is not None
        return self._table

    def _conn(self, address: str) -> ServerClient:
        client = self._conns.get(address)
        if client is None:
            client = ServerClient(
                address, wire=self._wire, auth_token=self._auth_token,
                timeout=self._timeout,
            )
            self._conns[address] = client
        return client

    def _drop_conn(self, address: str) -> None:
        client = self._conns.pop(address, None)
        if client is not None:
            client.close()

    # -- queries ------------------------------------------------------
    def query(self, d: int, m: float, *, preset: str | None = None) -> dict:
        doc: dict[str, Any] = {"d": d, "m": m}
        if preset is not None:
            doc["preset"] = preset
        response = self.query_many([doc])[0]
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    def query_many(
        self,
        queries: Iterable,
        *,
        preset: str | None = None,
        frame_queries: int | None = None,
    ) -> list[dict]:
        table = self.table
        docs = [
            _query_request(q, preset if preset is not None else table.default_preset)
            for q in queries
        ]
        if not docs:
            return []
        results: list[dict | None] = [None] * len(docs)
        pending = list(range(len(docs)))
        failures = 0
        for attempt in range(self._retry.attempts):
            if not pending:
                break
            if failures:
                time.sleep(self._retry.delay_s(failures - 1))
                table = self.refresh(force=True)
            groups, pending = _route_groups(table, docs, pending, attempt)
            for address, idxs in groups.items():
                kwargs: dict[str, Any] = {}
                if self._wire == "binary" and frame_queries is not None:
                    kwargs["frame_queries"] = frame_queries
                try:
                    answers = self._conn(address).query_many(
                        [docs[i] for i in idxs], **kwargs
                    )
                except _NODE_FAILURES:
                    self._drop_conn(address)
                    pending.extend(idxs)
                    continue
                pending.extend(_commit_group(results, idxs, answers))
            if pending:
                failures += 1
        if pending:
            raise RouteError(
                f"{len(pending)} of {len(docs)} queries unanswered after "
                f"{self._retry.attempts} attempts across replicas"
            )
        return [doc for doc in results if doc is not None]

    # -- ops ----------------------------------------------------------
    def stats(self) -> dict:
        """The cluster's membership/status document, wrapped like a
        server stats answer."""
        return {"ok": True, "cluster": self._routes.status()}

    def presets(self) -> list[str]:
        return list(self.table.presets)

    def close(self) -> None:
        for address in list(self._conns):
            self._drop_conn(address)

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncClusterClient:
    """The same routing client on asyncio connections."""

    def __init__(
        self,
        routes: CoordinatorRoutes | StaticRoutes,
        *,
        wire: str = "json",
        auth_token: str | None = None,
        timeout: float | None = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._routes = routes
        self._wire = wire
        self._auth_token = auth_token
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._table: RoutingTable | None = None
        self._conns: dict[str, AsyncServerClient] = {}

    # -- routing ------------------------------------------------------
    async def refresh(self, *, force: bool = False) -> RoutingTable:
        known = None if force or self._table is None else self._table.epoch
        fresh = await self._routes.table_async(known)
        if fresh is not None:
            self._table = fresh
        assert self._table is not None
        return self._table

    async def _conn(self, address: str) -> AsyncServerClient:
        client = self._conns.get(address)
        if client is None:
            client = await AsyncServerClient.connect(
                address, wire=self._wire, auth_token=self._auth_token,
                timeout=self._timeout,
            )
            self._conns[address] = client
        return client

    async def _drop_conn(self, address: str) -> None:
        client = self._conns.pop(address, None)
        if client is not None:
            await client.aclose()

    # -- queries ------------------------------------------------------
    async def query(self, d: int, m: float, *, preset: str | None = None) -> dict:
        doc: dict[str, Any] = {"d": d, "m": m}
        if preset is not None:
            doc["preset"] = preset
        response = (await self.query_many([doc]))[0]
        if not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def query_many(
        self,
        queries: Iterable,
        *,
        preset: str | None = None,
        frame_queries: int | None = None,
    ) -> list[dict]:
        table = self._table if self._table is not None else await self.refresh()
        docs = [
            _query_request(q, preset if preset is not None else table.default_preset)
            for q in queries
        ]
        if not docs:
            return []
        results: list[dict | None] = [None] * len(docs)
        pending = list(range(len(docs)))
        failures = 0
        for attempt in range(self._retry.attempts):
            if not pending:
                break
            if failures:
                await asyncio.sleep(self._retry.delay_s(failures - 1))
                table = await self.refresh(force=True)
            groups, pending = _route_groups(table, docs, pending, attempt)
            for address, idxs in groups.items():
                kwargs: dict[str, Any] = {}
                if self._wire == "binary" and frame_queries is not None:
                    kwargs["frame_queries"] = frame_queries
                try:
                    client = await self._conn(address)
                    answers = await client.query_many(
                        [docs[i] for i in idxs], **kwargs
                    )
                except _NODE_FAILURES:
                    await self._drop_conn(address)
                    pending.extend(idxs)
                    continue
                pending.extend(_commit_group(results, idxs, answers))
            if pending:
                failures += 1
        if pending:
            raise RouteError(
                f"{len(pending)} of {len(docs)} queries unanswered after "
                f"{self._retry.attempts} attempts across replicas"
            )
        return [doc for doc in results if doc is not None]

    # -- ops ----------------------------------------------------------
    async def stats(self) -> dict:
        if isinstance(self._routes, CoordinatorRoutes):
            status = await _control_request_async(
                self._routes.coordinator, wire_proto.OP_STATUS, {},
                wire_proto.OP_STATUS_OK, timeout=self._routes.timeout,
            )
        else:
            status = self._routes.status()
        return {"ok": True, "cluster": status}

    async def presets(self) -> list[str]:
        table = self._table if self._table is not None else await self.refresh()
        return list(table.presets)

    async def aclose(self) -> None:
        for address in list(self._conns):
            await self._drop_conn(address)

    async def __aenter__(self) -> "AsyncClusterClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
