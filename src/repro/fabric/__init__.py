"""Shard fabric: a coordinator-backed optimizer cluster.

The registry became a server (PR 4), the server became SLO-grade
(PR 7); this package makes it a *cluster*.  A NameNode/DataNode-style
split spreads (preset, d) optimizer shards across many
:class:`~repro.service.async_server.AsyncOptimizerServer` nodes:

:mod:`repro.fabric.ring`
    consistent hashing with virtual nodes — stable shard placement
    under membership churn;
:mod:`repro.fabric.membership` / :mod:`repro.fabric.routing`
    the coordinator's pure state: node registry, heartbeat liveness
    (miss-K ⇒ dead), and the epoch-versioned routing table it
    publishes;
:mod:`repro.fabric.coordinator`
    the asyncio control-plane server (JOIN / HEARTBEAT / ROUTES /
    STATUS / DRAIN over the :mod:`repro.service.wire` framing);
:mod:`repro.fabric.node`
    one cluster member: a serving registry plus its join/heartbeat
    loop (``repro cluster join``);
:mod:`repro.fabric.cluster`
    the routing clients behind :func:`repro.service.connect` for
    ``cluster:`` targets — shard fan-out, replica failover with capped
    exponential backoff, epoch-conditional route refresh.

Nodes dying, shedding, or draining are normal, retried events: the
chaos test SIGKILLs a replica mid-load and every query still answers
exactly once.
"""

from repro.fabric.cluster import (
    AsyncClusterClient,
    ClusterClient,
    CoordinatorRoutes,
    RetryPolicy,
    RouteError,
    StaticRoutes,
    fetch_routes,
    fetch_status,
    request_drain,
)
from repro.fabric.coordinator import Coordinator, run_coordinator
from repro.fabric.membership import Membership, NodeInfo
from repro.fabric.node import FabricNode, run_node
from repro.fabric.ring import HashRing, moved_fraction, shard_key
from repro.fabric.routing import RoutingTable

__all__ = [
    "AsyncClusterClient",
    "ClusterClient",
    "Coordinator",
    "CoordinatorRoutes",
    "FabricNode",
    "HashRing",
    "Membership",
    "NodeInfo",
    "RetryPolicy",
    "RouteError",
    "RoutingTable",
    "StaticRoutes",
    "fetch_routes",
    "fetch_status",
    "moved_fraction",
    "request_drain",
    "run_coordinator",
    "run_node",
    "shard_key",
]
