"""One fabric node: a serving registry plus its coordinator liaison.

:class:`FabricNode` wraps an ordinary
:class:`~repro.service.async_server.AsyncOptimizerServer` (the data
plane is untouched — clients query the node exactly like a standalone
server) and adds the control loop that makes it a cluster member: it
JOINs the coordinator over one long-lived connection, heartbeats at
the cadence the JOIN_OK dictated (carrying a compact stats snapshot —
shed count, p99, live connections), re-joins with capped exponential
backoff when the coordinator is unreachable, and drains itself when a
heartbeat answer carries ``{"drain": true}`` (``repro cluster drain``).

Node identity defaults to the advertised serving address, which is
also what the routing table hands to clients; pass ``node_id`` to name
nodes independently of where they listen.

:func:`run_node` is the blocking entry behind ``repro cluster join``
— it consumes the same :class:`~repro.service.config.ServerConfig` as
``repro serve``, verbatim.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
from typing import Callable

from repro.service import wire as wire_proto
from repro.service.async_server import AsyncOptimizerServer, ServerStats
from repro.service.client import Address, parse_address
from repro.service.config import ServerConfig
from repro.service.registry import DEFAULT_DIMS, OptimizerRegistry

__all__ = ["FabricNode", "run_node"]

_log = logging.getLogger("repro.fabric")


def _backoff_s(attempt: int, *, base: float, cap: float) -> float:
    """Deterministic capped exponential backoff (no jitter: retries
    here are one node against one coordinator, not a thundering herd)."""
    return min(cap, base * (2.0 ** attempt))


class FabricNode:
    """A cluster member: one optimizer server + its control loop."""

    def __init__(
        self,
        registry: OptimizerRegistry,
        coordinator: str | Address,
        *,
        config: ServerConfig | None = None,
        node_id: str | None = None,
        advertise: str | None = None,
        retry_base_s: float = 0.25,
        retry_max_s: float = 5.0,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else ServerConfig()
        self.server = AsyncOptimizerServer(registry, self.config)
        self._coordinator = parse_address(coordinator)
        self._node_id = node_id
        self._advertise = advertise
        self._retry_base_s = retry_base_s
        self._retry_max_s = retry_max_s
        self._control: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, listen: str | Address) -> "FabricNode":
        """Bind the data plane, then start joining the coordinator."""
        self._loop = asyncio.get_running_loop()
        await self.server.start(listen)
        if self._advertise is None:
            self._advertise = str(self.server.address)
        if self._node_id is None:
            self._node_id = self._advertise
        self._control = self._loop.create_task(self._control_loop())
        return self

    @property
    def node_id(self) -> str:
        if self._node_id is None:
            raise RuntimeError("node is not started")
        return self._node_id

    @property
    def address(self) -> Address:
        return self.server.address

    @property
    def stats(self) -> ServerStats:
        return self.server.stats

    async def aclose(self) -> None:
        self._closing = True
        if self._control is not None:
            self._control.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._control
        await self.server.aclose()

    async def wait_closed(self) -> None:
        await self.server.wait_closed()

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _join_doc(self) -> dict:
        presets = list(self.registry.preset_names)
        shards = sum(
            1
            for preset in presets
            for d in DEFAULT_DIMS
            if self.registry.has_shard(preset, d)
        )
        return {
            "node": self._node_id,
            "address": self._advertise,
            "presets": presets,
            "default_preset": self.config.default_preset,
            "shards": shards,
            "stats": self._stats_doc(),
        }

    def _stats_doc(self) -> dict:
        stats = self.server.stats
        return {
            "requests": stats.requests,
            "responses": stats.responses,
            "shed": stats.shed,
            "errors": stats.errors,
            "connections_active": stats.connections_active,
            "in_flight": stats.in_flight,
            "p50_us": stats.p50_us,
            "p99_us": stats.p99_us,
            "loaded_tables": self.registry.loaded_tables,
        }

    async def _open_control(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._coordinator.kind == "unix":
            return await asyncio.open_unix_connection(self._coordinator.path)
        return await asyncio.open_connection(
            self._coordinator.host, self._coordinator.port
        )

    async def _control_loop(self) -> None:
        """Join, heartbeat, re-join on loss, drain on request."""
        attempt = 0
        while not self._closing:
            writer: asyncio.StreamWriter | None = None
            try:
                reader, writer = await self._open_control()
                writer.write(wire_proto.pack_frame(
                    wire_proto.OP_JOIN, wire_proto.fabric_payload(self._join_doc())
                ))
                await writer.drain()
                _, opcode, payload = await wire_proto.read_frame(reader)
                if opcode != wire_proto.OP_JOIN_OK:
                    raise wire_proto.WireError(
                        f"JOIN answered with opcode {opcode}: "
                        f"{payload.decode('utf-8', 'replace')!r}"
                    )
                welcome = wire_proto.parse_fabric_payload(payload)
                heartbeat_s = float(welcome.get("heartbeat_s", 2.0))
                attempt = 0
                _log.info(
                    "node %s joined coordinator %s (epoch %s)",
                    self._node_id, self._coordinator, welcome.get("epoch"),
                )
                if await self._heartbeat_loop(reader, writer, heartbeat_s):
                    return  # drain requested; shutdown already scheduled
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    wire_proto.WireError) as exc:
                delay = _backoff_s(
                    attempt, base=self._retry_base_s, cap=self._retry_max_s
                )
                attempt += 1
                _log.warning(
                    "coordinator %s unreachable (%s) — retry %d in %.2fs",
                    self._coordinator, exc, attempt, delay,
                )
                await asyncio.sleep(delay)
            finally:
                if writer is not None:
                    writer.close()
                    with contextlib.suppress(ConnectionError, OSError):
                        await writer.wait_closed()

    async def _heartbeat_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        heartbeat_s: float,
    ) -> bool:
        """Heartbeat until the connection breaks (False — the caller
        re-joins) or the coordinator asks for a drain (True)."""
        while not self._closing:
            await asyncio.sleep(heartbeat_s)
            writer.write(wire_proto.pack_frame(
                wire_proto.OP_HEARTBEAT,
                wire_proto.fabric_payload(
                    {"node": self._node_id, "stats": self._stats_doc()}
                ),
            ))
            await writer.drain()
            _, opcode, payload = await wire_proto.read_frame(reader)
            if opcode != wire_proto.OP_HEARTBEAT_OK:
                # unknown-node answer after a coordinator restart: the
                # caller tears this connection down and re-joins
                raise wire_proto.WireError(
                    f"heartbeat answered with opcode {opcode}: "
                    f"{payload.decode('utf-8', 'replace')!r}"
                )
            answer = wire_proto.parse_fabric_payload(payload)
            if answer.get("drain"):
                _log.info("node %s draining on coordinator request", self._node_id)
                assert self._loop is not None
                self._closing = True
                self._loop.create_task(self.aclose())
                return True
        return False


def run_node(
    registry: OptimizerRegistry,
    coordinator: str | Address,
    listen: str | Address,
    *,
    config: ServerConfig | None = None,
    node_id: str | None = None,
    advertise: str | None = None,
    install_signal_handlers: bool = True,
    ready: Callable[[FabricNode], None] | None = None,
) -> ServerStats:
    """Serve as a cluster member until drained or signalled; returns
    the data-plane stats.  The blocking entry behind
    ``repro cluster join``."""

    async def _main() -> ServerStats:
        node = FabricNode(
            registry,
            coordinator,
            config=config,
            node_id=node_id,
            advertise=advertise,
        )
        await node.start(listen)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(node.aclose())
                    )
        if ready is not None:
            ready(node)
        await node.wait_closed()
        return node.stats

    return asyncio.run(_main())
