"""Cluster membership: node registry, liveness, and epochs.

The coordinator's bookkeeping core, deliberately free of any I/O so it
tests with a fake clock.  :class:`Membership` tracks every node that
ever joined, advances a monotonically increasing **epoch** whenever
the routable set changes (join, death, drain, clean leave), and
derives the published :class:`~repro.fabric.routing.RoutingTable` from
the nodes that are currently ``alive``.

Liveness is heartbeat-driven: a node that has not been heard from for
``heartbeat_s * miss_limit`` seconds is declared ``dead`` by
:meth:`Membership.sweep` (miss-K ⇒ dead), and a registration
connection dropping declares its node dead immediately — unless the
node was ``draining``, in which case the disconnect is the expected
clean exit and the node is marked ``left``.

Time is injected as a ``now`` callable (the coordinator passes the
event loop's clock) so the module never reads a wall clock itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.fabric.routing import RoutingTable

__all__ = ["Membership", "NodeInfo", "STATES"]

#: the node lifecycle: alive -> draining -> left, or alive -> dead
STATES = ("alive", "draining", "dead", "left")


@dataclass
class NodeInfo:
    """Everything the coordinator knows about one registered node."""

    node_id: str
    address: str
    presets: tuple[str, ...] = ()
    default_preset: str | None = None
    shards: int = 0
    state: str = "alive"
    last_seen: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def routable(self) -> bool:
        return self.state == "alive"

    def as_dict(self, now: float) -> dict:
        return {
            "node": self.node_id,
            "address": self.address,
            "state": self.state,
            "age_s": max(0.0, now - self.last_seen),
            "presets": list(self.presets),
            "default_preset": self.default_preset,
            "shards": self.shards,
            "stats": dict(self.stats),
        }


class Membership:
    """The epoch-versioned node registry behind one coordinator."""

    def __init__(
        self,
        *,
        replication: int = 2,
        heartbeat_s: float = 2.0,
        miss_limit: int = 3,
        now: Callable[[], float],
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if miss_limit < 1:
            raise ValueError(f"miss_limit must be >= 1, got {miss_limit}")
        self.replication = replication
        self.heartbeat_s = heartbeat_s
        self.miss_limit = miss_limit
        self._now = now
        self._nodes: dict[str, NodeInfo] = {}
        self._epoch = 0
        self._table: RoutingTable | None = None

    # ------------------------------------------------------------------
    # epoch + routing table
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    def _bump(self) -> None:
        self._epoch += 1
        self._table = None

    def routing_table(self) -> RoutingTable:
        """The current epoch's table (cached until the epoch moves)."""
        if self._table is None or self._table.epoch != self._epoch:
            routable = [n for n in self._nodes.values() if n.routable]
            presets = sorted({p for n in routable for p in n.presets})
            default = next(
                (n.default_preset for n in routable if n.default_preset), None
            )
            self._table = RoutingTable(
                epoch=self._epoch,
                replication=self.replication,
                nodes=tuple(sorted((n.node_id, n.address) for n in routable)),
                presets=tuple(presets),
                default_preset=default,
            )
        return self._table

    # ------------------------------------------------------------------
    # lifecycle events
    # ------------------------------------------------------------------
    def join(
        self,
        node_id: str,
        address: str,
        *,
        presets: Sequence[str] = (),
        default_preset: str | None = None,
        shards: int = 0,
        stats: dict | None = None,
    ) -> NodeInfo:
        """Register (or re-register) a node and make it routable."""
        if not node_id:
            raise ValueError("node id must be non-empty")
        if not address:
            raise ValueError("node address must be non-empty")
        info = NodeInfo(
            node_id=node_id,
            address=address,
            presets=tuple(presets),
            default_preset=default_preset,
            shards=shards,
            state="alive",
            last_seen=self._now(),
            stats=dict(stats or {}),
        )
        self._nodes[node_id] = info
        self._bump()
        return info

    def heartbeat(self, node_id: str, stats: dict | None = None) -> NodeInfo:
        """Record a heartbeat; raises :exc:`KeyError` for a node the
        coordinator does not know (it must re-join)."""
        info = self._nodes[node_id]
        info.last_seen = self._now()
        if stats is not None:
            info.stats = dict(stats)
        if info.state == "dead":
            # the node outlived a miss-K verdict — it is alive after all
            info.state = "alive"
            self._bump()
        return info

    def drain(self, node_id: str) -> NodeInfo:
        """Administratively drain a node: it leaves the routing table
        now and is told to shut down on its next heartbeat."""
        info = self._nodes[node_id]
        if info.state == "alive":
            info.state = "draining"
            self._bump()
        return info

    def connection_lost(self, node_id: str) -> None:
        """The node's registration connection dropped: a draining node
        finished cleanly (``left``), anything else is ``dead`` now."""
        info = self._nodes.get(node_id)
        if info is None or info.state in ("dead", "left"):
            return
        info.state = "left" if info.state == "draining" else "dead"
        self._bump()

    def sweep(self) -> list[str]:
        """Declare every silent node dead (miss-K) and return their
        ids; the caller logs them and republished routes follow from
        the epoch bump."""
        deadline = self.heartbeat_s * self.miss_limit
        now = self._now()
        died = [
            node_id
            for node_id, info in self._nodes.items()
            if info.state in ("alive", "draining")
            and now - info.last_seen > deadline
        ]
        for node_id in died:
            self._nodes[node_id].state = "dead"
        if died:
            self._bump()
        return died

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, node_id: str) -> NodeInfo | None:
        return self._nodes.get(node_id)

    @property
    def nodes(self) -> tuple[NodeInfo, ...]:
        return tuple(self._nodes.values())

    def status(self) -> dict:
        """The full membership document behind ``repro cluster status``."""
        now = self._now()
        return {
            "epoch": self._epoch,
            "replication": self.replication,
            "heartbeat_s": self.heartbeat_s,
            "miss_limit": self.miss_limit,
            "nodes": [
                info.as_dict(now)
                for info in sorted(self._nodes.values(), key=lambda n: n.node_id)
            ],
        }
