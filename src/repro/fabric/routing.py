"""The versioned routing table the coordinator publishes.

A :class:`RoutingTable` is an immutable snapshot of "who serves what":
the membership epoch it was cut at, the replication factor, and the
routable nodes (alive, not draining).  Clients cache one and route
every query locally — :meth:`RoutingTable.replicas_for` hashes the
(preset, d) shard key onto the table's consistent-hash ring and
returns the replica addresses in failover order.  When the epoch goes
stale (a node joined, died, or drained) the coordinator's ROUTES
answer carries a fresh table; nothing else about the client changes.

The wire shape is :meth:`RoutingTable.as_dict` /
:meth:`RoutingTable.from_dict` — a plain JSON object inside an
``OP_ROUTES_OK`` frame (see :mod:`repro.service.wire`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.ring import HashRing, shard_key

__all__ = ["RoutingTable"]


@dataclass(frozen=True)
class RoutingTable:
    """One epoch's shard-to-node map.

    ``nodes`` pairs each routable node id with its advertised serving
    address; ``presets`` is the union of the nodes' preset catalogs
    (what the cluster as a whole can answer).
    """

    epoch: int
    replication: int
    nodes: tuple[tuple[str, str], ...]
    presets: tuple[str, ...] = ()
    default_preset: str | None = None
    _ring: HashRing = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")
        object.__setattr__(self, "_ring", HashRing(n for n, _ in self.nodes))

    @property
    def addresses(self) -> dict[str, str]:
        return dict(self.nodes)

    def replicas_for(self, preset: str, d: int) -> tuple[str, ...]:
        """The serving addresses for one shard key, primary first."""
        addresses = self.addresses
        return tuple(
            addresses[node]
            for node in self._ring.replicas(shard_key(preset, d), self.replication)
        )

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "replication": self.replication,
            "nodes": [[node, address] for node, address in self.nodes],
            "presets": list(self.presets),
            "default_preset": self.default_preset,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RoutingTable":
        try:
            nodes = tuple(
                (str(node), str(address)) for node, address in doc["nodes"]
            )
            default = doc.get("default_preset")
            return cls(
                epoch=int(doc["epoch"]),
                replication=int(doc["replication"]),
                nodes=nodes,
                presets=tuple(str(p) for p in doc.get("presets", [])),
                default_preset=str(default) if default is not None else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed routing table document: {exc}") from None
