"""The fabric coordinator: registration, liveness, routing, admin.

A NameNode-style control-plane server (asyncio, one task per
connection) speaking the fabric opcodes of :mod:`repro.service.wire`
over the same length-prefixed framing as the data plane.  Nodes hold
one long-lived registration connection each (``OP_JOIN`` then periodic
``OP_HEARTBEAT``); clients and the CLI open short connections for
``OP_ROUTES`` / ``OP_STATUS`` / ``OP_DRAIN``.

All cluster state lives in :class:`~repro.fabric.membership.Membership`
(pure, fake-clock-testable); the coordinator adds the I/O shell:

- a JOIN binds the connection to its node, so the connection dropping
  reports the node's death (or clean exit, when draining) immediately
  — faster than waiting out the miss-K window;
- a background sweeper enforces miss-K ⇒ dead for nodes whose
  connection is technically open but silent;
- ROUTES answers are epoch-conditional: a client that already holds
  the current epoch gets a tiny ``{"unchanged": true}`` instead of the
  full table.

:func:`run_coordinator` is the blocking entry behind
``repro cluster coordinator``.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import signal
from typing import Callable

from repro.service import wire as wire_proto
from repro.service.client import Address, parse_address
from repro.fabric.membership import Membership

__all__ = ["Coordinator", "run_coordinator"]

_log = logging.getLogger("repro.fabric")


class Coordinator:
    """Control-plane server for one optimizer cluster."""

    def __init__(
        self,
        *,
        replication: int = 2,
        heartbeat_s: float = 2.0,
        miss_limit: int = 3,
    ) -> None:
        self._heartbeat_s = heartbeat_s
        self._miss_limit = miss_limit
        self._replication = replication
        self._loop: asyncio.AbstractEventLoop | None = None
        self.membership: Membership | None = None
        self._server: asyncio.base_events.Server | None = None
        self._bound: Address | None = None
        self._connections: set[asyncio.Task] = set()
        self._sweeper: asyncio.Task | None = None
        self._closing = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, address: str | Address) -> "Coordinator":
        if self._server is not None:
            raise RuntimeError("coordinator is already started")
        self._loop = asyncio.get_running_loop()
        self.membership = Membership(
            replication=self._replication,
            heartbeat_s=self._heartbeat_s,
            miss_limit=self._miss_limit,
            now=self._loop.time,
        )
        addr = parse_address(address)
        if addr.kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=addr.path
            )
            self._bound = addr
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, addr.host, addr.port
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self._bound = Address("tcp", host=host, port=int(port))
        self._sweeper = self._loop.create_task(self._sweep_loop())
        return self

    @property
    def address(self) -> Address:
        if self._bound is None:
            raise RuntimeError("coordinator is not started")
        return self._bound

    async def aclose(self) -> None:
        if self._closing:
            await self._closed.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        if self._bound is not None and self._bound.kind == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self._bound.path)
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # ------------------------------------------------------------------
    # liveness sweeper
    # ------------------------------------------------------------------
    async def _sweep_loop(self) -> None:
        membership = self.membership
        assert membership is not None
        while True:
            await asyncio.sleep(self._heartbeat_s)
            for node_id in membership.sweep():
                _log.warning(
                    "node %s missed %d heartbeats — marked dead (epoch %d)",
                    node_id, self._miss_limit, membership.epoch,
                )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        joined_node: str | None = None
        membership = self.membership
        assert membership is not None
        try:
            while True:
                try:
                    _, opcode, payload = await wire_proto.read_frame(reader)
                except asyncio.IncompleteReadError as eof:
                    if eof.partial:
                        _log.debug("connection cut mid-header")
                    break
                except wire_proto.WireError as exc:
                    writer.write(wire_proto.error_frame(str(exc)))
                    with contextlib.suppress(ConnectionError, OSError):
                        await writer.drain()
                    break
                try:
                    response, joined = self._dispatch(opcode, payload, joined_node)
                except wire_proto.WireError as exc:
                    response = wire_proto.error_frame(str(exc))
                    joined = joined_node
                joined_node = joined
                writer.write(response)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(task)
            if joined_node is not None and not self._closing:
                membership.connection_lost(joined_node)
                info = membership.get(joined_node)
                _log.info(
                    "node %s connection closed — %s (epoch %d)",
                    joined_node,
                    info.state if info else "gone",
                    membership.epoch,
                )
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def _dispatch(
        self, opcode: int, payload: bytes, joined_node: str | None
    ) -> tuple[bytes, str | None]:
        """One control frame in, one answer frame out; returns the
        (possibly updated) node id bound to this connection."""
        membership = self.membership
        assert membership is not None
        if opcode == wire_proto.OP_JOIN:
            doc = wire_proto.parse_fabric_payload(payload)
            node_id = str(doc.get("node") or "")
            address = str(doc.get("address") or "")
            try:
                membership.join(
                    node_id,
                    address,
                    presets=[str(p) for p in doc.get("presets", [])],
                    default_preset=doc.get("default_preset"),
                    shards=int(doc.get("shards", 0)),
                    stats=doc.get("stats") if isinstance(doc.get("stats"), dict) else None,
                )
            except ValueError as exc:
                raise wire_proto.WireError(f"bad JOIN: {exc}") from None
            _log.info(
                "node %s joined at %s (epoch %d)",
                node_id, address, membership.epoch,
            )
            answer = wire_proto.fabric_payload({
                "epoch": membership.epoch,
                "heartbeat_s": membership.heartbeat_s,
                "miss_limit": membership.miss_limit,
            })
            return wire_proto.pack_frame(wire_proto.OP_JOIN_OK, answer), node_id
        if opcode == wire_proto.OP_HEARTBEAT:
            doc = wire_proto.parse_fabric_payload(payload)
            node_id = str(doc.get("node") or "") or (joined_node or "")
            stats = doc.get("stats")
            try:
                info = membership.heartbeat(
                    node_id, stats if isinstance(stats, dict) else None
                )
            except KeyError:
                raise wire_proto.WireError(
                    f"unknown node {node_id!r}: re-join required"
                ) from None
            answer = wire_proto.fabric_payload({
                "epoch": membership.epoch,
                "drain": info.state == "draining",
            })
            return wire_proto.pack_frame(wire_proto.OP_HEARTBEAT_OK, answer), joined_node
        if opcode == wire_proto.OP_ROUTES:
            doc = wire_proto.parse_fabric_payload(payload) if payload else {}
            known = int(doc.get("epoch", -1))
            if known == membership.epoch:
                answer = wire_proto.fabric_payload(
                    {"unchanged": True, "epoch": membership.epoch}
                )
            else:
                answer = wire_proto.fabric_payload(membership.routing_table().as_dict())
            return wire_proto.pack_frame(wire_proto.OP_ROUTES_OK, answer), joined_node
        if opcode == wire_proto.OP_STATUS:
            answer = wire_proto.fabric_payload(membership.status())
            return wire_proto.pack_frame(wire_proto.OP_STATUS_OK, answer), joined_node
        if opcode == wire_proto.OP_DRAIN:
            doc = wire_proto.parse_fabric_payload(payload)
            node_id = str(doc.get("node") or "")
            try:
                info = membership.drain(node_id)
            except KeyError:
                raise wire_proto.WireError(f"unknown node {node_id!r}") from None
            _log.info("drain requested for node %s (epoch %d)", node_id, membership.epoch)
            answer = wire_proto.fabric_payload({
                "epoch": membership.epoch,
                "node": node_id,
                "state": info.state,
            })
            return wire_proto.pack_frame(wire_proto.OP_DRAIN_OK, answer), joined_node
        raise wire_proto.WireError(f"unexpected control opcode {opcode}")


def run_coordinator(
    address: str | Address,
    *,
    replication: int = 2,
    heartbeat_s: float = 2.0,
    miss_limit: int = 3,
    install_signal_handlers: bool = True,
    ready: Callable[[Coordinator], None] | None = None,
) -> dict:
    """Serve the control plane until a signal; returns the final
    membership status document.  The blocking entry behind
    ``repro cluster coordinator``."""

    async def _main() -> dict:
        coordinator = Coordinator(
            replication=replication,
            heartbeat_s=heartbeat_s,
            miss_limit=miss_limit,
        )
        await coordinator.start(address)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(coordinator.aclose())
                    )
        if ready is not None:
            ready(coordinator)
        await coordinator.wait_closed()
        assert coordinator.membership is not None
        return coordinator.membership.status()

    return asyncio.run(_main())
