"""Choosing the best partition for a block size (paper §6).

For a ``d``-cube there are ``p(d)`` candidate multiphase algorithms —
a "trivial number" to enumerate (42 for the thousand-node cubes of
1990).  The optimizer evaluates the analytic model for every partition
at a given block size, returns the best, and sweeps block-size ranges
to build the *hull of optimality* plotted in Figures 4–6: the
lower envelope of the per-partition cost curves, annotated with the
partition owning each segment.

Since the ordering of parts never changes the modelled cost (the tests
assert this over all compositions), enumeration is over canonical
decreasing partitions only, served from the memoized pool in
:func:`repro.core.partitions.cached_partitions`.

Evaluation runs on the vectorized grid kernel of
:mod:`repro.model.vectorized` by default: one numpy call scores the
whole candidate pool at once (or a whole block-size batch, via
:func:`best_partitions`).  The grid kernel is bitwise-identical to the
scalar model, so every result — including hull switch points located
by bisection — matches the pure-Python path exactly; ``method="scalar"``
keeps that path available as a reference and benchmark baseline.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.partitions import cached_partitions
from repro.model.cost import multiphase_time
from repro.model.params import MachineParams
from repro.model.vectorized import grid_winners, multiphase_time_grid
from repro.util.validation import check_block_size, check_dimension

__all__ = [
    "OptimalChoice",
    "OptimizerTable",
    "best_partition",
    "best_partitions",
    "evaluate_partitions",
    "hull_of_optimality",
]


@dataclass(frozen=True)
class OptimalChoice:
    """The winning partition at one block size, with runners-up."""

    m: float
    partition: tuple[int, ...]
    time: float
    ranking: tuple[tuple[tuple[int, ...], float], ...]

    def speedup_over(self, partition: Sequence[int]) -> float:
        """How much faster the winner is than ``partition`` (>= 1)."""
        lookup = dict(self.ranking)
        key = tuple(sorted(partition, reverse=True))
        try:
            other = lookup[key]
        except KeyError:
            available = ", ".join(str(p) for p in sorted(lookup))
            raise ValueError(
                f"partition {key} was not among the evaluated candidates; "
                f"have: {available}"
            ) from None
        return other / self.time if self.time > 0 else float("inf")


def _candidate_pool(
    d: int, candidates: Iterable[tuple[int, ...]] | None
) -> tuple[tuple[int, ...], ...]:
    return tuple(candidates) if candidates is not None else cached_partitions(d)


def _sorted_ranking(
    pool: Sequence[tuple[int, ...]], times: Sequence[float]
) -> list[tuple[tuple[int, ...], float]]:
    """The one place the ranking order is defined: ascending time,
    ties broken by the smaller partition tuple (the same total order
    :func:`repro.model.vectorized.grid_winners` implements)."""
    scored = list(zip(pool, times))
    scored.sort(key=lambda item: (item[1], item[0]))
    return scored


def _choice_from_ranking(
    m: float, ranking: Sequence[tuple[tuple[int, ...], float]]
) -> OptimalChoice:
    winner, time = ranking[0]
    return OptimalChoice(m=m, partition=winner, time=time, ranking=tuple(ranking))


def evaluate_partitions(
    m: float,
    d: int,
    params: MachineParams,
    *,
    candidates: Iterable[tuple[int, ...]] | None = None,
    method: str = "grid",
) -> list[tuple[tuple[int, ...], float]]:
    """Model every candidate partition at block size ``m``.

    Returns ``(partition, predicted_time)`` pairs sorted by time.
    ``method="grid"`` (default) scores the pool in one vectorized call;
    ``method="scalar"`` is the one-pair-at-a-time reference path.  The
    two are bitwise identical.
    """
    check_block_size(m)
    check_dimension(d, minimum=1)
    pool = _candidate_pool(d, candidates)
    if method == "grid":
        times = multiphase_time_grid([float(m)], d, pool, params)[:, 0].tolist()
    elif method == "scalar":
        times = [multiphase_time(m, d, p, params) for p in pool]
    else:
        raise ValueError(f"unknown method {method!r}; use 'grid' or 'scalar'")
    return _sorted_ranking(pool, times)


def best_partition(
    m: float,
    d: int,
    params: MachineParams,
    *,
    candidates: Iterable[tuple[int, ...]] | None = None,
    method: str = "grid",
) -> OptimalChoice:
    """The model-optimal partition for block size ``m``.

    >>> from repro.model.params import ipsc860
    >>> best_partition(40.0, 7, ipsc860()).partition
    (4, 3)
    """
    ranking = evaluate_partitions(m, d, params, candidates=candidates, method=method)
    return _choice_from_ranking(float(m), ranking)


def best_partitions(
    ms: Sequence[float],
    d: int,
    params: MachineParams,
    *,
    candidates: Iterable[tuple[int, ...]] | None = None,
) -> list[OptimalChoice]:
    """Batch variant of :func:`best_partition`: one
    :class:`OptimalChoice` per entry of ``ms``, scored by a single grid
    evaluation over the full block-size × partition matrix.

    >>> from repro.model.params import ipsc860
    >>> [c.partition for c in best_partitions([1.0, 40.0, 400.0], 7, ipsc860())]
    [(3, 2, 2), (4, 3), (7,)]
    """
    check_dimension(d, minimum=1)
    pool = _candidate_pool(d, candidates)
    block_sizes = [check_block_size(m) for m in ms]
    times = multiphase_time_grid(block_sizes, d, pool, params)
    return [
        _choice_from_ranking(m, _sorted_ranking(pool, times[:, col].tolist()))
        for col, m in enumerate(block_sizes)
    ]


@dataclass(frozen=True)
class OptimizerTable:
    """Precomputed optimal-partition lookup over a block-size range.

    The paper notes the enumeration "needs to be done only once and the
    optimal combination stored for repeated future use"; this is that
    stored table.  ``boundaries[i]`` is the block size at which the
    optimal partition switches from ``segments[i]`` to
    ``segments[i+1]``.
    """

    d: int
    params_name: str
    boundaries: tuple[float, ...]
    segments: tuple[tuple[int, ...], ...]

    def lookup(self, m: float) -> tuple[int, ...]:
        """The stored optimal partition for block size ``m``."""
        check_block_size(m)
        if not self.segments:
            raise ValueError(
                f"optimizer table for d={self.d} is empty; rebuild it before lookup"
            )
        return self.segments[bisect_right(self.boundaries, m)]

    @property
    def hull_partitions(self) -> tuple[tuple[int, ...], ...]:
        """Distinct partitions on the hull, in block-size order."""
        seen: list[tuple[int, ...]] = []
        for seg in self.segments:
            if not seen or seen[-1] != seg:
                seen.append(seg)
        return tuple(seen)


def hull_of_optimality(
    d: int,
    params: MachineParams,
    *,
    m_max: float = 400.0,
    resolution: float = 0.25,
    candidates: Iterable[tuple[int, ...]] | None = None,
    method: str = "grid",
) -> OptimizerTable:
    """Sweep block sizes and record where the optimal partition changes.

    ``resolution`` bounds the boundary-location error; segment switches
    are refined by bisection to ~1e-3 bytes.  The default 0–400 byte
    range matches the x-axis of Figures 4–6.

    With ``method="grid"`` the whole sweep grid is scored by one
    vectorized evaluation and only the boundary bisections fall back to
    narrow (one block size, full pool) grid calls; ``method="scalar"``
    re-models every partition at every step.  Identical tie-breaking
    and bitwise-identical times make the two tables equal to the last
    bit.
    """
    check_dimension(d, minimum=1)
    pool = _candidate_pool(d, candidates)

    # the scalar path's sweep positions, replicated exactly (float
    # accumulation included) so boundary bisections start from the
    # same brackets
    grid = [0.0]
    m = 0.0
    while m < m_max:
        m = min(m + resolution, m_max)
        grid.append(m)

    if method == "grid":
        winners = grid_winners(multiphase_time_grid(grid, d, pool, params), pool)

        def winner(mi: float) -> tuple[int, ...]:
            return grid_winners(multiphase_time_grid([mi], d, pool, params), pool)[0]

    elif method == "scalar":

        def winner(mi: float) -> tuple[int, ...]:
            return min(pool, key=lambda p: (multiphase_time(mi, d, p, params), p))

        winners = [winner(mi) for mi in grid]
    else:
        raise ValueError(f"unknown method {method!r}; use 'grid' or 'scalar'")

    segments: list[tuple[int, ...]] = [winners[0]]
    boundaries: list[float] = []
    current = winners[0]
    for idx in range(1, len(grid)):
        nxt = winners[idx]
        if nxt != current:
            lo, hi = grid[idx - 1], grid[idx]
            while hi - lo > 1e-3:
                mid = 0.5 * (lo + hi)
                if winner(mid) == current:
                    lo = mid
                else:
                    hi = mid
            boundaries.append(0.5 * (lo + hi))
            segments.append(nxt)
            current = nxt
    return OptimizerTable(
        d=d,
        params_name=params.name,
        boundaries=tuple(boundaries),
        segments=tuple(segments),
    )
