"""Choosing the best partition for a block size (paper §6).

For a ``d``-cube there are ``p(d)`` candidate multiphase algorithms —
a "trivial number" to enumerate (42 for the thousand-node cubes of
1990).  The optimizer evaluates the analytic model for every partition
at a given block size, returns the best, and sweeps block-size ranges
to build the *hull of optimality* plotted in Figures 4–6: the
lower envelope of the per-partition cost curves, annotated with the
partition owning each segment.

Since the ordering of parts never changes the modelled cost (the tests
assert this over all compositions), enumeration is over canonical
decreasing partitions only.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.partitions import partitions
from repro.model.cost import multiphase_time
from repro.model.params import MachineParams
from repro.util.validation import check_block_size, check_dimension

__all__ = [
    "OptimalChoice",
    "OptimizerTable",
    "best_partition",
    "evaluate_partitions",
    "hull_of_optimality",
]


@dataclass(frozen=True)
class OptimalChoice:
    """The winning partition at one block size, with runners-up."""

    m: float
    partition: tuple[int, ...]
    time: float
    ranking: tuple[tuple[tuple[int, ...], float], ...]

    def speedup_over(self, partition: Sequence[int]) -> float:
        """How much faster the winner is than ``partition`` (>= 1)."""
        lookup = dict(self.ranking)
        other = lookup[tuple(sorted(partition, reverse=True))]
        return other / self.time if self.time > 0 else float("inf")


def evaluate_partitions(
    m: float,
    d: int,
    params: MachineParams,
    *,
    candidates: Iterable[tuple[int, ...]] | None = None,
) -> list[tuple[tuple[int, ...], float]]:
    """Model every candidate partition at block size ``m``.

    Returns ``(partition, predicted_time)`` pairs sorted by time.
    """
    check_block_size(m)
    check_dimension(d, minimum=1)
    pool = list(candidates) if candidates is not None else list(partitions(d))
    scored = [(p, multiphase_time(m, d, p, params)) for p in pool]
    scored.sort(key=lambda item: (item[1], item[0]))
    return scored


def best_partition(
    m: float,
    d: int,
    params: MachineParams,
    *,
    candidates: Iterable[tuple[int, ...]] | None = None,
) -> OptimalChoice:
    """The model-optimal partition for block size ``m``.

    >>> from repro.model.params import ipsc860
    >>> best_partition(40.0, 7, ipsc860()).partition
    (4, 3)
    """
    ranking = evaluate_partitions(m, d, params, candidates=candidates)
    winner, time = ranking[0]
    return OptimalChoice(m=float(m), partition=winner, time=time, ranking=tuple(ranking))


@dataclass(frozen=True)
class OptimizerTable:
    """Precomputed optimal-partition lookup over a block-size range.

    The paper notes the enumeration "needs to be done only once and the
    optimal combination stored for repeated future use"; this is that
    stored table.  ``boundaries[i]`` is the block size at which the
    optimal partition switches from ``segments[i]`` to
    ``segments[i+1]``.
    """

    d: int
    params_name: str
    boundaries: tuple[float, ...]
    segments: tuple[tuple[int, ...], ...]

    def lookup(self, m: float) -> tuple[int, ...]:
        """The stored optimal partition for block size ``m``."""
        check_block_size(m)
        return self.segments[bisect_right(self.boundaries, m)]

    @property
    def hull_partitions(self) -> tuple[tuple[int, ...], ...]:
        """Distinct partitions on the hull, in block-size order."""
        seen: list[tuple[int, ...]] = []
        for seg in self.segments:
            if not seen or seen[-1] != seg:
                seen.append(seg)
        return tuple(seen)


def hull_of_optimality(
    d: int,
    params: MachineParams,
    *,
    m_max: float = 400.0,
    resolution: float = 0.25,
    candidates: Iterable[tuple[int, ...]] | None = None,
) -> OptimizerTable:
    """Sweep block sizes and record where the optimal partition changes.

    ``resolution`` bounds the boundary-location error; segment switches
    are refined by bisection to ~1e-3 bytes.  The default 0–400 byte
    range matches the x-axis of Figures 4–6.
    """
    check_dimension(d, minimum=1)
    pool = list(candidates) if candidates is not None else list(partitions(d))

    def winner(m: float) -> tuple[int, ...]:
        return min(pool, key=lambda p: (multiphase_time(m, d, p, params), p))

    segments: list[tuple[int, ...]] = []
    boundaries: list[float] = []
    m = 0.0
    current = winner(m)
    segments.append(current)
    while m < m_max:
        m_next = min(m + resolution, m_max)
        nxt = winner(m_next)
        if nxt != current:
            lo, hi = m, m_next
            while hi - lo > 1e-3:
                mid = 0.5 * (lo + hi)
                if winner(mid) == current:
                    lo = mid
                else:
                    hi = mid
            boundaries.append(0.5 * (lo + hi))
            segments.append(nxt)
            current = nxt
        m = m_next
    return OptimizerTable(
        d=d,
        params_name=params.name,
        boundaries=tuple(boundaries),
        segments=tuple(segments),
    )
