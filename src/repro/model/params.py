"""Machine performance parameters (paper §4.3 and §7.4).

The paper characterizes a circuit-switched hypercube by four constants
plus synchronization costs:

========  =====================================  ==================
symbol    meaning                                units
========  =====================================  ==================
λ         message startup (latency)              µs
τ         transmission rate                      µs per byte
δ         distance impact                        µs per dimension
ρ         data permutation (shuffle) rate        µs per byte
λ₀        startup of a zero-byte sync message    µs
γ         global synchronization cost            µs per dimension
========  =====================================  ==================

A message of ``m`` bytes crossing ``h`` dimensions costs
``λ + τ·m + δ·h``; a shuffle pass over ``b`` bytes costs ``ρ·b``.

Two presets reproduce the paper's numbers:

* :func:`ipsc860` — the measured iPSC-860 constants of §7.4
  (λ=95.0, τ=0.394, δ=10.3, λ₀=82.5, ρ=0.54, γ=150).  Pairwise
  synchronization makes the *effective* per-exchange constants
  λ_eff = λ + λ₀ = 177.5 µs and δ_eff = 2δ = 20.6 µs/dim.
* :func:`hypothetical` — the §4.3 teaching machine
  (τ = ρ = 1, λ = 200, δ = 20, no synchronization overheads).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MachineParams",
    "hypothetical",
    "ipsc860",
    "PRESETS",
]

#: iPSC-860 eager/rendezvous boundary for UNFORCED messages (paper §7.1):
#: above this size an UNFORCED message pays a reserve–acknowledge round
#: trip before the data moves.
UNFORCED_EAGER_LIMIT = 100


@dataclass(frozen=True)
class MachineParams:
    """Performance constants of a circuit-switched hypercube.

    All times in microseconds.  ``pairwise_sync`` selects whether
    exchanges are preceded by the zero-byte synchronization handshake
    the iPSC-860 needs for concurrent bidirectional transfers (§7.2);
    ``sync_latency`` is that handshake's λ₀.
    """

    name: str
    #: message startup λ (µs)
    latency: float
    #: per-byte transmission time τ (µs/byte)
    byte_time: float
    #: per-dimension distance impact δ (µs/dimension)
    hop_time: float
    #: per-byte permutation (shuffle) time ρ (µs/byte)
    permute_time: float
    #: zero-byte synchronization message startup λ₀ (µs); only charged
    #: when pairwise_sync is enabled
    sync_latency: float = 0.0
    #: whether pairwise exchanges prepend the zero-byte sync handshake
    pairwise_sync: bool = False
    #: global synchronization cost per cube dimension γ (µs/dimension)
    global_sync_per_dim: float = 0.0
    #: eager limit for UNFORCED messages (bytes)
    unforced_eager_limit: float = UNFORCED_EAGER_LIMIT

    def __post_init__(self) -> None:
        for field_name in ("latency", "byte_time", "hop_time", "permute_time",
                           "sync_latency", "global_sync_per_dim"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")

    # ------------------------------------------------------------------
    # derived effective constants (paper §7.4)
    # ------------------------------------------------------------------
    @property
    def exchange_latency(self) -> float:
        """Effective startup of one pairwise exchange: λ + λ₀ when the
        sync handshake is used, else λ (the paper's 177.5 µs)."""
        return self.latency + (self.sync_latency if self.pairwise_sync else 0.0)

    @property
    def exchange_hop_time(self) -> float:
        """Effective distance impact per dimension of one pairwise
        exchange: 2δ with the sync handshake (its zero-byte messages
        also cross the distance), else δ (the paper's 20.6 µs)."""
        return self.hop_time * (2.0 if self.pairwise_sync else 1.0)

    def message_time(self, nbytes: float, hops: int) -> float:
        """Time for a single message: ``λ + τ·m + δ·h``."""
        return self.latency + self.byte_time * nbytes + self.hop_time * hops

    def exchange_time(self, nbytes: float, hops: int) -> float:
        """Time for a pairwise synchronized exchange of ``nbytes`` each
        way at distance ``hops``: ``λ_eff + τ·m + δ_eff·h``."""
        return (
            self.exchange_latency
            + self.byte_time * nbytes
            + self.exchange_hop_time * hops
        )

    def shuffle_time(self, nbytes: float) -> float:
        """Time for one fused permutation pass over ``nbytes``: ``ρ·b``."""
        return self.permute_time * nbytes

    def global_sync_time(self, d: int) -> float:
        """Global synchronization on a ``d``-cube: ``γ·d`` (150d
        measured on the iPSC-860)."""
        return self.global_sync_per_dim * d

    def with_overrides(self, **kwargs) -> "MachineParams":
        """A copy with selected fields replaced (for sensitivity
        studies and ablations)."""
        return replace(self, **kwargs)


def ipsc860() -> MachineParams:
    """The measured Intel iPSC-860 of paper §7.4.

    λ = 95.0 µs, τ = 0.394 µs/B, δ = 10.3 µs/dim, λ₀ = 82.5 µs,
    ρ = 0.54 µs/B, global sync 150·d µs, FORCED messages with pairwise
    synchronization (λ_eff = 177.5, δ_eff = 20.6).
    """
    return MachineParams(
        name="iPSC-860",
        latency=95.0,
        byte_time=0.394,
        hop_time=10.3,
        permute_time=0.54,
        sync_latency=82.5,
        pairwise_sync=True,
        global_sync_per_dim=150.0,
    )


def hypothetical() -> MachineParams:
    """The §4.3 hypothetical machine: τ = ρ = 1, λ = 200, δ = 20.

    No pairwise or global synchronization overheads — the paper uses it
    to illustrate the crossover analysis and the §5.1 worked example.
    """
    return MachineParams(
        name="hypothetical-4.3",
        latency=200.0,
        byte_time=1.0,
        hop_time=20.0,
        permute_time=1.0,
    )


#: Named presets for CLI/bench convenience.
PRESETS = {
    "ipsc860": ipsc860,
    "hypothetical": hypothetical,
}
