"""The paper's analytic run-time model (eqs. (1), (2), (3)).

All times in microseconds, block size ``m`` in bytes, cube dimension
``d``.  The model is continuous in ``m`` so it can sweep the paper's
0–400 byte range.

Equation (1), Standard Exchange::

    t_s(m, d) = d * (λ + (τ + 2ρ) * m * 2**(d-1) + δ)

Equation (2), Optimal Circuit-Switched::

    t_o(m, d) = (2**d - 1) * (λ + τ*m + δ * d*2**(d-1) / (2**d - 1))

Equation (3) generalizes to one *partial exchange* of a multiphase
schedule on the calibrated machine; reconstructed here (see DESIGN.md
§3 and §7) as::

    t_phase(m, d_i, d) = (2**d_i - 1) * (λ_x + τ * m * 2**(d - d_i))
                       + δ_x * d_i * 2**(d_i - 1)
                       + ρ * m * 2**d        (if k > 1; fused shuffle)
                       + γ * d               (global synchronization)

with λ_x/δ_x the effective pairwise-exchange constants (λ+λ₀ and 2δ
when the machine uses the zero-byte sync handshake).  Summed over the
partition this reproduces the paper's published numbers: eq. (1) and
the §4.3/§5.1 worked examples exactly, and Figure 6's quoted times
(0.037 s / 0.037 s / 0.016 s at m=40, d=7) to the stated precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.params import MachineParams
from repro.util.validation import check_block_size, check_dimension, check_partition

__all__ = [
    "PhaseCost",
    "degraded_multiphase_time",
    "multiphase_time",
    "optimal_time",
    "phase_cost",
    "standard_time",
    "total_distance",
]


def total_distance(di: int) -> int:
    """Sum of pair distances over a ``d_i``-dimensional pairwise
    schedule: ``Σ_{j=1}^{2**d_i - 1} popcount(j) = d_i * 2**(d_i - 1)``.

    This is the aggregate distance-impact driver in eq. (2): the
    average path length ``d·2**(d-1) / (2**d - 1)`` times the number of
    transmissions.
    """
    if di < 0:
        raise ValueError(f"dimension must be >= 0, got {di}")
    if di == 0:
        return 0
    return di << (di - 1)


def standard_time(m: float, d: int, params: MachineParams) -> float:
    """Equation (1): Standard Exchange on the *generic* model.

    Uses the raw λ and δ (no pairwise-sync or global-sync overheads);
    this is the paper's theoretical expression used for the
    hypothetical machine.  For calibrated-machine predictions use
    ``multiphase_time(m, d, (1,)*d, params)``, which includes the
    implementation overheads of §7.
    """
    m = check_block_size(m)
    check_dimension(d, minimum=1)
    lam, tau, delta, rho = params.latency, params.byte_time, params.hop_time, params.permute_time
    half = 1 << (d - 1)
    return d * (lam + (tau + 2.0 * rho) * m * half + delta)


def optimal_time(m: float, d: int, params: MachineParams) -> float:
    """Equation (2): Optimal Circuit-Switched on the generic model.

    ``(2**d - 1)`` transmissions of one block; the distance term totals
    ``δ * d * 2**(d-1)`` over the schedule.
    """
    m = check_block_size(m)
    check_dimension(d, minimum=1)
    lam, tau, delta = params.latency, params.byte_time, params.hop_time
    n_tx = (1 << d) - 1
    return n_tx * (lam + tau * m) + delta * total_distance(d)


@dataclass(frozen=True)
class PhaseCost:
    """Cost breakdown of one partial exchange (eq. (3) terms)."""

    phase_dim: int
    effective_block: float
    transmission: float
    distance: float
    shuffle: float
    global_sync: float

    @property
    def total(self) -> float:
        return self.transmission + self.distance + self.shuffle + self.global_sync


def phase_cost(
    m: float,
    di: int,
    d: int,
    params: MachineParams,
    *,
    n_phases: int,
) -> PhaseCost:
    """Equation (3): one partial exchange of dimension ``d_i`` in a
    ``k = n_phases``-phase schedule on a ``d``-cube.

    The shuffle pass is omitted for single-phase schedules (the
    rotation by ``d`` is the identity, §7.4).
    """
    m = check_block_size(m)
    check_dimension(d, minimum=1)
    if not 1 <= di <= d:
        raise ValueError(f"phase dimension {di} out of range 1..{d}")
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    effective = m * (1 << (d - di))
    n_tx = (1 << di) - 1
    transmission = n_tx * (params.exchange_latency + params.byte_time * effective)
    distance = params.exchange_hop_time * total_distance(di)
    shuffle = params.shuffle_time(m * (1 << d)) if n_phases > 1 else 0.0
    gsync = params.global_sync_time(d)
    return PhaseCost(
        phase_dim=di,
        effective_block=effective,
        transmission=transmission,
        distance=distance,
        shuffle=shuffle,
        global_sync=gsync,
    )


def multiphase_time(
    m: float,
    d: int,
    partition: Sequence[int],
    params: MachineParams,
) -> float:
    """Predicted total time of the multiphase exchange for ``partition``.

    Degeneracies (proved in the tests): with synchronization overheads
    disabled, ``multiphase_time(m, d, (1,)*d)`` equals eq. (1) and
    ``multiphase_time(m, d, (d,))`` equals eq. (2).

    >>> from repro.model.params import hypothetical
    >>> multiphase_time(24, 6, (1,) * 6, hypothetical())
    15144.0
    >>> multiphase_time(24, 6, (2, 4), hypothetical())
    9984.0
    """
    parts = check_partition(partition, d)
    k = len(parts)
    return sum(phase_cost(m, di, d, params, n_phases=k).total for di in parts)


def degraded_multiphase_time(
    m: float,
    d: int,
    partition: Sequence[int],
    params: MachineParams,
    fault_plan=None,
) -> float:
    """Eq. (3) with per-phase penalty terms for a degraded machine.

    Prices the *expected* slowdown a :class:`repro.sim.faults.FaultPlan`
    inflicts on each partial exchange, without running the simulator:

    * the startup (λ_x) share of every transmission scales by the
      plan's mean latency scale, the per-byte (τ) share by its mean
      bandwidth scale — an exchange meets a uniformly random set of
      links over the schedule, so the link-population mean is the
      expected per-transfer factor;
    * the shuffle pass scales by the *worst* straggler's compute scale:
      phases are barrier-synchronized, so every phase waits for the
      slowest node's permutation;
    * each transmission adds the plan's expected outage stall
      (scheduled downtime spread over the link population, halved for
      the uniform arrival inside a window).

    With ``fault_plan=None`` (or an empty plan) this returns exactly
    ``multiphase_time(m, d, partition, params)`` — the fault-free model
    is the degenerate case, which the zero-overhead benchmark pins.
    """
    parts = check_partition(partition, d)
    if fault_plan is None or fault_plan.is_empty:
        return multiphase_time(m, d, parts, params)
    lat_scale = fault_plan.mean_latency_scale()
    bw_scale = fault_plan.mean_bandwidth_scale()
    compute_scale = fault_plan.max_compute_scale()
    stall = fault_plan.expected_stall_us()
    k = len(parts)
    total = 0.0
    for di in parts:
        cost = phase_cost(m, di, d, params, n_phases=k)
        n_tx = (1 << di) - 1
        transmission = n_tx * (
            params.exchange_latency * lat_scale
            + params.byte_time * bw_scale * cost.effective_block
        )
        total += (
            transmission
            + cost.distance
            + cost.shuffle * compute_scale
            + cost.global_sync
            + n_tx * stall
        )
    return total


def phase_breakdown(
    m: float,
    d: int,
    partition: Sequence[int],
    params: MachineParams,
) -> list[PhaseCost]:
    """Per-phase cost decomposition for reporting/debugging."""
    parts = check_partition(partition, d)
    return [phase_cost(m, di, d, params, n_phases=len(parts)) for di in parts]
