"""Persistence for optimizer tables (paper §6).

"...it needs to be done only once and the optimal combination stored
for repeated future use."  This module is that store: optimizer tables
serialize to a small JSON document together with the machine
parameters they were built from, and loading validates the parameter
fingerprint so a table is never silently reused on a differently
calibrated machine.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.model.optimizer import OptimizerTable
from repro.model.params import MachineParams

__all__ = ["load_table", "save_table", "table_to_dict", "table_from_dict"]

_FORMAT_VERSION = 1


def table_to_dict(table: OptimizerTable, params: MachineParams) -> dict:
    """JSON-ready representation of a table plus its calibration."""
    return {
        "format_version": _FORMAT_VERSION,
        "d": table.d,
        "params": asdict(params),
        "boundaries": list(table.boundaries),
        "segments": [list(segment) for segment in table.segments],
    }


def table_from_dict(doc: dict) -> tuple[OptimizerTable, MachineParams]:
    """Inverse of :func:`table_to_dict`, with validation."""
    if doc.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported optimizer-table format {doc.get('format_version')!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    params = MachineParams(**doc["params"])
    boundaries = tuple(float(b) for b in doc["boundaries"])
    segments = tuple(tuple(int(p) for p in segment) for segment in doc["segments"])
    if len(segments) != len(boundaries) + 1:
        raise ValueError(
            f"corrupt table: {len(segments)} segments for {len(boundaries)} boundaries"
        )
    d = int(doc["d"])
    for segment in segments:
        if sum(segment) != d:
            raise ValueError(f"corrupt table: segment {segment} does not partition {d}")
    table = OptimizerTable(
        d=d,
        params_name=params.name,
        boundaries=boundaries,
        segments=segments,
    )
    return table, params


def save_table(table: OptimizerTable, params: MachineParams, path: str | Path) -> Path:
    """Write a table to ``path`` (JSON)."""
    path = Path(path)
    path.write_text(json.dumps(table_to_dict(table, params), indent=2) + "\n")
    return path


def load_table(
    path: str | Path, *, expected_params: MachineParams | None = None
) -> tuple[OptimizerTable, MachineParams]:
    """Read a table, optionally pinning the calibration it must match.

    Raises :class:`ValueError` if ``expected_params`` differs from the
    stored calibration — the guard against reusing a table across
    machines.
    """
    doc = json.loads(Path(path).read_text())
    table, params = table_from_dict(doc)
    if expected_params is not None and params != expected_params:
        raise ValueError(
            f"stored table was built for {params.name!r} with different constants; "
            f"rebuild for {expected_params.name!r}"
        )
    return table, params
