"""Persistence for optimizer tables (paper §6) — format v2.

"...it needs to be done only once and the optimal combination stored
for repeated future use."  This module is that store, in two shapes:

* **single-table JSON documents** (:func:`save_table` /
  :func:`load_table`) — the human-readable form the CLI's
  ``hull --save/--load`` workflow uses.  Format v2 adds a SHA-256
  parameter fingerprint; v1 documents (no fingerprint) still load
  through the same entry points.
* **multi-table shard files** (:func:`save_shard` / :func:`load_shard`
  / :class:`ShardFile`) — the serving form behind
  :class:`repro.service.OptimizerRegistry`.  One shard holds every
  precomputed table for one machine preset in an mmap-friendly binary
  layout: a small JSON header indexes two contiguous typed regions
  (``float64`` boundaries, ``int64`` segment data), so opening a shard
  reads only the header and each table's numbers are materialized
  lazily from a :func:`numpy.memmap` on first use.

Every load path validates the parameter fingerprint so a table is
never silently reused on a differently calibrated machine, and every
table's segments are re-checked to partition its dimension.  The
degenerate *empty* table (no segments, no boundaries — e.g. a d=1
placeholder produced before any sweep ran) round-trips instead of
rendering the document unloadable.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.model.optimizer import OptimizerTable
from repro.model.params import MachineParams

__all__ = [
    "ShardFile",
    "load_shard",
    "load_table",
    "params_fingerprint",
    "save_shard",
    "save_table",
    "table_from_dict",
    "table_to_dict",
]

#: JSON table-document format; independent of the shard container format
_TABLE_FORMAT_VERSION = 2
#: document versions :func:`table_from_dict` accepts (v1 predates the
#: parameter fingerprint; reading it stays supported forever)
_TABLE_COMPAT_VERSIONS = (1, 2)
#: binary shard container format
_SHARD_FORMAT_VERSION = 2

#: shard container magic — 8 bytes so the header that follows stays
#: 8-byte aligned without padding games
_SHARD_MAGIC = b"RPROSHRD"
_SHARD_ALIGN = 8


def params_fingerprint(params: MachineParams) -> str:
    """SHA-256 over the canonical JSON of the machine constants.

    Two :class:`MachineParams` share a fingerprint iff every field —
    name included — is equal, which is exactly the "same calibration"
    predicate the store guards on.
    """
    canonical = json.dumps(asdict(params), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _params_from_header(fields, origin: str) -> MachineParams:
    """Machine constants from a stored header's ``params`` mapping.

    Unknown or missing keys (a version-skewed or hand-edited file)
    surface as the ValueError every load path reports, not a raw
    TypeError from the dataclass constructor."""
    try:
        return MachineParams(**fields)
    except TypeError as exc:
        raise ValueError(f"corrupt {origin}: bad machine parameters ({exc})") from None


def _validate_table_data(
    d: int,
    boundaries: tuple[float, ...],
    segments: tuple[tuple[int, ...], ...],
) -> None:
    """Structural checks shared by the JSON and shard load paths."""
    if not segments:
        if boundaries:
            raise ValueError(
                f"corrupt table: {len(boundaries)} boundaries but no segments"
            )
        return  # degenerate empty table: valid, serves nothing
    if len(segments) != len(boundaries) + 1:
        raise ValueError(
            f"corrupt table: {len(segments)} segments for {len(boundaries)} boundaries"
        )
    for segment in segments:
        if sum(segment) != d:
            raise ValueError(f"corrupt table: segment {segment} does not partition {d}")
    if any(b > a for a, b in zip(boundaries[1:], boundaries)):
        raise ValueError(f"corrupt table: boundaries {boundaries} are not sorted")


def table_to_dict(table: OptimizerTable, params: MachineParams) -> dict:
    """JSON-ready (format v2) representation of a table plus its
    calibration and the calibration's fingerprint."""
    return {
        "format_version": _TABLE_FORMAT_VERSION,
        "fingerprint": params_fingerprint(params),
        "d": table.d,
        "params": asdict(params),
        "boundaries": list(table.boundaries),
        "segments": [list(segment) for segment in table.segments],
    }


def table_from_dict(doc: dict) -> tuple[OptimizerTable, MachineParams]:
    """Inverse of :func:`table_to_dict`, with validation.

    Accepts both current (v2) documents and the fingerprint-less v1
    documents earlier releases wrote; empty-segment (degenerate)
    tables round-trip rather than raising.
    """
    version = doc.get("format_version")
    if version not in _TABLE_COMPAT_VERSIONS:
        raise ValueError(
            f"unsupported optimizer-table format {version!r}; "
            f"expected one of {list(_TABLE_COMPAT_VERSIONS)}"
        )
    params = _params_from_header(doc["params"], "table document")
    stored_print = doc.get("fingerprint")
    if stored_print is None:
        # only the fingerprint-less v1 format may omit it; a v2
        # document without one has been tampered with or truncated
        if version >= _TABLE_FORMAT_VERSION:
            raise ValueError(
                "corrupt table: v2 document is missing its parameter fingerprint"
            )
    elif stored_print != params_fingerprint(params):
        raise ValueError(
            "corrupt table: parameter fingerprint does not match the stored "
            f"constants for {params.name!r}"
        )
    boundaries = tuple(float(b) for b in doc["boundaries"])
    segments = tuple(tuple(int(p) for p in segment) for segment in doc["segments"])
    d = int(doc["d"])
    _validate_table_data(d, boundaries, segments)
    table = OptimizerTable(
        d=d,
        params_name=params.name,
        boundaries=boundaries,
        segments=segments,
    )
    return table, params


def save_table(table: OptimizerTable, params: MachineParams, path: str | Path) -> Path:
    """Write a single table to ``path`` (JSON, format v2)."""
    path = Path(path)
    path.write_text(json.dumps(table_to_dict(table, params), indent=2) + "\n")
    return path


def load_table(
    path: str | Path, *, expected_params: MachineParams | None = None
) -> tuple[OptimizerTable, MachineParams]:
    """Read a table (v1 or v2 document), optionally pinning the
    calibration it must match.

    Raises :class:`ValueError` if ``expected_params`` differs from the
    stored calibration — the guard against reusing a table across
    machines.
    """
    doc = json.loads(Path(path).read_text())
    table, params = table_from_dict(doc)
    if expected_params is not None and params != expected_params:
        raise ValueError(
            f"stored table was built for {params.name!r} with different constants; "
            f"rebuild for {expected_params.name!r}"
        )
    return table, params


# ----------------------------------------------------------------------
# multi-table shard files
# ----------------------------------------------------------------------

def _tables_by_dim(
    tables: Mapping[int, OptimizerTable] | Iterable[OptimizerTable],
) -> dict[int, OptimizerTable]:
    if isinstance(tables, Mapping):
        items = {int(d): t for d, t in tables.items()}
    else:
        items = {t.d: t for t in tables}
    for d, table in items.items():
        if table.d != d:
            raise ValueError(f"table for d={table.d} filed under d={d}")
    if not items:
        raise ValueError("a shard must hold at least one table")
    return items


def save_shard(
    tables: Mapping[int, OptimizerTable] | Iterable[OptimizerTable],
    params: MachineParams,
    path: str | Path,
    *,
    m_max: float | None = None,
    preset: str | None = None,
) -> Path:
    """Write every table to one binary shard file.

    Layout: ``magic | u64 version | u64 header length | header JSON |
    pad to 8 | float64 region | int64 region``.  The header carries the
    machine constants, their fingerprint, and per-table element ranges
    into the two numeric regions, so a reader can open the shard by
    parsing only the header and ``memmap`` the rest.

    ``m_max`` records the block-size bound the tables were swept to —
    serving processes use it to know where table coverage ends and
    exact re-evaluation must take over.  ``preset`` records the
    registry key the shard was saved under, so a renamed shard file
    cannot silently serve one machine's calibration as another's.
    """
    items = _tables_by_dim(tables)
    path = Path(path)

    floats: list[float] = []
    ints: list[int] = []
    index: dict[str, dict] = {}
    for d in sorted(items):
        table = items[d]
        if table.params_name != params.name:
            raise ValueError(
                f"table for d={d} was built on {table.params_name!r}, "
                f"not {params.name!r}"
            )
        _validate_table_data(d, table.boundaries, table.segments)
        b_start = len(floats)
        floats.extend(table.boundaries)
        lens_start = len(ints)
        ints.extend(len(segment) for segment in table.segments)
        parts_start = len(ints)
        for segment in table.segments:
            ints.extend(segment)
        index[str(d)] = {
            "boundaries": [b_start, len(table.boundaries)],
            "seg_lens": [lens_start, len(table.segments)],
            "seg_parts": [parts_start, len(ints) - parts_start],
        }

    header = {
        "format_version": _SHARD_FORMAT_VERSION,
        "params": asdict(params),
        "fingerprint": params_fingerprint(params),
        "float64_count": len(floats),
        "int64_count": len(ints),
        "tables": index,
    }
    if m_max is not None:
        header["m_max"] = float(m_max)
    if preset is not None:
        header["preset"] = preset
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    prefix = _SHARD_MAGIC + struct.pack("<QQ", _SHARD_FORMAT_VERSION, len(header_bytes))
    payload_offset = len(prefix) + len(header_bytes)
    padding = (-payload_offset) % _SHARD_ALIGN

    # write-then-rename so a crash mid-write never leaves a truncated
    # shard behind; on POSIX this also lets live readers memmapping the
    # old file keep a consistent view (the old inode survives until
    # they close it) — on Windows, replacing a shard a reader holds
    # open raises PermissionError instead of corrupting it
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(prefix)
        fh.write(header_bytes)
        fh.write(b"\0" * padding)
        fh.write(np.asarray(floats, dtype="<f8").tobytes())
        fh.write(np.asarray(ints, dtype="<i8").tobytes())
    os.replace(tmp, path)
    return path


class ShardFile:
    """Lazy reader for one multi-table shard.

    Opening parses the header only; :meth:`load` materializes a single
    table from the memory-mapped numeric regions on first use and
    caches it.  The mapping is read-only, so many registries (or
    processes) can serve from one shard file.
    """

    def __init__(
        self,
        path: Path,
        params: MachineParams,
        fingerprint: str,
        index: dict[int, dict],
        floats: np.ndarray,
        ints: np.ndarray,
        m_max: float | None = None,
        preset: str | None = None,
    ) -> None:
        self.path = path
        self.params = params
        self.fingerprint = fingerprint
        #: block-size bound the tables were swept to (None if the shard
        #: predates bound recording)
        self.m_max = m_max
        #: registry key the shard was saved under (None if it predates
        #: preset recording) — guards against renamed shard files
        self.preset = preset
        self._index = index
        self._floats = floats
        self._ints = ints
        self._cache: dict[int, OptimizerTable] = {}

    @classmethod
    def open(cls, path: str | Path) -> "ShardFile":
        path = Path(path)
        with path.open("rb") as fh:
            magic = fh.read(len(_SHARD_MAGIC))
            if magic != _SHARD_MAGIC:
                raise ValueError(f"{path} is not an optimizer shard file")
            sizes = fh.read(16)
            if len(sizes) != 16:
                raise ValueError(f"corrupt shard {path}: truncated header")
            version, header_len = struct.unpack("<QQ", sizes)
            if version != _SHARD_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported shard format {version}; "
                    f"expected {_SHARD_FORMAT_VERSION}"
                )
            header_bytes = fh.read(header_len)
            if len(header_bytes) != header_len:
                raise ValueError(f"corrupt shard {path}: truncated header")
            header = json.loads(header_bytes.decode("utf-8"))
        try:
            params = _params_from_header(header["params"], f"shard {path}")
            if header["fingerprint"] != params_fingerprint(params):
                raise ValueError(
                    f"corrupt shard {path}: parameter fingerprint does not match "
                    f"the stored constants for {params.name!r}"
                )
            n_floats = int(header["float64_count"])
            n_ints = int(header["int64_count"])
            table_index = header["tables"]
        except KeyError as exc:
            raise ValueError(
                f"corrupt shard {path}: missing header field {exc}"
            ) from None
        payload_offset = len(_SHARD_MAGIC) + 16 + header_len
        payload_offset += (-payload_offset) % _SHARD_ALIGN
        expected_size = payload_offset + 8 * (n_floats + n_ints)
        if path.stat().st_size < expected_size:
            raise ValueError(
                f"corrupt shard {path}: header promises {expected_size} bytes "
                f"of data but the file holds {path.stat().st_size}"
            )
        floats = (
            np.memmap(path, dtype="<f8", mode="r", offset=payload_offset, shape=(n_floats,))
            if n_floats
            else np.empty(0, dtype="<f8")
        )
        ints_offset = payload_offset + 8 * n_floats
        ints = (
            np.memmap(path, dtype="<i8", mode="r", offset=ints_offset, shape=(n_ints,))
            if n_ints
            else np.empty(0, dtype="<i8")
        )
        index = {int(d): spans for d, spans in table_index.items()}
        return cls(
            path, params, header["fingerprint"], index, floats, ints,
            m_max=header.get("m_max"),
            preset=header.get("preset"),
        )

    @property
    def dims(self) -> tuple[int, ...]:
        """Dimensions stored in this shard, ascending."""
        return tuple(sorted(self._index))

    def __contains__(self, d: int) -> bool:
        return int(d) in self._index

    def load(self, d: int) -> OptimizerTable:
        """Materialize (and cache) the table for dimension ``d``."""
        d = int(d)
        if d in self._cache:
            return self._cache[d]
        try:
            spans = self._index[d]
        except KeyError:
            raise KeyError(
                f"shard {self.path} holds no table for d={d}; have {self.dims}"
            ) from None
        b_start, b_count = spans["boundaries"]
        boundaries = tuple(float(b) for b in self._floats[b_start : b_start + b_count])
        l_start, l_count = spans["seg_lens"]
        seg_lens = [int(n) for n in self._ints[l_start : l_start + l_count]]
        p_start, p_count = spans["seg_parts"]
        parts = [int(p) for p in self._ints[p_start : p_start + p_count]]
        if sum(seg_lens) != p_count:
            raise ValueError(f"corrupt shard {self.path}: segment index mismatch")
        segments: list[tuple[int, ...]] = []
        cursor = 0
        for length in seg_lens:
            segments.append(tuple(parts[cursor : cursor + length]))
            cursor += length
        _validate_table_data(d, boundaries, tuple(segments))
        table = OptimizerTable(
            d=d,
            params_name=self.params.name,
            boundaries=boundaries,
            segments=tuple(segments),
        )
        self._cache[d] = table
        return table

    def unload(self, d: int) -> None:
        """Drop the cached materialization for dimension ``d``.

        The memory mapping stays open, so a later :meth:`load`
        re-materializes from it; callers with their own table cache
        (the registry LRU) use this to make eviction actually free the
        table instead of leaving a second copy here."""
        self._cache.pop(int(d), None)

    def tables(self) -> dict[int, OptimizerTable]:
        """Every table in the shard (materializes them all)."""
        return {d: self.load(d) for d in self.dims}


def load_shard(path: str | Path) -> ShardFile:
    """Open a shard file (header only; tables load lazily)."""
    return ShardFile.open(path)
