"""Vectorized (numpy) fast path for the eqs. (1)–(3) cost model.

The paper's §6 enumeration — model every partition of ``d`` at every
block size of interest, keep the lower envelope — is embarrassingly
data-parallel, yet :func:`repro.model.cost.multiphase_time` evaluates
one scalar ``(m, partition)`` pair per call.  This module evaluates the
whole **block-size grid × candidate-partition matrix** in one shot
with numpy broadcasting, which is what lets the optimizer, the sweeps,
and the figure generators answer "which partition should a library
call?" at production rates.

Bit-for-bit agreement with the scalar path is a hard requirement (the
figure and table text outputs must not move by even one ulp), so the
kernel applies *exactly the same IEEE-754 operations in exactly the
same order* as :func:`repro.model.cost.phase_cost` /
:func:`repro.model.cost.multiphase_time`:

* per phase: ``((transmission + distance) + shuffle) + global_sync``
  with ``transmission = n_tx * (λ_x + τ·(m·2**(d-d_i)))``;
* per partition: left-to-right accumulation over the phases, starting
  from ``0.0`` (Python's ``sum``);
* powers of two come from ``ldexp`` so the scale factors are exact.

Padded phase slots (partitions shorter than the widest candidate)
contribute an exact ``+0.0``, which is the identity on every finite
float, so ragged partition lists cost nothing in precision.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.model.params import MachineParams
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "grid_winners",
    "multiphase_time_grid",
    "multiphase_time_pairs",
    "pack_partitions",
]


def pack_partitions(
    partitions: Iterable[Sequence[int]], d: int
) -> tuple[tuple[tuple[int, ...], ...], np.ndarray]:
    """Validate candidates and pack them into a padded ``(P, K)`` int
    matrix (``K`` = longest candidate; missing phases are ``0``).

    Returns the validated pool (as tuples, original order preserved)
    alongside the matrix, so callers can map row indices back to
    partitions.
    """
    check_dimension(d, minimum=1)
    pool = tuple(check_partition(p, d) for p in partitions)
    width = max((len(p) for p in pool), default=1)
    packed = np.zeros((len(pool), width), dtype=np.int64)
    for row, parts in enumerate(pool):
        packed[row, : len(parts)] = parts
    return pool, packed


def multiphase_time_grid(
    ms: Sequence[float] | np.ndarray,
    d: int,
    partitions: Iterable[Sequence[int]],
    params: MachineParams,
) -> np.ndarray:
    """Predicted multiphase-exchange time for every ``(partition, m)``
    pair: a ``(len(partitions), len(ms))`` float64 array.

    Equivalent to — and bitwise identical with — the scalar loop::

        [[multiphase_time(m, d, p, params) for m in ms] for p in partitions]

    but evaluated by broadcasting over the full grid, phase by phase.
    The phase loop runs at most ``d`` times; everything inside it is a
    whole-matrix numpy operation.

    >>> from repro.model.params import hypothetical
    >>> multiphase_time_grid([24.0], 6, [(1,) * 6, (2, 4)], hypothetical())
    array([[15144.],
           [ 9984.]])
    """
    pool, packed = pack_partitions(partitions, d)
    m_arr = np.asarray(ms, dtype=np.float64)
    if m_arr.ndim != 1:
        raise ValueError(f"ms must be one-dimensional, got shape {m_arr.shape}")
    if m_arr.size and (not np.all(np.isfinite(m_arr)) or np.any(m_arr < 0)):
        bad = m_arr[~(np.isfinite(m_arr) & (m_arr >= 0))][0]
        raise ValueError(f"block sizes must be finite and >= 0, got {bad}")

    n_rows = len(pool)
    if n_rows == 0:
        return np.zeros((0, m_arr.shape[0]))

    lam_x = params.exchange_latency
    tau = params.byte_time
    delta_x = params.exchange_hop_time
    gsync = params.global_sync_time(d)
    n_phases = (packed > 0).sum(axis=1)
    #: ρ·(m·2**d), charged per phase only in multi-phase schedules
    shuffle_row = params.permute_time * (m_arr * float(1 << d))

    total = np.zeros((n_rows, m_arr.shape[0]))
    for slot in range(packed.shape[1]):
        di = packed[:, slot]
        live = di > 0
        # dead slots: n_tx = 0 and distance = 0, so the slot's
        # transmission/distance vanish without masking
        n_tx = np.left_shift(1, di) - 1
        # int32 exponents: np.ldexp has no int64 loop where C long is
        # 32-bit (e.g. Windows), and d <= 24 bounds them anyway.  Dead
        # slots get scale 0.0, not 2**d: at astronomically large m the
        # latter overflows to inf and 0*inf would poison the slot's
        # exact-+0.0 contribution with NaN.
        scale = np.where(live, np.ldexp(1.0, (d - di).astype(np.int32)), 0.0)
        distance = delta_x * (di * np.left_shift(1, np.maximum(di - 1, 0)))
        effective = m_arr[np.newaxis, :] * scale[:, np.newaxis]
        phase = n_tx[:, np.newaxis] * (lam_x + tau * effective)
        phase = phase + distance[:, np.newaxis]
        phase = phase + np.where(
            (live & (n_phases > 1))[:, np.newaxis], shuffle_row[np.newaxis, :], 0.0
        )
        phase = phase + np.where(live, gsync, 0.0)[:, np.newaxis]
        total += phase
    return total


def multiphase_time_pairs(
    ms: Sequence[float] | np.ndarray,
    d: int,
    partitions: Iterable[Sequence[int]],
    params: MachineParams,
) -> np.ndarray:
    """Predicted time for each ``(ms[i], partitions[i])`` pairing: a
    ``(len(ms),)`` float64 vector.

    The elementwise form of :func:`multiphase_time_grid` — the same
    IEEE-754 operations in the same order, applied along one axis
    instead of broadcasting the cross product — so it is bitwise
    identical to::

        [multiphase_time(m, d, p, params) for m, p in zip(ms, partitions)]

    Use it when each block size pairs with its own candidate (the
    lockstep crossover bisections), where the grid's cross product
    would evaluate cells nobody reads.
    """
    pool, packed = pack_partitions(partitions, d)
    m_arr = np.asarray(ms, dtype=np.float64)
    if m_arr.ndim != 1:
        raise ValueError(f"ms must be one-dimensional, got shape {m_arr.shape}")
    if m_arr.shape[0] != len(pool):
        raise ValueError(
            f"{m_arr.shape[0]} block sizes paired with {len(pool)} partitions"
        )
    if m_arr.size and (not np.all(np.isfinite(m_arr)) or np.any(m_arr < 0)):
        bad = m_arr[~(np.isfinite(m_arr) & (m_arr >= 0))][0]
        raise ValueError(f"block sizes must be finite and >= 0, got {bad}")
    if len(pool) == 0:
        return np.zeros(0)

    lam_x = params.exchange_latency
    tau = params.byte_time
    delta_x = params.exchange_hop_time
    gsync = params.global_sync_time(d)
    n_phases = (packed > 0).sum(axis=1)
    shuffle = params.permute_time * (m_arr * float(1 << d))

    total = np.zeros(m_arr.shape[0])
    for slot in range(packed.shape[1]):
        di = packed[:, slot]
        live = di > 0
        n_tx = np.left_shift(1, di) - 1
        scale = np.where(live, np.ldexp(1.0, (d - di).astype(np.int32)), 0.0)
        distance = delta_x * (di * np.left_shift(1, np.maximum(di - 1, 0)))
        effective = m_arr * scale
        phase = n_tx * (lam_x + tau * effective)
        phase = phase + distance
        phase = phase + np.where(live & (n_phases > 1), shuffle, 0.0)
        phase = phase + np.where(live, gsync, 0.0)
        total += phase
    return total


def grid_winners(
    times: np.ndarray, pool: Sequence[tuple[int, ...]]
) -> list[tuple[int, ...]]:
    """Per-column winner of a ``(P, M)`` time grid, tie-broken by the
    smaller partition tuple — the same total order as
    ``min(pool, key=lambda p: (time(p), p))`` on the scalar path.
    """
    if times.shape[0] != len(pool):
        raise ValueError(
            f"time grid has {times.shape[0]} rows for {len(pool)} candidates"
        )
    order = sorted(range(len(pool)), key=lambda i: pool[i])
    # argmin returns the first minimal row; rows sorted by partition
    # tuple make "first" mean "smallest tuple among the tied"
    best = times[order, :].argmin(axis=0)
    return [pool[order[i]] for i in best]
