"""Analytic run-time model, calibration presets, and partition optimizer.

Implements the paper's eqs. (1)–(3), the §4.3 crossover analysis, and
the §6 enumeration that picks the best partition for a block size.
"""

from repro.model.cost import (
    PhaseCost,
    degraded_multiphase_time,
    multiphase_time,
    optimal_time,
    phase_breakdown,
    phase_cost,
    standard_time,
    total_distance,
)
from repro.model.crossover import (
    crossover_block_size,
    empirical_crossover,
    empirical_crossovers,
    standard_wins,
)
from repro.model.optimizer import (
    OptimalChoice,
    OptimizerTable,
    best_partition,
    best_partitions,
    evaluate_partitions,
    hull_of_optimality,
)
from repro.model.params import PRESETS, MachineParams, hypothetical, ipsc860
from repro.model.sensitivity import (
    HullShift,
    free_permutation_study,
    hull_under,
    latency_sweep,
    sync_overhead_study,
)
from repro.model.store import (
    ShardFile,
    load_shard,
    load_table,
    params_fingerprint,
    save_shard,
    save_table,
)
from repro.model.vectorized import grid_winners, multiphase_time_grid, pack_partitions

__all__ = [
    "HullShift",
    "MachineParams",
    "free_permutation_study",
    "hull_under",
    "latency_sweep",
    "load_shard",
    "load_table",
    "params_fingerprint",
    "save_shard",
    "save_table",
    "sync_overhead_study",
    "ShardFile",
    "OptimalChoice",
    "OptimizerTable",
    "PRESETS",
    "PhaseCost",
    "best_partition",
    "best_partitions",
    "crossover_block_size",
    "degraded_multiphase_time",
    "empirical_crossover",
    "empirical_crossovers",
    "evaluate_partitions",
    "grid_winners",
    "hull_of_optimality",
    "hypothetical",
    "ipsc860",
    "multiphase_time",
    "multiphase_time_grid",
    "optimal_time",
    "pack_partitions",
    "phase_breakdown",
    "phase_cost",
    "standard_time",
    "standard_wins",
    "total_distance",
]
