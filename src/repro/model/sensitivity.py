"""Sensitivity and ablation studies on the cost model.

The paper makes several robustness claims in passing; this module
turns them into reproducible studies:

* **free permutation** (§7.4): "our overall approach ... is valid even
  if the cost of permutation is zero" — setting ρ = 0 must keep
  multiphase partitions on the hull (it widens their win region);
* **synchronization overheads** (§7.2/§7.3): the pairwise handshake
  and per-phase global sync are what push the all-ones partition off
  the iPSC-860 hull; removing them restores the §4.3 picture where
  Standard Exchange owns the smallest blocks;
* **latency sweep**: the SE/OCS crossover grows with λ — the startup
  cost is the whole reason multiphase exists.  The sweep locates each
  crossover on the *full* calibrated model (sync and shuffle overheads
  included) by bisection, not the overhead-free §4.3 closed form.

Every study scores the model through the vectorized grid kernel by
default (``method="grid"``); ``method="scalar"`` keeps the per-point
reference path, which returns bitwise-identical results — the
exact-agreement property tests assert this across presets and
dimensions.  Each study returns plain data structures the ablation
benchmark renders and asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.crossover import empirical_crossover
from repro.model.optimizer import hull_of_optimality
from repro.model.params import MachineParams, ipsc860

__all__ = [
    "HullShift",
    "free_permutation_study",
    "hull_under",
    "latency_sweep",
    "sync_overhead_study",
]


@dataclass(frozen=True)
class HullShift:
    """Hull of optimality under a parameter variation."""

    label: str
    params: MachineParams
    hull: tuple[tuple[int, ...], ...]
    boundaries: tuple[float, ...]

    @property
    def single_phase_threshold(self) -> float:
        """Block size beyond which the single-phase algorithm wins
        (infinity if it never does within the sweep)."""
        if not self.boundaries:
            return 0.0 if len(self.hull) == 1 and len(self.hull[0]) == 1 else float("inf")
        last = self.hull[-1]
        if len(last) == 1:
            return self.boundaries[-1]
        return float("inf")


def hull_under(
    label: str,
    params: MachineParams,
    d: int,
    *,
    m_max: float = 400.0,
    method: str = "grid",
) -> HullShift:
    """Hull of optimality for an arbitrary parameter variation."""
    table = hull_of_optimality(d, params, m_max=m_max, method=method)
    return HullShift(
        label=label,
        params=params,
        hull=table.hull_partitions,
        boundaries=table.boundaries,
    )


def free_permutation_study(
    d: int,
    *,
    m_max: float = 400.0,
    base: MachineParams | None = None,
    method: str = "grid",
) -> tuple[HullShift, HullShift]:
    """Baseline vs ρ = 0 hulls (the §7.4 robustness claim).

    With free shuffles every multiphase overhead except volume
    disappears, so multiphase partitions must still populate the
    small-block end — and their win region can only grow.
    """
    baseline = base if base is not None else ipsc860()
    free = baseline.with_overrides(permute_time=0.0, name=f"{baseline.name} (rho=0)")
    return (
        hull_under("measured rho", baseline, d, m_max=m_max, method=method),
        hull_under("rho = 0", free, d, m_max=m_max, method=method),
    )


def sync_overhead_study(
    d: int,
    *,
    m_max: float = 400.0,
    base: MachineParams | None = None,
    method: str = "grid",
) -> tuple[HullShift, HullShift]:
    """Baseline vs no-synchronization hulls.

    Dropping the pairwise handshake (λ₀, 2δ) and the per-phase global
    sync reproduces the §4.3 regime where the all-ones partition
    (Standard Exchange) owns the smallest block sizes.
    """
    baseline = base if base is not None else ipsc860()
    nosync = baseline.with_overrides(
        pairwise_sync=False,
        sync_latency=0.0,
        global_sync_per_dim=0.0,
        name=f"{baseline.name} (no sync overheads)",
    )
    return (
        hull_under("with sync overheads", baseline, d, m_max=m_max, method=method),
        hull_under("without sync overheads", nosync, d, m_max=m_max, method=method),
    )


def latency_sweep(
    d: int,
    latencies: tuple[float, ...] = (10.0, 50.0, 95.0, 200.0, 400.0),
    *,
    base: MachineParams | None = None,
    method: str = "grid",
) -> list[tuple[float, float]]:
    """SE/OCS crossover block size as a function of startup latency λ.

    Returns ``(λ, crossover_bytes)`` pairs located by bisection on the
    full calibrated model (each bisection scores both partitions
    through one grid-kernel call per step); the crossover must grow
    monotonically with λ (more startup pain favours the d-transmission
    algorithm for longer).  The overhead-free closed form of §4.3
    remains available as
    :func:`repro.model.crossover.crossover_block_size`.
    """
    baseline = base if base is not None else ipsc860()
    out = []
    for lam in latencies:
        params = baseline.with_overrides(latency=lam)
        cross = empirical_crossover(d, params, method=method)
        if cross is None:
            raise ValueError(
                f"no SE/OCS crossover for λ={lam} within the bisection range"
            )
        out.append((lam, cross))
    return out
