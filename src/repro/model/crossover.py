"""SE/OCS crossover analysis (paper §4.3).

Equating eqs. (1) and (2) gives the block size below which Standard
Exchange beats the Optimal Circuit-Switched algorithm::

        (2**d - d - 1)·λ + d·(2**(d-1) - 1)·δ
    m < -------------------------------------------
        (d·2**(d-1) - 2**d + 1)·τ + d·2**d·ρ

For the hypothetical machine of §4.3 (τ = ρ = 1, λ = 200, δ = 20,
d = 6) the threshold is just under 30 bytes, which the paper quotes as
"blocks of size less than 30".
"""

from __future__ import annotations

from repro.model.cost import multiphase_time, optimal_time, standard_time
from repro.model.params import MachineParams
from repro.util.validation import check_dimension

__all__ = ["crossover_block_size", "empirical_crossover", "standard_wins"]


def crossover_block_size(d: int, params: MachineParams) -> float:
    """The closed-form SE/OCS crossover block size (bytes).

    Standard Exchange is faster for ``m`` strictly below the returned
    value (infinite if OCS never wins, which cannot happen for d >= 2
    with positive τ).

    >>> from repro.model.params import hypothetical
    >>> 29 < crossover_block_size(6, hypothetical()) < 30
    True
    """
    check_dimension(d, minimum=2)
    lam, tau = params.latency, params.byte_time
    delta, rho = params.hop_time, params.permute_time
    n = 1 << d
    half = n >> 1
    numerator = (n - d - 1) * lam + d * (half - 1) * delta
    denominator = (d * half - n + 1) * tau + d * n * rho
    if denominator <= 0:
        return float("inf")
    return numerator / denominator


def standard_wins(m: float, d: int, params: MachineParams) -> bool:
    """True iff eq. (1) predicts SE strictly faster than OCS at ``m``."""
    return standard_time(m, d, params) < optimal_time(m, d, params)


def empirical_crossover(
    d: int,
    params: MachineParams,
    *,
    partition_a: tuple[int, ...] | None = None,
    partition_b: tuple[int, ...] | None = None,
    m_max: float = 4096.0,
    tol: float = 1e-6,
) -> float | None:
    """Crossover block size between two partitions by bisection on the
    *full* calibrated model (including sync and shuffle overheads).

    Defaults compare SE (``(1,)*d``) against OCS (``(d,)``).  Returns
    the block size where the two predicted times are equal, or ``None``
    if the sign never changes on ``[0, m_max]``.
    """
    check_dimension(d, minimum=1)
    pa = partition_a if partition_a is not None else (1,) * d
    pb = partition_b if partition_b is not None else (d,)

    def diff(m: float) -> float:
        return multiphase_time(m, d, pa, params) - multiphase_time(m, d, pb, params)

    lo, hi = 0.0, float(m_max)
    flo, fhi = diff(lo), diff(hi)
    if flo == 0.0 and fhi == 0.0:
        return None  # identical cost curves: no crossover to report
    if flo == 0.0:
        return lo
    if flo * fhi > 0:
        return None
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        fmid = diff(mid)
        if fmid == 0.0:
            return mid
        if flo * fmid < 0:
            hi = mid
        else:
            lo, flo = mid, fmid
    return 0.5 * (lo + hi)
