"""SE/OCS crossover analysis (paper §4.3).

Equating eqs. (1) and (2) gives the block size below which Standard
Exchange beats the Optimal Circuit-Switched algorithm::

        (2**d - d - 1)·λ + d·(2**(d-1) - 1)·δ
    m < -------------------------------------------
        (d·2**(d-1) - 2**d + 1)·τ + d·2**d·ρ

For the hypothetical machine of §4.3 (τ = ρ = 1, λ = 200, δ = 20,
d = 6) the threshold is just under 30 bytes, which the paper quotes as
"blocks of size less than 30".

Empirical crossovers on the *full* calibrated model (sync and shuffle
overheads included) are located by bisection.  All model scoring runs
through the vectorized kernel
(:func:`repro.model.vectorized.multiphase_time_pairs`, the
elementwise form of the grid kernel) by default:
:func:`empirical_crossovers` drives any number of bisections in
lockstep, scoring every active bracket's midpoint — two cells per
bracket, exactly what the scalar path would touch — in one kernel
call per iteration.  The kernel is bitwise-identical to the
scalar model and the bracket updates replicate the scalar bisection
exactly, so ``method="scalar"`` (the one-pair-at-a-time reference
path) returns the same floats to the last bit.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.cost import multiphase_time, optimal_time, standard_time
from repro.model.params import MachineParams
from repro.model.vectorized import multiphase_time_pairs
from repro.util.validation import check_dimension

__all__ = [
    "crossover_block_size",
    "empirical_crossover",
    "empirical_crossovers",
    "standard_wins",
]


def crossover_block_size(d: int, params: MachineParams) -> float:
    """The closed-form SE/OCS crossover block size (bytes).

    Standard Exchange is faster for ``m`` strictly below the returned
    value (infinite if OCS never wins, which cannot happen for d >= 2
    with positive τ).

    >>> from repro.model.params import hypothetical
    >>> 29 < crossover_block_size(6, hypothetical()) < 30
    True
    """
    check_dimension(d, minimum=2)
    lam, tau = params.latency, params.byte_time
    delta, rho = params.hop_time, params.permute_time
    n = 1 << d
    half = n >> 1
    numerator = (n - d - 1) * lam + d * (half - 1) * delta
    denominator = (d * half - n + 1) * tau + d * n * rho
    if denominator <= 0:
        return float("inf")
    return numerator / denominator


def standard_wins(m: float, d: int, params: MachineParams) -> bool:
    """True iff eq. (1) predicts SE strictly faster than OCS at ``m``."""
    return standard_time(m, d, params) < optimal_time(m, d, params)


def _normalized_pairs(
    pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    return [(tuple(pa), tuple(pb)) for pa, pb in pairs]


def _bisect_scalar(
    d: int,
    pa: tuple[int, ...],
    pb: tuple[int, ...],
    params: MachineParams,
    m_max: float,
    tol: float,
) -> float | None:
    """The reference one-pair bisection on scalar model calls."""

    def diff(m: float) -> float:
        return multiphase_time(m, d, pa, params) - multiphase_time(m, d, pb, params)

    lo, hi = 0.0, float(m_max)
    flo, fhi = diff(lo), diff(hi)
    if flo == 0.0 and fhi == 0.0:  # repro: allow[float-eq] — exact bisection sentinel
        return None  # identical cost curves: no crossover to report
    if flo == 0.0:  # repro: allow[float-eq] — exact bisection sentinel
        return lo
    if flo * fhi > 0:
        return None
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        fmid = diff(mid)
        if fmid == 0.0:  # repro: allow[float-eq] — exact bisection sentinel
            return mid
        if flo * fmid < 0:
            hi = mid
        else:
            lo, flo = mid, fmid
    return 0.5 * (lo + hi)


def _bisect_grid(
    d: int,
    pairs: list[tuple[tuple[int, ...], tuple[int, ...]]],
    params: MachineParams,
    m_max: float,
    tol: float,
) -> list[float | None]:
    """Lockstep bisection for every pair at once.

    Each iteration scores all active midpoints with one
    :func:`multiphase_time_pairs` call — exactly the two cells per
    still-open bracket the scalar path would evaluate, in a single
    kernel invocation rather than a cross product or a call per pair;
    the per-pair bracket updates mirror :func:`_bisect_scalar`
    operation for operation, so the returned floats are bitwise
    identical to the scalar path's.
    """

    def diffs_at(ms_by_pair: dict[int, float]) -> dict[int, float]:
        order = sorted(ms_by_pair)
        ms: list[float] = []
        candidates: list[tuple[int, ...]] = []
        for i in order:
            ms.extend((ms_by_pair[i], ms_by_pair[i]))
            candidates.extend(pairs[i])
        times = multiphase_time_pairs(ms, d, candidates, params)
        return {
            i: float(times[2 * k] - times[2 * k + 1]) for k, i in enumerate(order)
        }

    n = len(pairs)
    results: list[float | None] = [None] * n
    lo = [0.0] * n
    hi = [float(m_max)] * n
    flo = [0.0] * n

    ends_lo = diffs_at({i: 0.0 for i in range(n)})
    ends_hi = diffs_at({i: hi[i] for i in range(n)})
    active: list[int] = []
    for i in range(n):
        f0, f1 = ends_lo[i], ends_hi[i]
        if f0 == 0.0 and f1 == 0.0:  # repro: allow[float-eq] — exact bisection sentinel
            results[i] = None  # identical cost curves
        elif f0 == 0.0:  # repro: allow[float-eq] — exact bisection sentinel
            results[i] = lo[i]
        elif f0 * f1 > 0:
            results[i] = None
        else:
            flo[i] = f0
            active.append(i)

    while active:
        converged = [i for i in active if hi[i] - lo[i] <= tol]
        for i in converged:
            results[i] = 0.5 * (lo[i] + hi[i])
        active = [i for i in active if hi[i] - lo[i] > tol]
        if not active:
            break
        mids = {i: 0.5 * (lo[i] + hi[i]) for i in active}
        fmids = diffs_at(mids)
        still: list[int] = []
        for i in active:
            fmid = fmids[i]
            if fmid == 0.0:  # repro: allow[float-eq] — exact bisection sentinel
                results[i] = mids[i]
                continue
            if flo[i] * fmid < 0:
                hi[i] = mids[i]
            else:
                lo[i], flo[i] = mids[i], fmid
            still.append(i)
        active = still
    return results


def empirical_crossovers(
    d: int,
    params: MachineParams,
    pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
    *,
    m_max: float = 4096.0,
    tol: float = 1e-6,
    method: str = "grid",
) -> list[float | None]:
    """Crossover block sizes for many partition pairs at once.

    Entry ``i`` is where ``pairs[i]``'s two cost curves meet on the
    full calibrated model, or ``None`` if the sign never changes on
    ``[0, m_max]``.  ``method="grid"`` (default) runs every bisection
    in lockstep, one elementwise grid-kernel call per iteration
    covering all still-open brackets; ``method="scalar"`` runs the
    reference per-pair loop.  Both return bitwise-identical floats.
    """
    check_dimension(d, minimum=1)
    normalized = _normalized_pairs(pairs)
    if method == "grid":
        if not normalized:
            return []
        return _bisect_grid(d, normalized, params, float(m_max), tol)
    if method == "scalar":
        return [
            _bisect_scalar(d, pa, pb, params, float(m_max), tol)
            for pa, pb in normalized
        ]
    raise ValueError(f"unknown method {method!r}; use 'grid' or 'scalar'")


def empirical_crossover(
    d: int,
    params: MachineParams,
    *,
    partition_a: tuple[int, ...] | None = None,
    partition_b: tuple[int, ...] | None = None,
    m_max: float = 4096.0,
    tol: float = 1e-6,
    method: str = "grid",
) -> float | None:
    """Crossover block size between two partitions by bisection on the
    *full* calibrated model (including sync and shuffle overheads).

    Defaults compare SE (``(1,)*d``) against OCS (``(d,)``).  Returns
    the block size where the two predicted times are equal, or ``None``
    if the sign never changes on ``[0, m_max]``.
    """
    check_dimension(d, minimum=1)
    pa = partition_a if partition_a is not None else (1,) * d
    pb = partition_b if partition_b is not None else (d,)
    return empirical_crossovers(
        d, params, [(pa, pb)], m_max=m_max, tol=tol, method=method
    )[0]
