"""The collective planner: policy + per-run plan cache + audit log.

:class:`CollectivePlanner` is what call sites (the communicator, the
apps, the patterns layer) actually hold.  It delegates each new
``(d, m)`` to its policy exactly once, memoizes the decision for the
run, and keeps an ordered log of every decision it handed out — the
raw material for the predicted-vs-simulated validation report.

The cache matters beyond speed: inside a simulated SPMD run every rank
asks the shared planner for the same collective, and the cache is what
guarantees all ranks execute the *same* schedule (rank 0's policy call
decides; ranks 1..n-1 hit the cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.plan.decision import PlanDecision
from repro.plan.policies import PlanningPolicy
from repro.util.validation import check_block_size, check_dimension

__all__ = ["CollectivePlanner", "PlannerStats"]


@dataclass
class PlannerStats:
    """Counters for one planner's lifetime."""

    #: decisions handed out (every ``decide`` call)
    decisions: int = 0
    #: decisions served from the per-run plan cache
    cache_hits: int = 0
    #: distinct (d, m) queries that reached the policy
    policy_calls: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of decisions served from the cache (0.0 when idle)."""
        return self.cache_hits / self.decisions if self.decisions else 0.0

    def as_dict(self) -> dict:
        return {
            "decisions": self.decisions,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "policy_calls": self.policy_calls,
        }


@dataclass
class CollectivePlanner:
    """Algorithm selection for collectives, one policy per planner.

    >>> from repro.model.params import ipsc860
    >>> from repro.plan.policies import ModelPolicy
    >>> planner = CollectivePlanner(ModelPolicy(ipsc860()))
    >>> planner.decide(7, 40).partition
    (4, 3)
    >>> planner.decide(7, 40).source            # repeat: plan cache
    'cache'
    >>> planner.stats.policy_calls
    1
    """

    policy: PlanningPolicy
    stats: PlannerStats = field(default_factory=PlannerStats)
    #: every decision handed out, in call order (cache hits included)
    log: list[PlanDecision] = field(default_factory=list)
    _cache: dict[tuple[int, float], PlanDecision] = field(default_factory=dict)

    @property
    def policy_name(self) -> str:
        return self.policy.name

    def decide(self, d: int, m: float) -> PlanDecision:
        """The algorithm this planner selects for a ``(d, m)`` collective."""
        check_dimension(d, minimum=1)
        key = (int(d), check_block_size(m))
        self.stats.decisions += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            decision = replace(cached, source="cache")
        else:
            self.stats.policy_calls += 1
            decision = self.policy.decide(*key)
            self._cache[key] = decision
        self.log.append(decision)
        return decision

    def unique_decisions(self) -> list[PlanDecision]:
        """The distinct decisions taken this run, in first-seen order."""
        return list(self._cache.values())

    def clear(self) -> None:
        """Drop the plan cache and log (a fresh 'run'); stats survive."""
        self._cache.clear()
        self.log.clear()
