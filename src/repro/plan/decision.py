"""The unit of planning: one algorithm choice for one collective.

A :class:`PlanDecision` names which complete-exchange algorithm a
``(d, m)`` collective should run — the paper's point being that no
single algorithm wins everywhere — together with the partition that
realizes it, the model's predicted time, and where the answer came
from (which policy, and whether the planner's per-run cache served
it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["ALGORITHMS", "PlanDecision", "algorithm_name", "format_partition"]


def format_partition(partition: Sequence[int]) -> str:
    """The paper's set notation for a partition: ``{3,4}``.

    The one shared renderer for everything that prints partitions
    (decisions, validation rows, the CLI).

    >>> format_partition((4, 3))
    '{3,4}'
    """
    return "{" + ",".join(map(str, sorted(partition))) + "}"

#: the algorithm families a decision can select
ALGORITHMS = ("standard", "single-phase", "multiphase", "naive")


def algorithm_name(partition: Sequence[int] | None) -> str:
    """The paper's name for the algorithm a partition realizes.

    ``(1,)*d`` is the Standard Exchange, ``(d,)`` the single-phase
    Optimal Circuit-Switched algorithm, everything else a proper
    multiphase schedule; ``None`` is the rotation-order naive baseline
    (no partition, no analytic model).

    >>> algorithm_name((1, 1, 1))
    'standard'
    >>> algorithm_name((5,))
    'single-phase'
    >>> algorithm_name((3, 2))
    'multiphase'
    >>> algorithm_name(None)
    'naive'
    """
    if partition is None:
        return "naive"
    parts = tuple(partition)
    if not parts:
        raise ValueError("empty partition names no algorithm")
    if all(p == 1 for p in parts):
        return "standard"
    if len(parts) == 1:
        return "single-phase"
    return "multiphase"


@dataclass(frozen=True)
class PlanDecision:
    """One resolved collective-planning query.

    Attributes
    ----------
    d, m:
        The collective's cube dimension and per-pair block size (bytes).
    algorithm:
        One of :data:`ALGORITHMS`.
    partition:
        The multiphase partition realizing the algorithm, or ``None``
        for the naive baseline.
    predicted_us:
        The analytic model's time for the choice (``None`` when the
        algorithm has no model, i.e. naive).
    policy:
        Name of the policy that produced the decision.
    source:
        ``"policy"`` for a fresh policy evaluation, ``"cache"`` when
        the planner's per-run cache served a repeat ``(d, m)``;
        service-backed policies refine it to ``"service:<origin>"``
        (memo/grid/pool).
    ranking:
        Optional full candidate ranking ``((partition, time), ...)``
        when the policy evaluated one (the model policy does).
    naive_us:
        The contention-priced time of the naive rotation baseline for
        this ``(d, m)``, when the policy priced it (the contention
        policy does, via the fast path's reservation replay).  The
        naive baseline has no *analytic* model, but it does have a
        simulator price.
    traffic_us:
        The skew-aware traffic-grid price that ranked the partitions,
        when a traffic policy planned the decision.  Distinct from
        ``predicted_us`` (the uniform execution price the simulator
        measures when the decision replays).
    """

    d: int
    m: float
    algorithm: str
    partition: tuple[int, ...] | None
    predicted_us: float | None
    policy: str
    source: str = "policy"
    ranking: tuple[tuple[tuple[int, ...], float], ...] | None = None
    naive_us: float | None = None
    traffic_us: float | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if (self.partition is None) != (self.algorithm == "naive"):
            raise ValueError(
                f"algorithm {self.algorithm!r} is inconsistent with "
                f"partition {self.partition!r}"
            )

    def describe(self) -> str:
        """One-line human rendering (used by ``repro plan``)."""
        part = format_partition(self.partition) if self.partition is not None else "rotation"
        predicted = (
            f"predicted {self.predicted_us:.1f} us"
            if self.predicted_us is not None
            else "no analytic model"
        )
        return f"{self.algorithm} {part}   {predicted}"
