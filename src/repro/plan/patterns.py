"""Algorithm selection for the §9 collective patterns.

The complete exchange is not the only collective with competing
algorithms: broadcast can run the binomial tree or direct root
circuits, scatter recursive halving or direct circuits, allgather
recursive doubling or a planner-partitioned complete exchange.
:func:`plan_pattern` scores each pattern's candidates with the
analytic model and picks the winner at ``(d, m)`` — the same
optimizer-guided selection the exchange gets, applied across the
patterns layer.

For allgather's exchange-based candidate the partition comes from the
collective planner when one is supplied (closing the loop: the §6
optimizer prices the pattern), otherwise from a direct model argmin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.cost import multiphase_time
from repro.model.params import MachineParams
from repro.plan.planner import CollectivePlanner
from repro.util.validation import check_block_size, check_dimension

__all__ = ["PATTERNS", "PatternDecision", "pattern_candidates", "plan_pattern"]

#: patterns the planner can select algorithms for
PATTERNS = ("broadcast", "scatter", "allgather")


@dataclass(frozen=True)
class PatternDecision:
    """The chosen algorithm for one pattern at one ``(d, m)``."""

    pattern: str
    d: int
    m: float
    algorithm: str
    predicted_us: float
    #: partition backing an exchange-based algorithm (``None`` otherwise)
    partition: tuple[int, ...] | None
    #: every scored candidate, ``(name, predicted_us)``, best first
    candidates: tuple[tuple[str, float], ...]


def pattern_candidates(
    pattern: str,
    m: float,
    d: int,
    params: MachineParams,
    *,
    planner: CollectivePlanner | None = None,
) -> list[tuple[str, float, tuple[int, ...] | None]]:
    """Model every algorithm candidate for ``pattern`` at ``(d, m)``.

    Returns ``(name, predicted_us, partition)`` triples (partition is
    ``None`` for algorithms that are not exchange-based).
    """
    from repro.patterns.allgather import allgather_time
    from repro.patterns.broadcast import broadcast_direct_time, broadcast_time
    from repro.patterns.scatter import scatter_direct_time, scatter_time

    check_dimension(d, minimum=1)
    m = check_block_size(m)
    if pattern == "broadcast":
        return [
            ("binomial", broadcast_time(m, d, params), None),
            ("direct", broadcast_direct_time(m, d, params), None),
        ]
    if pattern == "scatter":
        return [
            ("halving", scatter_time(m, d, params), None),
            ("direct", scatter_direct_time(m, d, params), None),
        ]
    if pattern == "allgather":
        if planner is not None:
            decision = planner.decide(d, m)
            if decision.partition is None:
                # the planner chose the naive rotation schedule, which
                # has no analytic model — an 'exchange' candidate here
                # would be priced as an algorithm that would not run
                return [("doubling", allgather_time(m, d, params), None)]
            partition = decision.partition
        else:
            from repro.model.optimizer import best_partition

            partition = best_partition(m, d, params).partition
        return [
            ("doubling", allgather_time(m, d, params), None),
            ("exchange", multiphase_time(m, d, partition, params), partition),
        ]
    raise ValueError(f"unknown pattern {pattern!r}; expected one of {PATTERNS}")


def plan_pattern(
    pattern: str,
    m: float,
    d: int,
    params: MachineParams,
    *,
    planner: CollectivePlanner | None = None,
) -> PatternDecision:
    """The model-optimal algorithm for ``pattern`` at ``(d, m)``.

    >>> from repro.model.params import ipsc860
    >>> plan_pattern("scatter", 40.0, 5, ipsc860()).algorithm
    'halving'
    """
    scored = pattern_candidates(pattern, m, d, params, planner=planner)
    scored.sort(key=lambda item: (item[1], item[0]))
    name, time, partition = scored[0]
    return PatternDecision(
        pattern=pattern,
        d=int(d),
        m=check_block_size(m),
        algorithm=name,
        predicted_us=time,
        partition=partition,
        candidates=tuple((n, t) for n, t, _ in scored),
    )
