"""Algorithm selection for the §9 collective patterns.

The complete exchange is not the only collective with competing
algorithms: broadcast can run the binomial tree or direct root
circuits, scatter recursive halving or direct circuits, allgather
recursive doubling or a planner-partitioned complete exchange.
:func:`plan_pattern` scores each pattern's candidates with the
*compiled fast path* (:func:`repro.sim.fastpath.program_time` over the
:mod:`repro.core.programs` step streams) and picks the winner at
``(d, m)`` — the same optimizer-guided selection the exchange gets,
applied across the patterns layer.  Because compiled pricing is
float-equal with the event engine, every ``predicted_us`` here is
simulator-backed: validating a pattern decision against a simulation
shows zero error by construction, and the event engine never boots.

For allgather's exchange-based candidate the partition comes from the
collective planner when one is supplied (closing the loop: the §6
optimizer prices the pattern), otherwise from a direct model argmin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.params import MachineParams
from repro.plan.planner import CollectivePlanner
from repro.util.validation import check_block_size, check_dimension

__all__ = ["PATTERNS", "PatternDecision", "pattern_candidates", "plan_pattern"]

#: patterns the planner can select algorithms for
PATTERNS = ("broadcast", "scatter", "allgather")


@dataclass(frozen=True)
class PatternDecision:
    """The chosen algorithm for one pattern at one ``(d, m)``."""

    pattern: str
    d: int
    m: float
    algorithm: str
    predicted_us: float
    #: partition backing an exchange-based algorithm (``None`` otherwise)
    partition: tuple[int, ...] | None
    #: every scored candidate, ``(name, predicted_us)``, best first
    candidates: tuple[tuple[str, float], ...]


def pattern_candidates(
    pattern: str,
    m: float,
    d: int,
    params: MachineParams,
    *,
    planner: CollectivePlanner | None = None,
) -> list[tuple[str, float, tuple[int, ...] | None]]:
    """Price every algorithm candidate for ``pattern`` at ``(d, m)``.

    Returns ``(name, predicted_us, partition)`` triples (partition is
    ``None`` for algorithms that are not exchange-based).  Each time is
    the compiled fast path's — float-equal with what the event engine
    would measure for that algorithm's program.
    """
    from repro.core.programs import pattern_program
    from repro.sim.fastpath import program_time

    check_dimension(d, minimum=1)
    m = check_block_size(m)

    def price(algorithm: str, partition: tuple[int, ...] | None = None) -> float:
        program = pattern_program(pattern, algorithm, d, partition=partition)
        return program_time(program, m, params)

    if pattern == "broadcast":
        return [
            ("binomial", price("binomial"), None),
            ("direct", price("direct"), None),
        ]
    if pattern == "scatter":
        return [
            ("halving", price("halving"), None),
            ("direct", price("direct"), None),
        ]
    if pattern == "allgather":
        if planner is not None:
            decision = planner.decide(d, m)
            if decision.partition is None:
                # the planner chose the naive rotation schedule, whose
                # contended cost is not what the lockstep exchange
                # program would pay — an 'exchange' candidate here
                # would be priced as an algorithm that would not run
                return [("doubling", price("doubling"), None)]
            partition = decision.partition
        else:
            from repro.model.optimizer import best_partition

            partition = best_partition(m, d, params).partition
        return [
            ("doubling", price("doubling"), None),
            ("exchange", price("exchange", partition), partition),
        ]
    raise ValueError(f"unknown pattern {pattern!r}; expected one of {PATTERNS}")


def plan_pattern(
    pattern: str,
    m: float,
    d: int,
    params: MachineParams,
    *,
    planner: CollectivePlanner | None = None,
) -> PatternDecision:
    """The model-optimal algorithm for ``pattern`` at ``(d, m)``.

    >>> from repro.model.params import ipsc860
    >>> plan_pattern("scatter", 40.0, 5, ipsc860()).algorithm
    'halving'
    """
    scored = pattern_candidates(pattern, m, d, params, planner=planner)
    scored.sort(key=lambda item: (item[1], item[0]))
    name, time, partition = scored[0]
    return PatternDecision(
        pattern=pattern,
        d=int(d),
        m=check_block_size(m),
        algorithm=name,
        predicted_us=time,
        partition=partition,
        candidates=tuple((n, t) for n, t, _ in scored),
    )
