"""Pluggable planning policies.

A *policy* answers one question — "which algorithm should this
``(d, m)`` collective run?" — three ways:

* :class:`FixedPolicy` always returns the same configured choice (a
  partition, or the naive rotation baseline) — the hardcoded behaviour
  every call site had before the planner existed, now expressible as a
  policy so baselines stay runnable through the same code path;
* :class:`ModelPolicy` scores the full candidate-partition pool with
  the vectorized cost model and returns the argmin (the §6 optimizer,
  evaluated inline);
* :class:`ServicePolicy` asks an in-process
  :class:`~repro.service.registry.OptimizerRegistry` — shard-backed
  stored tables, result memo, batched grid calls — the "stored for
  repeated future use" answer.

* :class:`ContentionPolicy` extends the model policy with a
  *contention-aware price for the naive rotation baseline*: the fast
  path's reservation replay (:func:`repro.sim.fastpath.naive_exchange_time`)
  prices the baseline the analytic model cannot, and the policy picks
  naive on the (pathological) machines where it actually wins.

* :class:`TrafficPolicy` plans for *non-uniform* loads: it prices
  every partition against a skewed traffic matrix with the batched
  §9 traffic-grid kernel
  (:func:`repro.core.traffic.best_partition_for_traffic`) and carries
  a simulator-backed ``predicted_us`` from the compiled fast path, so
  a traffic-planned decision validates with zero error like every
  other fast-path decision.

``ModelPolicy`` and ``ServicePolicy`` agree bitwise on the chosen
partition and predicted time away from table switch points (asserted
across presets and dimensions by the property tests).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.model.optimizer import best_partition
from repro.model.params import MachineParams
from repro.plan.decision import PlanDecision, algorithm_name
from repro.util.validation import check_block_size, check_dimension, check_partition

__all__ = [
    "AdaptivePolicy",
    "ContentionPolicy",
    "FixedPolicy",
    "ModelPolicy",
    "PlanningPolicy",
    "ServicePolicy",
    "TrafficPolicy",
    "make_policy",
]


@runtime_checkable
class PlanningPolicy(Protocol):
    """What a planner needs from a policy."""

    name: str

    def decide(self, d: int, m: float) -> PlanDecision:  # pragma: no cover - protocol
        ...


class FixedPolicy:
    """Always the same choice: a fixed partition or the naive baseline.

    ``partition=None`` (the default) selects the single-phase Optimal
    Circuit-Switched algorithm ``(d,)`` — the partition the comm layer
    used to hardcode.  ``naive=True`` selects the rotation-order
    baseline instead.  When ``params`` is given, partition choices are
    priced by the analytic model so validation reports can compare
    prediction against simulation.

    >>> FixedPolicy(naive=True).decide(3, 16.0).algorithm
    'naive'
    >>> FixedPolicy().decide(3, 16.0).partition
    (3,)
    """

    def __init__(
        self,
        partition: Sequence[int] | None = None,
        *,
        naive: bool = False,
        params: MachineParams | None = None,
    ) -> None:
        if naive and partition is not None:
            raise ValueError("the naive baseline has no partition; pass one or the other")
        self.partition = tuple(int(p) for p in partition) if partition is not None else None
        self.naive = naive
        self.params = params
        self.name = "fixed:naive" if naive else "fixed"

    def decide(self, d: int, m: float) -> PlanDecision:
        check_dimension(d, minimum=1)
        m = check_block_size(m)
        if self.naive:
            return PlanDecision(
                d=d, m=m, algorithm="naive", partition=None,
                predicted_us=None, policy=self.name,
            )
        partition = check_partition(self.partition if self.partition is not None else (d,), d)
        predicted = None
        if self.params is not None:
            from repro.model.cost import multiphase_time

            predicted = multiphase_time(m, d, partition, self.params)
        return PlanDecision(
            d=d, m=m, algorithm=algorithm_name(partition), partition=partition,
            predicted_us=predicted, policy=self.name,
        )


class ModelPolicy:
    """Score every candidate partition with the vectorized cost model.

    >>> from repro.model.params import ipsc860
    >>> ModelPolicy(ipsc860()).decide(7, 40.0).partition
    (4, 3)
    """

    def __init__(
        self,
        params: MachineParams,
        *,
        candidates: Iterable[tuple[int, ...]] | None = None,
    ) -> None:
        self.params = params
        self.candidates = tuple(candidates) if candidates is not None else None
        self.name = "model"

    def decide(self, d: int, m: float) -> PlanDecision:
        choice = best_partition(float(m), int(d), self.params, candidates=self.candidates)
        return PlanDecision(
            d=int(d), m=float(choice.m), algorithm=algorithm_name(choice.partition),
            partition=choice.partition, predicted_us=choice.time, policy=self.name,
            ranking=choice.ranking,
        )


class ContentionPolicy:
    """Model-optimal choice, with the naive baseline priced for real.

    The analytic model cannot price the naive rotation baseline — its
    cost is contention, which eq. (3) assumes away.  This policy prices
    it with the fast path's reservation replay (the same greedy
    link/port serialization the event engine applies, collapsed to a
    flat pass) and compares against the model's best partition:

    * on the calibrated machines the planned schedule always wins, and
      the decision carries ``naive_us`` as the quantified margin — the
      "how much does ignoring the network cost" number;
    * on a machine whose pairwise-sync handshake is expensive enough,
      naive genuinely wins, and the policy selects it *with a
      simulator-backed prediction* (``predicted_us`` is set, unlike
      the fixed naive policy's unpriced baseline).

    >>> from repro.model.params import ipsc860
    >>> decision = ContentionPolicy(ipsc860()).decide(7, 40.0)
    >>> decision.partition
    (4, 3)
    >>> decision.naive_us > decision.predicted_us
    True
    """

    def __init__(
        self,
        params: MachineParams,
        *,
        candidates: Iterable[tuple[int, ...]] | None = None,
    ) -> None:
        self.params = params
        self._model = ModelPolicy(params, candidates=candidates)
        self.name = "contention"

    def decide(self, d: int, m: float) -> PlanDecision:
        from repro.sim.fastpath import naive_exchange_time

        planned = self._model.decide(d, m)
        naive_us = naive_exchange_time(planned.d, planned.m, self.params)
        if planned.predicted_us is not None and naive_us < planned.predicted_us:
            return PlanDecision(
                d=planned.d, m=planned.m, algorithm="naive", partition=None,
                predicted_us=naive_us, policy=self.name, source="fastpath",
                ranking=planned.ranking, naive_us=naive_us,
            )
        return replace(planned, policy=self.name, naive_us=naive_us)


class TrafficPolicy:
    """Partition choice for non-uniform traffic, priced on the grid.

    Builds the canonical hotspot matrix for ``(d, m)``
    (:func:`repro.core.traffic.hotspot_traffic` at the configured
    ``skew``), evaluates every partition in one batched grid pass, and
    plans the winner.  Ties break deterministically on the lowest-index
    partition (see :func:`repro.core.traffic.best_partition_for_traffic`).

    ``predicted_us`` is the *compiled fast path's* price of the chosen
    schedule under uniform execution
    (:func:`repro.sim.fastpath.exchange_time`) — the number the event
    engine would measure when the decision replays, so validation rows
    agree exactly on both engines; the skew-aware grid price that
    ranked the partitions is carried as ``traffic_us``.

    >>> from repro.model.params import ipsc860
    >>> decision = TrafficPolicy(ipsc860(), skew=4.0).decide(5, 40.0)
    >>> decision.partition is not None
    True
    """

    def __init__(self, params: MachineParams, *, skew: float = 4.0) -> None:
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.params = params
        self.skew = float(skew)
        self.name = f"traffic:hot{skew:g}"

    def decide(self, d: int, m: float) -> PlanDecision:
        from repro.core.traffic import best_partition_for_traffic, hotspot_traffic
        from repro.sim.fastpath import exchange_time

        check_dimension(d, minimum=1)
        m = check_block_size(m)
        matrix = hotspot_traffic(d, m, self.skew)
        partition, traffic_us = best_partition_for_traffic(matrix, self.params)
        predicted = exchange_time(d, m, partition, self.params)
        return PlanDecision(
            d=d, m=m, algorithm=algorithm_name(partition), partition=partition,
            predicted_us=predicted, policy=self.name, source="fastpath",
            traffic_us=traffic_us,
        )


class AdaptivePolicy:
    """Model-optimal planning that re-plans when reality drifts.

    Starts from the clean model optimum and keeps a running *slowdown
    calibration* ``s``: every candidate is priced with the per-byte
    (τ) and permutation (ρ) constants scaled by ``s`` — the two shares
    degraded links and straggler nodes actually inflate (startup and
    switch time are machine-internal).  After each collective the
    caller feeds the observed completion time to :meth:`observe`; when
    the relative drift ``|observed - predicted| / predicted`` (the
    same quantity :func:`repro.analysis.validation.rel_drift` puts in
    validation rows) exceeds ``threshold``, the calibration absorbs
    the observed ratio and the *next* ``decide`` re-plans against the
    machine as measured, not as specified.

    Why recalibrating τ/ρ changes the plan: a multiphase partition
    trades fewer transmissions against more byte volume and a shuffle
    pass per phase.  As ``s`` grows the byte/shuffle shares dominate
    and the argmin slides toward the single-phase ``(d,)`` schedule —
    minimal bytes, no shuffles — which is exactly the right call on a
    machine whose stragglers tax every permutation pass.

    An optional ``fault_plan`` gives the policy an *a-priori* machine
    model: candidates are then priced with
    :func:`repro.model.cost.degraded_multiphase_time` (the declared
    expected slowdown) instead of the clean model, and drift
    calibration refines from there.

    >>> from repro.model.params import ipsc860
    >>> policy = AdaptivePolicy(ipsc860())
    >>> decision = policy.decide(7, 40.0)
    >>> decision.partition
    (4, 3)
    >>> policy.observe(decision, decision.predicted_us * 1.05)  # within threshold
    False
    >>> policy.observe(decision, decision.predicted_us * 4.0)
    True
    >>> policy.decide(7, 40.0).partition  # re-planned for the slow machine
    (7,)
    """

    #: calibration never collapses below this (a near-zero slowdown
    #: would make every candidate free and the argmin meaningless)
    MIN_SLOWDOWN = 0.05

    def __init__(
        self,
        params: MachineParams,
        *,
        threshold: float = 0.25,
        candidates: Iterable[tuple[int, ...]] | None = None,
        fault_plan=None,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"drift threshold must be > 0, got {threshold}")
        self.params = params
        self.threshold = float(threshold)
        self.candidates = tuple(candidates) if candidates is not None else None
        self.fault_plan = fault_plan
        #: running slowdown calibration applied to τ and ρ
        self.slowdown = 1.0
        #: number of drift-triggered recalibrations so far
        self.replans = 0
        self.name = "adaptive"

    def _calibrated_params(self) -> MachineParams:
        # exact sentinel: slowdown starts at exactly 1.0 and the branch
        # only skips building an identical params copy
        if self.slowdown == 1.0:  # repro: allow[float-eq]
            return self.params
        return self.params.with_overrides(
            byte_time=self.params.byte_time * self.slowdown,
            permute_time=self.params.permute_time * self.slowdown,
        )

    def decide(self, d: int, m: float) -> PlanDecision:
        check_dimension(d, minimum=1)
        m = check_block_size(m)
        params = self._calibrated_params()
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            from repro.core.partitions import cached_partitions
            from repro.model.cost import degraded_multiphase_time

            pool = self.candidates if self.candidates is not None else cached_partitions(d)
            scored = [
                (degraded_multiphase_time(m, d, p, params, self.fault_plan), p)
                for p in pool
            ]
            predicted, partition = min(scored, key=lambda item: (item[0], item[1]))
            return PlanDecision(
                d=d, m=m, algorithm=algorithm_name(partition), partition=partition,
                predicted_us=predicted, policy=self.name, source="degraded-model",
            )
        choice = best_partition(m, d, params, candidates=self.candidates)
        return PlanDecision(
            d=d, m=float(choice.m), algorithm=algorithm_name(choice.partition),
            partition=choice.partition, predicted_us=choice.time, policy=self.name,
            ranking=choice.ranking,
        )

    def observe(self, decision: PlanDecision, observed_us: float) -> bool:
        """Feed back one observed completion; True if it triggered a
        recalibration (the next ``decide`` may change its answer)."""
        from repro.analysis.validation import rel_drift

        predicted = decision.predicted_us
        drift = rel_drift(predicted, observed_us)
        if drift is None or drift <= self.threshold:
            return False
        self.slowdown = max(self.MIN_SLOWDOWN, self.slowdown * (observed_us / predicted))
        self.replans += 1
        return True


class ServicePolicy:
    """Answer from an in-process optimizer query service.

    Lookups go through :func:`repro.service.batch.resolve_queries`, so
    they ride the registry's shard-backed stored tables, result memo,
    and coalesced grid calls; the decision's ``source`` records which
    of those actually served the answer (``service:memo`` /
    ``service:grid`` / ``service:pool``).

    >>> from repro.service import OptimizerRegistry
    >>> policy = ServicePolicy(OptimizerRegistry(), preset="ipsc860")
    >>> policy.decide(7, 40.0).partition
    (4, 3)
    """

    def __init__(self, registry=None, *, preset: str = "ipsc860") -> None:
        from repro.service.registry import OptimizerRegistry

        self.registry = registry if registry is not None else OptimizerRegistry()
        self.registry.params(preset)  # fail fast on unknown presets
        self.preset = preset
        self.name = f"service:{preset}"

    def decide(self, d: int, m: float) -> PlanDecision:
        result = self.registry.resolve([(self.preset, int(d), float(m))])[0]
        return PlanDecision(
            d=result.d, m=result.m, algorithm=algorithm_name(result.partition),
            partition=result.partition, predicted_us=result.time_us, policy=self.name,
            source=f"service:{result.source}",
        )


def make_policy(
    name: str,
    params: MachineParams,
    *,
    preset: str = "ipsc860",
    registry=None,
    partition: Sequence[int] | None = None,
    naive: bool = False,
) -> PlanningPolicy:
    """Build one of the named policies (CLI/bench convenience).

    ``name`` is ``"fixed"``, ``"model"``, ``"service"``,
    ``"contention"``, ``"traffic"``, or ``"adaptive"``; the fixed
    policy honours ``partition``/``naive``, the service policy uses
    ``registry`` (a fresh in-process one when omitted) under
    ``preset``, the traffic policy plans for the default hotspot skew,
    the adaptive policy starts model-optimal with the default drift
    threshold.
    """
    if name == "fixed":
        return FixedPolicy(partition, naive=naive, params=params)
    if name == "model":
        return ModelPolicy(params)
    if name == "service":
        return ServicePolicy(registry, preset=preset)
    if name == "contention":
        return ContentionPolicy(params)
    if name == "traffic":
        return TrafficPolicy(params)
    if name == "adaptive":
        return AdaptivePolicy(params)
    raise ValueError(
        f"unknown policy {name!r}; expected 'fixed', 'model', 'service', "
        f"'contention', 'traffic', or 'adaptive'"
    )
