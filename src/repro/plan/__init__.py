"""Optimizer-guided collective planning.

The paper's conclusion — no single complete-exchange algorithm wins
everywhere; the right choice depends on ``(d, m)`` — becomes a runtime
subsystem here.  A :class:`~repro.plan.planner.CollectivePlanner`
holds one pluggable policy:

:class:`~repro.plan.policies.FixedPolicy`
    the pre-planner behaviour (a hardcoded partition, or the naive
    rotation baseline), kept as an expressible policy;
:class:`~repro.plan.policies.ModelPolicy`
    inline argmin over the candidate pool via the vectorized cost
    model;
:class:`~repro.plan.policies.ServicePolicy`
    answers from an in-process
    :class:`~repro.service.registry.OptimizerRegistry` (shard-backed
    stored tables, result memo, coalesced grid calls);
:class:`~repro.plan.policies.ContentionPolicy`
    the model policy plus a contention-aware price for the naive
    rotation baseline, from the fast-path reservation replay
    (:mod:`repro.sim.fastpath`);
:class:`~repro.plan.policies.TrafficPolicy`
    partition choice for non-uniform loads, priced on the batched
    traffic grid (:mod:`repro.core.traffic`) with a simulator-backed
    prediction from the compiled fast path;
:class:`~repro.plan.policies.AdaptivePolicy`
    model-optimal planning with a drift-triggered slowdown
    calibration: observed completion times that stray past a threshold
    from predictions re-plan the next collective against the machine
    as measured (optionally seeded with a
    :class:`~repro.sim.faults.FaultPlan` priced by
    :func:`~repro.model.cost.degraded_multiphase_time`).

Every layer that performs a collective routes through the planner:
``Communicator.Alltoall`` and the simulated exchange programs, all
four apps, and — via :func:`~repro.plan.patterns.plan_pattern` — the
broadcast/scatter/allgather patterns.  Decisions are cached per run,
logged for the predicted-vs-simulated validation report
(:mod:`repro.analysis.validation`), and recorded in the simulator
trace.
"""

from repro.plan.decision import ALGORITHMS, PlanDecision, algorithm_name, format_partition
from repro.plan.patterns import PATTERNS, PatternDecision, pattern_candidates, plan_pattern
from repro.plan.planner import CollectivePlanner, PlannerStats
from repro.plan.policies import (
    AdaptivePolicy,
    ContentionPolicy,
    FixedPolicy,
    ModelPolicy,
    PlanningPolicy,
    ServicePolicy,
    TrafficPolicy,
    make_policy,
)

__all__ = [
    "ALGORITHMS",
    "AdaptivePolicy",
    "CollectivePlanner",
    "ContentionPolicy",
    "FixedPolicy",
    "ModelPolicy",
    "PATTERNS",
    "PatternDecision",
    "PlanDecision",
    "PlannerStats",
    "PlanningPolicy",
    "ServicePolicy",
    "TrafficPolicy",
    "algorithm_name",
    "format_partition",
    "make_policy",
    "pattern_candidates",
    "plan_pattern",
]
