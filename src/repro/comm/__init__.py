"""Message-passing layer: communicator facade and schedule replay.

Glues the algorithm schedules of :mod:`repro.core` to the simulated
machine of :mod:`repro.sim`, and offers an mpi4py-flavoured
:class:`~repro.comm.communicator.Communicator` for writing SPMD node
programs.
"""

from repro.comm.communicator import Communicator
from repro.comm.program import SimulatedExchange, exchange_program, simulate_exchange

__all__ = [
    "Communicator",
    "SimulatedExchange",
    "exchange_program",
    "simulate_exchange",
]
