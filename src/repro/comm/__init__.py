"""Message-passing layer: communicator facade and schedule replay.

Glues the algorithm schedules of :mod:`repro.core` to the simulated
machine of :mod:`repro.sim`, and offers an mpi4py-flavoured
:class:`~repro.comm.communicator.Communicator` for writing SPMD node
programs.  Collectives accept a :class:`repro.plan.CollectivePlanner`
so the algorithm (standard / multiphase / naive) is selected per
``(d, m)`` at call time instead of being hardcoded.
"""

from repro.comm.communicator import Communicator
from repro.comm.program import (
    SimulatedExchange,
    exchange_program,
    naive_program,
    simulate_exchange,
    simulate_naive_exchange,
    simulate_planned_exchange,
)

__all__ = [
    "Communicator",
    "SimulatedExchange",
    "exchange_program",
    "naive_program",
    "simulate_exchange",
    "simulate_naive_exchange",
    "simulate_planned_exchange",
]
