"""mpi4py-flavoured communicator over the simulated machine.

Node programs can code against :class:`Communicator` instead of the raw
request API; its methods are generators meant for ``yield from``, with
naming that follows the mpi4py conventions of the session's HPC guides
(capitalized methods move buffers; ``Alltoall`` and ``Alltoallv``-like
entry points accept numpy arrays).

Example node program::

    def program(ctx):
        comm = Communicator(ctx)
        rank = comm.Get_rank()
        recv = yield from comm.Alltoall(send_rows, partition=(2, 1))
        yield from comm.Barrier()
        return recv
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

import numpy as np

from repro.core.blocks import BlockBuffer
from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, multiphase_schedule
from repro.plan.decision import algorithm_name
from repro.sim.node import NodeContext
from repro.sim.trace import PlanRecord
from repro.util.validation import check_partition

__all__ = ["Communicator"]


class Communicator:
    """Rank-level communication API bound to one simulated node."""

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # identity (mpi4py naming)
    # ------------------------------------------------------------------
    def Get_rank(self) -> int:
        return self.ctx.rank

    def Get_size(self) -> int:
        return self.ctx.n

    @property
    def dimension(self) -> int:
        return self.ctx.d

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def Send(self, buf: Any, dest: int, *, nbytes: int | None = None,
             tag: int = 0, forced: bool = True) -> Generator:
        """Blocking send.  ``nbytes`` defaults to ``buf.nbytes`` for
        array-likes."""
        size = int(nbytes if nbytes is not None else getattr(buf, "nbytes", 0))
        yield self.ctx.send(dest, buf, size, tag=tag, forced=forced)

    def Recv(self, source: int | None = None, *, tag: int = 0) -> Generator:
        """Blocking receive; returns the payload."""
        payload = yield self.ctx.recv(source, tag=tag)
        return payload

    def Post_recv(self, source: int | None = None, *, tag: int = 0) -> Generator:
        """Post a receive without blocking (FORCED discipline, §7.3)."""
        yield self.ctx.post_recv(source, tag=tag)

    def Sendrecv(self, buf: Any, partner: int, *, nbytes: int | None = None,
                 tag: int = 0) -> Generator:
        """Pairwise synchronized exchange; returns the partner's payload."""
        size = int(nbytes if nbytes is not None else getattr(buf, "nbytes", 0))
        payload = yield self.ctx.exchange(partner, buf, size, tag=tag)
        return payload

    def Barrier(self) -> Generator:
        yield self.ctx.barrier()

    # ------------------------------------------------------------------
    # collective: the paper's complete exchange
    # ------------------------------------------------------------------
    def Alltoall(
        self,
        send_rows: np.ndarray,
        *,
        partition: Sequence[int] | None = None,
        planner: Any | None = None,
        algorithm: str | None = None,
        tag_base: int = 1 << 20,
    ) -> Generator:
        """Complete exchange of ``send_rows`` (``(n, m)`` uint8, row
        ``j`` bound for rank ``j``).

        Returns the ``(n, m)`` receive array ordered by origin.  The
        algorithm is selected one of three ways, in precedence order:

        * ``planner`` — a shared :class:`repro.plan.CollectivePlanner`
          (any object with ``decide(d, m)``) chooses standard vs.
          multiphase vs. naive per ``(d, m)`` at call time; the
          decision is recorded in the simulator trace (once, by rank
          0), and the planner's per-run cache guarantees all ranks
          execute the same schedule;
        * ``algorithm="naive"`` — the rotation-order baseline schedule,
          exposed here so baseline runs need not bypass the comm layer;
        * ``partition`` — an explicit multiphase partition (defaults to
          the single-phase Optimal Circuit-Switched algorithm).

        All ranks must agree on the selection inputs.
        """
        ctx = self.ctx
        d, n = ctx.d, ctx.n
        rows = np.ascontiguousarray(send_rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[0] != n:
            raise ValueError(f"rank {ctx.rank}: expected ({n}, m) send rows, got {rows.shape}")
        m = rows.shape[1]
        if planner is not None:
            if partition is not None or algorithm is not None:
                raise ValueError(
                    "pass either a planner or an explicit partition/algorithm, not both"
                )
            decision = planner.decide(d, m)
            if ctx.rank == 0:
                ctx.machine.trace.record_plan(
                    PlanRecord.from_decision(decision, t_decided=ctx.now)
                )
            algorithm = decision.algorithm
            partition = decision.partition
        if algorithm == "naive":
            if partition is not None:
                raise ValueError("the naive baseline has no partition")
            result = yield from self._naive_alltoall(rows, tag_base=tag_base)
            return result
        if algorithm is not None:
            # a named algorithm determines (or constrains) the partition
            if algorithm == "standard":
                partition = (1,) * d if partition is None else partition
            elif algorithm == "single-phase":
                partition = (d,) if partition is None else partition
            elif algorithm == "multiphase":
                if partition is None:
                    raise ValueError(
                        "algorithm='multiphase' needs an explicit partition "
                        "(or use a planner to choose one)"
                    )
            else:
                raise ValueError(f"unknown algorithm {algorithm!r} for Alltoall")
            if algorithm_name(tuple(partition)) != algorithm:
                raise ValueError(
                    f"partition {tuple(partition)} realizes "
                    f"{algorithm_name(tuple(partition))!r}, not {algorithm!r}"
                )
        parts = check_partition(partition if partition is not None else (d,), d)
        buf = BlockBuffer.from_rows(ctx.rank, d, rows)
        total_bytes = m * n
        steps = multiphase_schedule(d, parts)
        for index, step in enumerate(steps):
            if isinstance(step, PhaseStart):
                yield ctx.mark_phase(step.phase_index)
                yield ctx.barrier()
            elif isinstance(step, ExchangeStep):
                partner = step.partner(ctx.rank)
                partner_coord = (partner >> step.group.lo) & ((1 << step.group.width) - 1)
                outgoing = buf.extract_for_coordinate(step.group, partner_coord)
                received = yield ctx.exchange(
                    partner, outgoing, nbytes=outgoing.nbytes, tag=tag_base + index
                )
                buf.insert(received)
            elif isinstance(step, ShuffleStep):
                yield ctx.shuffle(total_bytes)
        return buf.result_rows()

    def _naive_alltoall(self, rows: np.ndarray, *, tag_base: int) -> Generator:
        """Rotation-order exchange of user rows — the contended §2
        baseline, reachable as a policy target.  One shared schedule
        implementation: :func:`repro.comm.program.naive_program`."""
        from repro.comm.program import naive_program

        buf = yield from naive_program(self.ctx, rows=rows, tag_base=tag_base)
        return buf.result_rows()
