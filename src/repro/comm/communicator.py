"""mpi4py-flavoured communicator over the simulated machine.

Node programs can code against :class:`Communicator` instead of the raw
request API; its methods are generators meant for ``yield from``, with
naming that follows the mpi4py conventions of the session's HPC guides
(capitalized methods move buffers; ``Alltoall`` and ``Alltoallv``-like
entry points accept numpy arrays).

Example node program::

    def program(ctx):
        comm = Communicator(ctx)
        rank = comm.Get_rank()
        recv = yield from comm.Alltoall(send_rows, partition=(2, 1))
        yield from comm.Barrier()
        return recv
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

import numpy as np

from repro.core.blocks import BlockBuffer
from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, multiphase_schedule
from repro.sim.node import NodeContext
from repro.util.validation import check_partition

__all__ = ["Communicator"]


class Communicator:
    """Rank-level communication API bound to one simulated node."""

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # identity (mpi4py naming)
    # ------------------------------------------------------------------
    def Get_rank(self) -> int:
        return self.ctx.rank

    def Get_size(self) -> int:
        return self.ctx.n

    @property
    def dimension(self) -> int:
        return self.ctx.d

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def Send(self, buf: Any, dest: int, *, nbytes: int | None = None,
             tag: int = 0, forced: bool = True) -> Generator:
        """Blocking send.  ``nbytes`` defaults to ``buf.nbytes`` for
        array-likes."""
        size = int(nbytes if nbytes is not None else getattr(buf, "nbytes", 0))
        yield self.ctx.send(dest, buf, size, tag=tag, forced=forced)

    def Recv(self, source: int | None = None, *, tag: int = 0) -> Generator:
        """Blocking receive; returns the payload."""
        payload = yield self.ctx.recv(source, tag=tag)
        return payload

    def Post_recv(self, source: int | None = None, *, tag: int = 0) -> Generator:
        """Post a receive without blocking (FORCED discipline, §7.3)."""
        yield self.ctx.post_recv(source, tag=tag)

    def Sendrecv(self, buf: Any, partner: int, *, nbytes: int | None = None,
                 tag: int = 0) -> Generator:
        """Pairwise synchronized exchange; returns the partner's payload."""
        size = int(nbytes if nbytes is not None else getattr(buf, "nbytes", 0))
        payload = yield self.ctx.exchange(partner, buf, size, tag=tag)
        return payload

    def Barrier(self) -> Generator:
        yield self.ctx.barrier()

    # ------------------------------------------------------------------
    # collective: the paper's complete exchange
    # ------------------------------------------------------------------
    def Alltoall(
        self,
        send_rows: np.ndarray,
        *,
        partition: Sequence[int] | None = None,
        tag_base: int = 1 << 20,
    ) -> Generator:
        """Complete exchange of ``send_rows`` (``(n, m)`` uint8, row
        ``j`` bound for rank ``j``) using the multiphase algorithm.

        Returns the ``(n, m)`` receive array ordered by origin.  All
        ranks must call with the same ``partition`` (defaults to the
        single-phase Optimal Circuit-Switched algorithm).
        """
        ctx = self.ctx
        d, n = ctx.d, ctx.n
        parts = check_partition(partition if partition is not None else (d,), d)
        rows = np.ascontiguousarray(send_rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[0] != n:
            raise ValueError(f"rank {ctx.rank}: expected ({n}, m) send rows, got {rows.shape}")
        m = rows.shape[1]
        buf = BlockBuffer.from_rows(ctx.rank, d, rows)
        total_bytes = m * n
        steps = multiphase_schedule(d, parts)
        for index, step in enumerate(steps):
            if isinstance(step, PhaseStart):
                yield ctx.mark_phase(step.phase_index)
                yield ctx.barrier()
            elif isinstance(step, ExchangeStep):
                partner = step.partner(ctx.rank)
                partner_coord = (partner >> step.group.lo) & ((1 << step.group.width) - 1)
                outgoing = buf.extract_for_coordinate(step.group, partner_coord)
                received = yield ctx.exchange(
                    partner, outgoing, nbytes=outgoing.nbytes, tag=tag_base + index
                )
                buf.insert(received)
            elif isinstance(step, ShuffleStep):
                yield ctx.shuffle(total_bytes)
        return buf.result_rows()
