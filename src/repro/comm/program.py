"""Replay of exchange schedules on the simulated machine.

Bridges the compiled step lists of :mod:`repro.core.schedule` to the
discrete-event machine: every node runs the same step list, performing
real block movement (either data engine) while the simulator charges
wire, shuffle, and synchronization time.  The result is simultaneously
a *measurement* (virtual µs) and a byte-verified exchange.

Implementation notes mirroring paper §7:

* each phase begins with a global synchronization (the paper posts all
  FORCED receives then synchronizes; our exchange primitive folds the
  receive posting into the §7.2 pairwise rendezvous, and the barrier
  cost γ·d is charged per phase exactly as eq. (3) does);
* each pairwise exchange is charged the effective constants
  λ_eff/δ_eff of §7.4 (zero-byte synchronization included);
* shuffles perform the actual numpy permutation *and* charge ρ per
  byte of the full buffer.

The step streams these SPMD programs execute also exist declaratively:
:func:`repro.core.programs.exchange_steps` /
:func:`repro.core.programs.naive_rotation_steps` mirror
``exchange_program`` / ``naive_program`` as
:class:`~repro.core.programs.CommProgram` chains, which
:func:`repro.sim.fastpath.compile_program` prices in one numpy pass at
float equality with the runs here — the default path everywhere; the
event-engine replay below is the byte-verifying oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

from repro.core.blocks import BlockBuffer
from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, Step, multiphase_schedule
from repro.core.shuffle import LayoutBuffer
from repro.model.params import MachineParams
from repro.sim.machine import RunResult, SimulatedHypercube
from repro.sim.node import NodeContext
from repro.sim.trace import PlanRecord, Trace
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "SimulatedExchange",
    "exchange_program",
    "naive_program",
    "simulate_exchange",
    "simulate_naive_exchange",
    "simulate_planned_exchange",
]


def _check_fault_plan_engine(fault_plan, fast: bool) -> None:
    """The lockstep fast path models the uniform machine only; pricing
    a degraded machine there would silently ignore the plan."""
    if fast and fault_plan is not None and not fault_plan.is_empty:
        raise ValueError(
            "fault plans require the event engine: pass fast=False "
            "(the fast path assumes a uniform, failure-free machine)"
        )


def exchange_program(
    ctx: NodeContext,
    *,
    steps: Sequence[Step],
    m: int,
    engine: str = "tags",
) -> Generator:
    """SPMD node program executing a compiled exchange schedule.

    Returns the node's final buffer (verified by the caller).
    """
    if engine == "tags":
        buf: BlockBuffer | LayoutBuffer = BlockBuffer.initial(ctx.rank, ctx.d, m)
    elif engine == "layout":
        buf = LayoutBuffer(ctx.rank, ctx.d, m)
    else:
        raise ValueError(f"unknown engine {engine!r}; expected 'tags' or 'layout'")
    total_bytes = m * ctx.n

    for index, step in enumerate(steps):
        if isinstance(step, PhaseStart):
            yield ctx.mark_phase(step.phase_index)
            yield ctx.barrier()
        elif isinstance(step, ExchangeStep):
            partner = step.partner(ctx.rank)
            partner_coord = (partner >> step.group.lo) & ((1 << step.group.width) - 1)
            if isinstance(buf, BlockBuffer):
                outgoing = buf.extract_for_coordinate(step.group, partner_coord)
                received = yield ctx.exchange(
                    partner, outgoing, nbytes=outgoing.nbytes, tag=index
                )
                buf.insert(received)
            else:
                outgoing = buf.take_run(step.group, partner_coord)
                received = yield ctx.exchange(
                    partner, outgoing, nbytes=outgoing[2].size, tag=index
                )
                buf.put_run(step.group, partner_coord, *received)
        elif isinstance(step, ShuffleStep):
            if isinstance(buf, LayoutBuffer):
                buf.shuffle(step.times)
            yield ctx.shuffle(total_bytes)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step type {type(step).__name__}")
    return buf


@dataclass
class SimulatedExchange:
    """A measured, verified complete exchange on the simulated machine."""

    d: int
    m: int
    partition: tuple[int, ...]
    params_name: str
    #: virtual completion time in µs — the 'measured' value of the
    #: paper's solid curves
    time_us: float
    trace: Trace
    #: the event-engine run, or ``None`` for a fast-path timing (no
    #: processes were booted, no data moved)
    run: RunResult | None
    #: the planner decision behind this run, when a planner chose the
    #: algorithm (``None`` for directly requested partitions)
    decision: Any = None
    #: the fast path's per-step :class:`~repro.sim.fastpath.ScheduleTimeline`
    #: (``None`` on event-engine runs and naive fast-path timings)
    timeline: Any = None

    @property
    def time_s(self) -> float:
        return self.time_us * 1e-6

    def verify(self, *, check_payload: bool = True) -> None:
        """Byte-verify every node's final buffer."""
        if self.run is None:
            raise ValueError(
                "fast-path timings move no data, so there is nothing to "
                "byte-verify; rerun with fast=False for a verified exchange"
            )
        for buf in self.run.node_results:
            if isinstance(buf, LayoutBuffer):
                buf.verify_final(check_payload=check_payload)
            else:
                buf.verify_complete_exchange_result(check_payload=check_payload)


def simulate_exchange(
    d: int,
    m: int,
    partition: Sequence[int] | None,
    params: MachineParams,
    *,
    engine: str = "tags",
    verify: bool = True,
    fast: bool = False,
    fault_plan=None,
) -> SimulatedExchange:
    """Run one complete exchange on a fresh simulated machine.

    This is the library's "measured" data point: the virtual time the
    calibrated machine needs for the given partition and block size.

    With ``fast=True`` the timing comes from the vectorized lockstep
    engine (:mod:`repro.sim.fastpath`) instead of booting coroutine
    processes — float-identical for these contention-free schedules,
    orders of magnitude cheaper, but no data moves (``verify`` is
    ignored; there are no buffers to check).

    A ``fault_plan`` (:class:`repro.sim.faults.FaultPlan`) degrades the
    machine; only the event engine understands one — the lockstep fast
    path assumes the uniform machine, so ``fast=True`` with a non-empty
    plan raises.

    >>> from repro.model.params import ipsc860
    >>> result = simulate_exchange(3, 16, (2, 1), ipsc860())
    >>> result.time_us > 0
    True
    >>> simulate_exchange(3, 16, (2, 1), ipsc860(), fast=True).time_us == result.time_us
    True
    """
    check_dimension(d, minimum=1)
    parts = check_partition(partition if partition is not None else (d,), d)
    _check_fault_plan_engine(fault_plan, fast)
    if fast:
        from repro.sim.fastpath import exchange_timeline

        timeline = exchange_timeline(d, m, parts, params)
        return SimulatedExchange(
            d=d,
            m=m,
            partition=parts,
            params_name=params.name,
            time_us=timeline.total,
            trace=Trace(),
            run=None,
            timeline=timeline,
        )
    steps = multiphase_schedule(d, parts)
    machine = SimulatedHypercube(d, params, fault_plan=fault_plan)
    run = machine.run(exchange_program, steps=steps, m=m, engine=engine)
    result = SimulatedExchange(
        d=d,
        m=m,
        partition=parts,
        params_name=params.name,
        time_us=run.time,
        trace=run.trace,
        run=run,
    )
    if verify:
        result.verify()
    return result


def simulate_planned_exchange(
    d: int,
    m: int,
    planner,
    params: MachineParams,
    *,
    engine: str = "tags",
    verify: bool = True,
    fast: bool = False,
    fault_plan=None,
) -> SimulatedExchange:
    """Run one complete exchange with the algorithm chosen by a planner.

    ``planner`` is any object with ``decide(d, m) -> PlanDecision``
    (normally :class:`repro.plan.CollectivePlanner`).  The decision —
    standard, multiphase, single-phase, or the naive rotation baseline
    — is recorded in the run's trace (``trace.plan_decisions``) and
    attached to the result, so a measured time can always be traced
    back to why that algorithm ran.

    With ``fast=True`` the decision is priced by the fast-path engine
    instead of being replayed on the event machine: float-identical on
    contention-free schedules, reservation-replay pricing for the
    naive baseline, no data movement (``verify`` is ignored).  The
    plan record still lands in the result's trace.

    >>> from repro.model.params import ipsc860
    >>> from repro.plan import CollectivePlanner, ModelPolicy
    >>> planner = CollectivePlanner(ModelPolicy(ipsc860()))
    >>> result = simulate_planned_exchange(3, 16, planner, ipsc860())
    >>> result.decision.partition == result.partition
    True
    >>> len(result.trace.plan_decisions)
    1
    """
    check_dimension(d, minimum=1)
    _check_fault_plan_engine(fault_plan, fast)
    decision = planner.decide(d, m)
    if fast:
        from repro.sim.fastpath import exchange_timeline, naive_exchange_time

        trace = Trace()
        trace.record_plan(PlanRecord.from_decision(decision))
        timeline = None
        if decision.algorithm == "naive":
            partition: tuple[int, ...] = ()
            time_us = naive_exchange_time(d, m, params)
        else:
            partition = check_partition(decision.partition, d)
            timeline = exchange_timeline(d, m, partition, params)
            time_us = timeline.total
        return SimulatedExchange(
            d=d,
            m=m,
            partition=partition,
            params_name=params.name,
            time_us=time_us,
            trace=trace,
            run=None,
            decision=decision,
            timeline=timeline,
        )
    machine = SimulatedHypercube(d, params, fault_plan=fault_plan)
    machine.trace.record_plan(PlanRecord.from_decision(decision))
    if decision.algorithm == "naive":
        run = machine.run(naive_program, m=m)
        partition: tuple[int, ...] = ()
    else:
        partition = check_partition(decision.partition, d)
        steps = multiphase_schedule(d, partition)
        run = machine.run(exchange_program, steps=steps, m=m, engine=engine)
    result = SimulatedExchange(
        d=d,
        m=m,
        partition=partition,
        params_name=params.name,
        time_us=run.time,
        trace=run.trace,
        run=run,
        decision=decision,
    )
    if verify:
        result.verify()
    return result


# ----------------------------------------------------------------------
# negative control: a naive, contention-oblivious schedule
# ----------------------------------------------------------------------
def naive_program(
    ctx: NodeContext,
    *,
    m: int | None = None,
    rows=None,
    tag_base: int = 0,
) -> Generator:
    """Rotation-order all-to-all that ignores the machine's idiosyncrasies.

    Step ``s`` sends this node's block to ``(rank + s) mod n`` — the
    textbook schedule for a crossbar.  Each rotation step is in fact
    statically link-clean under e-cube, but without pairwise
    synchronization the nearly-simultaneous send/receive traffic at
    each node serializes (§7.2), nodes drift out of step, and circuits
    from *different* steps start overlapping on links.  The measured
    result is the §2 warning in action: circuit switching does not let
    programmers ignore the network.

    Correct (byte-verified) but slow; compare against the XOR schedule
    at identical message count and volume.  Pass ``m`` for pattern
    payloads, or ``rows`` (``(n, m)`` uint8, row ``j`` bound for rank
    ``j``) to exchange user data — this is the one implementation of
    the naive schedule, shared by ``simulate_naive_exchange`` and
    ``Communicator.Alltoall(algorithm="naive")``.
    """
    if (m is None) == (rows is None):
        raise ValueError("pass exactly one of m (pattern payload) or rows (user data)")
    if rows is not None:
        buf = BlockBuffer.from_rows(ctx.rank, ctx.d, rows)
    else:
        buf = BlockBuffer.initial(ctx.rank, ctx.d, m)
    n = ctx.n
    # FORCED discipline: post every receive, then synchronize (§7.3).
    for s in range(1, n):
        src = (ctx.rank - s) % n
        yield ctx.post_recv(src, tag=tag_base + s)
    yield ctx.barrier()
    from repro.hypercube.subcube import BitGroup

    whole = BitGroup(lo=0, width=ctx.d)
    for s in range(1, n):
        dst = (ctx.rank + s) % n
        outgoing = buf.extract_for_coordinate(whole, dst)
        yield ctx.send(dst, outgoing, outgoing.nbytes, tag=tag_base + s, forced=True)
    for s in range(1, n):
        src = (ctx.rank - s) % n
        received = yield ctx.recv(src, tag=tag_base + s)
        buf.insert(received)
    return buf


def simulate_naive_exchange(
    d: int,
    m: int,
    params: MachineParams,
    *,
    verify: bool = True,
    fast: bool = False,
) -> SimulatedExchange:
    """Measure the naive rotation schedule (contended baseline).

    With ``fast=True`` the contended timing comes from the fast path's
    reservation replay (:func:`repro.sim.fastpath.naive_exchange_time`)
    — same greedy link/port serialization, no coroutines, no data
    movement (``verify`` is ignored).
    """
    check_dimension(d, minimum=1)
    if fast:
        from repro.sim.fastpath import naive_exchange_time

        return SimulatedExchange(
            d=d,
            m=m,
            partition=(),
            params_name=params.name,
            time_us=naive_exchange_time(d, m, params),
            trace=Trace(),
            run=None,
        )
    machine = SimulatedHypercube(d, params)
    run = machine.run(naive_program, m=m)
    result = SimulatedExchange(
        d=d,
        m=m,
        partition=(),
        params_name=params.name,
        time_us=run.time,
        trace=run.trace,
        run=run,
    )
    if verify:
        result.verify()
    return result
