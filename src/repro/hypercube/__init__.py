"""Hypercube topology substrate.

Models the binary ``d``-cube interconnect of the Intel iPSC-860 class
machines the paper targets: node labelling, links, e-cube (dimension
ordered) routing, subcube decompositions, and static contention
analysis of sets of simultaneously-held circuits.
"""

from repro.hypercube.contention import (
    ContentionReport,
    ScheduleConflicts,
    StepConflicts,
    analyze_contention,
    count_edge_conflicts,
    is_edge_contention_free,
)
from repro.hypercube.routing import (
    ecube_hops,
    ecube_next_hop,
    ecube_path,
    ecube_path_edges,
    path_dimensions,
)
from repro.hypercube.subcube import Subcube, phase_bit_groups, subcube_of, subcubes_for_bits
from repro.hypercube.topology import Hypercube, Link

__all__ = [
    "ContentionReport",
    "Hypercube",
    "Link",
    "ScheduleConflicts",
    "StepConflicts",
    "Subcube",
    "analyze_contention",
    "count_edge_conflicts",
    "ecube_hops",
    "ecube_next_hop",
    "ecube_path",
    "ecube_path_edges",
    "is_edge_contention_free",
    "path_dimensions",
    "phase_bit_groups",
    "subcube_of",
    "subcubes_for_bits",
]
