"""Static contention analysis for sets of simultaneous circuits.

Paper §2: with fixed e-cube routing, two circuits held at the same time
may share a link (*edge contention*) or an intermediate processor
(*node contention*).  Measurements on the iPSC-860 showed edge
contention is "disastrous" for performance while node contention is
free.  Every schedule used by the exchange algorithms must therefore be
edge-contention-free; this module provides the checker the tests and
the schedule validators use, plus diagnostics for schedules that are
*not* clean (e.g. naive all-to-all bursts, used as a negative baseline
in the benchmarks).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.hypercube.routing import ecube_path, ecube_path_edges
from repro.hypercube.topology import Link

__all__ = [
    "ContentionReport",
    "ScheduleConflicts",
    "StepConflicts",
    "analyze_contention",
    "count_edge_conflicts",
    "is_edge_contention_free",
]


@dataclass(frozen=True)
class ContentionReport:
    """Result of analysing one communication step (a set of circuits).

    Attributes
    ----------
    n_circuits:
        Number of (src, dst) circuits analysed.
    edge_conflicts:
        Mapping from directed link to the number of circuits holding
        it, restricted to links held by two or more circuits.
    node_conflicts:
        Mapping from intermediate node label to the number of circuits
        routed *through* it (endpoints excluded), restricted to nodes
        shared by two or more circuits.  Harmless on the iPSC-860 but
        reported for completeness.
    max_edge_load:
        Largest number of circuits sharing any directed link (1 for a
        clean step, 0 when there are no circuits).
    """

    n_circuits: int
    edge_conflicts: dict[Link, int] = field(default_factory=dict)
    node_conflicts: dict[int, int] = field(default_factory=dict)
    max_edge_load: int = 0

    @property
    def edge_contention_free(self) -> bool:
        """True iff no directed link is shared by two circuits."""
        return not self.edge_conflicts

    @property
    def node_contention_free(self) -> bool:
        """True iff no intermediate node is shared by two circuits."""
        return not self.node_conflicts

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.n_circuits} circuits: "
            f"{len(self.edge_conflicts)} contended links (max load {self.max_edge_load}), "
            f"{len(self.node_conflicts)} shared intermediate nodes"
        )


def analyze_contention(circuits: Iterable[tuple[int, int]]) -> ContentionReport:
    """Analyse a set of circuits held simultaneously.

    Parameters
    ----------
    circuits:
        ``(src, dst)`` pairs, each routed by e-cube.  Pairs with
        ``src == dst`` are ignored (no circuit is established).
    """
    edge_load: Counter[Link] = Counter()
    node_load: Counter[int] = Counter()
    n_circuits = 0
    for src, dst in circuits:
        if src == dst:
            continue
        n_circuits += 1
        for edge in ecube_path_edges(src, dst):
            edge_load[edge] += 1
        for node in ecube_path(src, dst)[1:-1]:
            node_load[node] += 1
    edge_conflicts = {edge: load for edge, load in edge_load.items() if load > 1}
    node_conflicts = {node: load for node, load in node_load.items() if load > 1}
    max_edge_load = max(edge_load.values(), default=0)
    return ContentionReport(
        n_circuits=n_circuits,
        edge_conflicts=edge_conflicts,
        node_conflicts=node_conflicts,
        max_edge_load=max_edge_load,
    )


def is_edge_contention_free(circuits: Iterable[tuple[int, int]]) -> bool:
    """True iff no two circuits in the set share a directed link."""
    return analyze_contention(circuits).edge_contention_free


@dataclass(frozen=True)
class StepConflicts:
    """Edge conflicts of one schedule step, with provenance.

    ``edge_conflicts`` maps each over-subscribed directed link to its
    load (only links held by two or more circuits appear).
    """

    step_index: int
    edge_conflicts: dict[Link, int]

    @property
    def n_conflict_links(self) -> int:
        return len(self.edge_conflicts)


@dataclass(frozen=True)
class ScheduleConflicts:
    """Per-step edge-conflict detail of a multi-step schedule.

    ``steps`` holds one :class:`StepConflicts` per *conflicted* step
    (clean steps are omitted); ``n_steps`` counts every step analysed.
    ``total`` — the number of over-subscribed links summed over steps —
    is what :func:`count_edge_conflicts` used to return as a bare int.
    """

    n_steps: int
    steps: tuple[StepConflicts, ...]

    @property
    def total(self) -> int:
        """Over-subscribed links summed across all steps."""
        return sum(step.n_conflict_links for step in self.steps)

    @property
    def clean(self) -> bool:
        """True iff no step has any shared link."""
        return not self.steps

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.n_steps} steps: {len(self.steps)} contended "
            f"({self.total} over-subscribed links)"
        )


def count_edge_conflicts(steps: Sequence[Iterable[tuple[int, int]]]) -> ScheduleConflicts:
    """Per-step edge-conflict detail across a multi-step schedule.

    Each element of ``steps`` is the set of circuits held during one
    step; steps are assumed separated by synchronization, so only
    intra-step sharing counts.  Returns a :class:`ScheduleConflicts`
    whose ``total`` is the old bare-sum value and whose ``steps`` name
    the offending step indices and links — the provenance the static
    verifier (:mod:`repro.check.schedule`) reports counterexamples from.
    """
    conflicted = tuple(
        StepConflicts(step_index=index, edge_conflicts=report.edge_conflicts)
        for index, step in enumerate(steps)
        if (report := analyze_contention(step)).edge_conflicts
    )
    return ScheduleConflicts(n_steps=len(steps), steps=conflicted)
