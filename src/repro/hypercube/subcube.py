"""Subcube decompositions for multiphase partial exchanges.

Phase ``i`` of the multiphase algorithm (paper §5.2) operates
simultaneously on all subcubes spanned by a contiguous group of ``d_i``
label bits: two nodes are in the same subcube iff their labels agree on
every bit *outside* the group.  This module names those bit groups and
subcubes and provides the coordinate arithmetic the algorithms and
schedules use.

The paper processes bit groups from the most significant end: for
partition ``D = (d1, ..., dk)`` on a ``d``-cube, phase 1 uses bits
``d-1 .. d-d1``, phase 2 the next ``d2`` bits down, and so on
(procedure ``Multiphase``, §5.2, with ``start``/``stop`` bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.util.bitops import bit_field
from repro.util.validation import check_node, check_partition

__all__ = ["Subcube", "phase_bit_groups", "subcube_of", "subcubes_for_bits"]


@dataclass(frozen=True)
class BitGroup:
    """A contiguous group of label bits ``[lo, lo + width)``.

    ``lo`` is the paper's ``stop`` and ``lo + width - 1`` its ``start``.
    """

    lo: int
    width: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.width <= 0:
            raise ValueError(f"invalid bit group lo={self.lo}, width={self.width}")

    @property
    def hi(self) -> int:
        """Index of the group's most significant bit (inclusive)."""
        return self.lo + self.width - 1

    @property
    def mask(self) -> int:
        """Label mask selecting the group's bits."""
        return ((1 << self.width) - 1) << self.lo

    def coordinate(self, node: int) -> int:
        """The node's position within its subcube (the group bits)."""
        return bit_field(node, self.lo, self.width)

    def base(self, node: int) -> int:
        """The node's label with the group bits cleared.

        Nodes sharing a base belong to the same subcube of this group.
        """
        return node & ~self.mask

    def member(self, base: int, coordinate: int) -> int:
        """Label of the subcube member at ``coordinate`` above ``base``."""
        if base & self.mask:
            raise ValueError(f"base {base} has bits set inside the group {self}")
        if not 0 <= coordinate < (1 << self.width):
            raise ValueError(f"coordinate {coordinate} out of range for width {self.width}")
        return base | (coordinate << self.lo)


@dataclass(frozen=True)
class Subcube:
    """One subcube of a decomposition: a bit group plus a fixed base."""

    group: BitGroup
    base: int

    @property
    def dimension(self) -> int:
        """Dimension of the subcube (the group width)."""
        return self.group.width

    @property
    def n_nodes(self) -> int:
        return 1 << self.group.width

    def nodes(self) -> Iterator[int]:
        """Members of the subcube in coordinate order."""
        for c in range(self.n_nodes):
            yield self.group.member(self.base, c)

    def contains(self, node: int) -> bool:
        return self.group.base(node) == self.base

    def coordinate(self, node: int) -> int:
        """Coordinate of ``node`` within this subcube."""
        if not self.contains(node):
            raise ValueError(f"node {node} is not in subcube base={self.base}, group={self.group}")
        return self.group.coordinate(node)


def phase_bit_groups(partition: Sequence[int], d: int) -> list[BitGroup]:
    """Bit groups for each phase of a multiphase partition.

    Follows the paper's MSB-first convention: the first part claims the
    top ``d1`` bits, the next part the ``d2`` bits below, etc.

    >>> [(g.lo, g.width) for g in phase_bit_groups((2, 1), 3)]
    [(1, 2), (0, 1)]
    """
    parts = check_partition(partition, d)
    groups: list[BitGroup] = []
    start = d - 1
    for di in parts:
        stop = start - di + 1
        groups.append(BitGroup(lo=stop, width=di))
        start = stop - 1
    return groups


def subcube_of(node: int, group: BitGroup, d: int) -> Subcube:
    """The subcube containing ``node`` for the given bit group."""
    check_node(node, d)
    return Subcube(group=group, base=group.base(node))


def subcubes_for_bits(group: BitGroup, d: int) -> Iterator[Subcube]:
    """All disjoint subcubes induced by a bit group on a ``d``-cube.

    There are ``2**(d - width)`` of them; together they partition the
    node set.
    """
    if group.hi >= d:
        raise ValueError(f"bit group {group} does not fit in a {d}-cube")
    outside_bits = [j for j in range(d) if not (group.lo <= j <= group.hi)]
    for packed in range(1 << len(outside_bits)):
        base = 0
        for idx, j in enumerate(outside_bits):
            if (packed >> idx) & 1:
                base |= 1 << j
        yield Subcube(group=group, base=base)
