"""Binary hypercube topology.

A *d*-dimensional hypercube connects ``n = 2**d`` processors; two
processors are adjacent iff their binary labels differ in exactly one
bit (paper §2, Figure 1).  This module provides the static structure:
labels, neighbours, links, distances, and iteration helpers used by the
routing, scheduling, and simulation layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.bitops import flip_bit, popcount
from repro.util.validation import check_dimension, check_node

__all__ = ["Hypercube", "Link"]


@dataclass(frozen=True, order=True)
class Link:
    """A directed communication link ``u -> v`` between neighbours.

    Circuit-switched links are full-duplex on the iPSC-860: traffic
    ``u -> v`` does not contend with ``v -> u``.  Contention analysis
    therefore works on *directed* links, and the simulator allocates
    each direction independently.
    """

    src: int
    dst: int

    def __post_init__(self) -> None:
        if popcount(self.src ^ self.dst) != 1:
            raise ValueError(f"link endpoints {self.src} and {self.dst} are not cube neighbours")

    @property
    def dimension(self) -> int:
        """The cube dimension this link crosses."""
        return (self.src ^ self.dst).bit_length() - 1

    @property
    def reverse(self) -> "Link":
        """The same physical channel in the opposite direction."""
        return Link(self.dst, self.src)

    @property
    def undirected(self) -> tuple[int, int]:
        """Canonical (min, max) endpoint pair naming the physical wire."""
        return (min(self.src, self.dst), max(self.src, self.dst))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}"


class Hypercube:
    """Static structure of a ``d``-dimensional binary hypercube.

    Parameters
    ----------
    dimension:
        The cube dimension ``d``; the machine has ``2**d`` nodes
        labelled ``0 .. 2**d - 1``.

    Examples
    --------
    >>> cube = Hypercube(3)
    >>> cube.n_nodes
    8
    >>> sorted(cube.neighbors(0))
    [1, 2, 4]
    >>> cube.distance(0b000, 0b101)
    2
    """

    def __init__(self, dimension: int) -> None:
        self._d = check_dimension(dimension)

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """The cube dimension ``d``."""
        return self._d

    @property
    def n_nodes(self) -> int:
        """Number of processors, ``n = 2**d``."""
        return 1 << self._d

    @property
    def n_links(self) -> int:
        """Number of directed links, ``d * 2**d`` (each node has ``d``
        outgoing links)."""
        return self._d << self._d

    def nodes(self) -> range:
        """All node labels in increasing order."""
        return range(self.n_nodes)

    def contains(self, node: int) -> bool:
        """True iff ``node`` is a valid label for this cube."""
        return isinstance(node, int) and 0 <= node < self.n_nodes

    def validate_node(self, node: int) -> int:
        """Check a node label, raising with context on failure."""
        return check_node(node, self._d)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def neighbor(self, node: int, dim: int) -> int:
        """The neighbour of ``node`` across dimension ``dim``."""
        self.validate_node(node)
        if not 0 <= dim < self._d:
            raise ValueError(f"dimension {dim} out of range for a {self._d}-cube")
        return flip_bit(node, dim)

    def neighbors(self, node: int) -> Iterator[int]:
        """All ``d`` neighbours of ``node``."""
        self.validate_node(node)
        return (flip_bit(node, j) for j in range(self._d))

    def are_adjacent(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are connected by a link."""
        self.validate_node(a)
        self.validate_node(b)
        return popcount(a ^ b) == 1

    def links(self) -> Iterator[Link]:
        """All directed links of the cube."""
        for node in self.nodes():
            for dim in range(self._d):
                yield Link(node, flip_bit(node, dim))

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def distance(self, a: int, b: int) -> int:
        """Hop distance between ``a`` and ``b`` (Hamming distance)."""
        self.validate_node(a)
        self.validate_node(b)
        return popcount(a ^ b)

    def average_distance(self) -> float:
        """Mean distance from a node to the other ``n - 1`` nodes.

        This is the paper's ``d * 2**(d-1) / (2**d - 1)`` term in
        eq. (2): over the optimal schedule's ``2**d - 1`` steps, every
        pair is at identical distance ``popcount(step)``, and the total
        distance summed over all steps is ``d * 2**(d-1)``.
        """
        if self._d == 0:
            return 0.0
        n = self.n_nodes
        return self._d * (n // 2) / (n - 1)

    def total_pairwise_distance(self) -> int:
        """Sum of ``distance(node, node ^ i)`` over ``i = 1 .. n-1``.

        Equals ``d * 2**(d-1)``: each of the ``d`` bits is set in
        exactly half of the ``2**d`` XOR offsets.
        """
        return self._d * (self.n_nodes // 2)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self):  # pragma: no cover - convenience, exercised in tests only if networkx present
        """Export the topology as an undirected :mod:`networkx` graph."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        seen = set()
        for link in self.links():
            if link.undirected not in seen:
                seen.add(link.undirected)
                graph.add_edge(*link.undirected, dimension=link.dimension)
        return graph

    def __repr__(self) -> str:
        return f"Hypercube(dimension={self._d})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and other._d == self._d

    def __hash__(self) -> int:
        return hash(("Hypercube", self._d))
