"""e-cube (dimension-ordered) routing.

Circuit-switched hypercubes of the iPSC-860 class route every circuit
with the fixed *e-cube* strategy (paper §2): starting from the source,
repeatedly flip the **lowest-order** bit in which the current node's
label differs from the destination's.  The user has no control over the
path; the algorithms in :mod:`repro.core` are designed around the paths
this router produces.

The example of paper Figure 1 is reproduced by the tests: the path
``0 -> 31`` is ``0, 1, 3, 7, 15, 31`` and shares edge ``3-7`` with the
path ``2 -> 23``, while sharing only *node* 15 with ``14 -> 11``.
"""

from __future__ import annotations

from typing import Iterator

from repro.hypercube.topology import Link
from repro.util.bitops import lowest_set_bit, popcount

__all__ = [
    "ecube_hops",
    "ecube_next_hop",
    "ecube_path",
    "ecube_path_edges",
    "path_dimensions",
]


def ecube_next_hop(current: int, dst: int) -> int:
    """The next node on the e-cube route from ``current`` to ``dst``.

    Raises :class:`ValueError` if already at the destination.
    """
    diff = current ^ dst
    if diff == 0:
        raise ValueError(f"already at destination {dst}")
    return current ^ (1 << lowest_set_bit(diff))


def ecube_path(src: int, dst: int) -> list[int]:
    """Full node sequence of the e-cube route, inclusive of endpoints.

    The route corrects differing bits from least to most significant,
    so its length is ``popcount(src ^ dst) + 1`` nodes.

    >>> ecube_path(0, 31)
    [0, 1, 3, 7, 15, 31]
    >>> ecube_path(14, 11)
    [14, 15, 11]
    """
    if src < 0 or dst < 0:
        raise ValueError("node labels must be non-negative")
    path = [src]
    current = src
    while current != dst:
        current = ecube_next_hop(current, dst)
        path.append(current)
    return path


def ecube_path_edges(src: int, dst: int) -> list[Link]:
    """Directed links held by the circuit ``src -> dst``.

    A circuit-switched transmission holds *every* link of its path for
    the whole transfer; contention analysis and the simulator both work
    on this edge set.

    >>> [str(e) for e in ecube_path_edges(2, 23)]
    ['2->3', '3->7', '7->23']
    """
    path = ecube_path(src, dst)
    return [Link(a, b) for a, b in zip(path, path[1:])]


def ecube_hops(src: int, dst: int) -> int:
    """Number of links on the e-cube route (the cube distance)."""
    if src < 0 or dst < 0:
        raise ValueError("node labels must be non-negative")
    return popcount(src ^ dst)


def path_dimensions(src: int, dst: int) -> Iterator[int]:
    """Dimensions crossed by the route, in traversal (ascending) order.

    e-cube routing corrects bits from the least significant end, so the
    dimensions come out strictly increasing.
    """
    diff = src ^ dst
    j = 0
    while diff:
        if diff & 1:
            yield j
        diff >>= 1
        j += 1
