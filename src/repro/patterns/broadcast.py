"""One-to-all broadcast on the hypercube (paper §9, ref. [8]).

The classical binomial-tree (subcube-doubling) broadcast: in step
``j`` every node that already holds the message forwards it across
dimension ``j``, doubling the informed set; after ``d`` steps all
``2**d`` nodes hold it.  All transfers are nearest-neighbour, so the
schedule is trivially contention-free, and on a circuit-switched
machine each step costs ``λ + τ·m + δ``.

Total predicted time: ``t_bcast(m, d) = d·(λ + τ·m + δ)`` — far below
the complete-exchange bound, as §3's upper-bound argument requires
(tested in :mod:`tests.patterns.test_bounds`).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.model.params import MachineParams
from repro.sim.machine import RunResult, SimulatedHypercube
from repro.sim.node import NodeContext
from repro.util.bitops import popcount
from repro.util.validation import check_dimension, check_node

__all__ = [
    "broadcast",
    "broadcast_direct_program",
    "broadcast_direct_time",
    "broadcast_program",
    "broadcast_time",
    "simulate_broadcast",
]


def broadcast(message: np.ndarray, root: int, d: int) -> list[np.ndarray]:
    """Data-level binomial broadcast: every node's received copy.

    Executes the subcube-doubling schedule explicitly (not just a
    fan-out copy) so the tests can check the schedule, then returns the
    per-node results.

    >>> import numpy as np
    >>> out = broadcast(np.array([1, 2], dtype=np.uint8), root=3, d=2)
    >>> [o.tolist() for o in out]
    [[1, 2], [1, 2], [1, 2], [1, 2]]
    """
    check_dimension(d)
    check_node(root, d)
    n = 1 << d
    message = np.asarray(message)
    holds: list[np.ndarray | None] = [None] * n
    holds[root] = message.copy()
    for j in range(d):
        for node in range(n):
            relative = node ^ root
            if holds[node] is not None and relative < (1 << j):
                partner = node ^ (1 << j)
                holds[partner] = holds[node].copy()
    assert all(h is not None for h in holds), "binomial schedule failed to cover the cube"
    return holds  # type: ignore[return-value]


def broadcast_time(m: float, d: int, params: MachineParams) -> float:
    """Predicted binomial-broadcast time: ``d·(λ + τ·m + δ)`` plus the
    initial global synchronization (FORCED discipline, §7.3)."""
    check_dimension(d)
    return d * (params.latency + params.byte_time * m + params.hop_time) + (
        params.global_sync_time(d)
    )


def broadcast_direct_time(m: float, d: int, params: MachineParams) -> float:
    """Direct-circuit broadcast: the root sends the whole message to
    every node in turn, serialized at its port:
    ``Σ_{i=1..n-1} (λ + τ·m + δ·popcount(i))`` plus global sync.

    The binomial tree always wins on this model (``d`` startups versus
    ``2**d - 1``); keeping the loser scored makes the planner's
    selection checkable rather than assumed.
    """
    check_dimension(d)
    n = 1 << d
    startups = (n - 1) * (params.latency + params.byte_time * m)
    distance = params.hop_time * sum(popcount(i) for i in range(1, n))
    return startups + distance + params.global_sync_time(d)


def broadcast_direct_program(
    ctx: NodeContext, *, message: np.ndarray | None, root: int
) -> Generator:
    """SPMD program for the direct-circuit broadcast (FORCED
    discipline): every non-root posts one receive from the root, the
    root sends the full message to each node in turn."""
    if ctx.rank != root:
        yield ctx.post_recv(root, tag=0)
    yield ctx.barrier()
    if ctx.rank == root:
        for dst in range(ctx.n):
            if dst != root:
                yield ctx.send(dst, message, int(np.asarray(message).nbytes), tag=0)
        return message
    data = yield ctx.recv(root, tag=0)
    return data


def broadcast_program(ctx: NodeContext, *, message: np.ndarray | None, root: int) -> Generator:
    """SPMD node program for the binomial broadcast.

    Uses plain FORCED sends (one-directional traffic needs no pairwise
    synchronization) with receives posted up front, §7.3 style.
    """
    relative = ctx.rank ^ root
    data = message
    # the step in which this node is reached: position of its highest
    # relative bit (root is reached at 'step -1')
    if relative:
        arrival_step = relative.bit_length() - 1
        src = ctx.rank ^ (1 << arrival_step)
        yield ctx.post_recv(src, tag=arrival_step)
    yield ctx.barrier()
    if relative:
        data = yield ctx.recv(src, tag=arrival_step)
    start = relative.bit_length() if relative else 0
    for j in range(start, ctx.d):
        if relative < (1 << j):
            partner = ctx.rank ^ (1 << j)
            yield ctx.send(partner, data, int(np.asarray(data).nbytes), tag=j)
    return data


def simulate_broadcast(
    d: int, m: int, params: MachineParams, *, root: int = 0, algorithm: str = "binomial"
) -> tuple[float, RunResult]:
    """Measure a broadcast algorithm on the simulated machine.

    ``algorithm`` is ``"binomial"`` (subcube doubling), ``"direct"``
    (root circuits to every node), or ``"auto"`` (model-selected via
    :func:`repro.plan.plan_pattern`).  Returns
    ``(virtual_time_us, run_result)``; every node's payload is
    verified equal to the root's message.
    """
    check_dimension(d)
    check_node(root, d)
    if algorithm == "auto":
        from repro.plan.patterns import plan_pattern

        algorithm = plan_pattern("broadcast", float(m), d, params).algorithm
    programs = {"binomial": broadcast_program, "direct": broadcast_direct_program}
    if algorithm not in programs:
        raise ValueError(
            f"unknown broadcast algorithm {algorithm!r}; "
            f"expected 'binomial', 'direct', or 'auto'"
        )
    message = np.arange(m, dtype=np.int64).astype(np.uint8)
    machine = SimulatedHypercube(d, params)
    run = machine.run(programs[algorithm], message=message, root=root)

    def as_array(x):
        return np.asarray(x, dtype=np.uint8)

    for rank, got in enumerate(run.node_results):
        assert np.array_equal(as_array(got), message), f"node {rank} got a wrong copy"
    return run.time, run
