"""All-to-all broadcast — allgather (paper §9, ref. [8]).

Every node contributes one ``m``-byte block and must end with all
``2**d`` blocks.  The classical recursive-doubling algorithm: step
``j`` exchanges the accumulated ``m·2**j`` bytes with the neighbour
across dimension ``j``.  All transfers are nearest-neighbour pairwise
exchanges, so the §7.2 synchronized primitive applies and the schedule
is contention-free.

Predicted time::

    t_allgather(m, d) = Σ_{j=0..d-1} (λ_eff + τ·m·2**j + δ_eff)
                      = d·(λ_eff + δ_eff) + τ·m·(2**d - 1)  [+ γ·d]

Moving the same total volume per node as the complete exchange's
minimum but with only ``d`` startups — the structural advantage §9
hints simpler patterns can exploit.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.model.params import MachineParams
from repro.sim.machine import RunResult, SimulatedHypercube
from repro.sim.node import NodeContext
from repro.util.validation import check_dimension

__all__ = ["allgather", "allgather_program", "allgather_time", "simulate_allgather"]


def allgather(contributions: np.ndarray, d: int) -> list[np.ndarray]:
    """Data-level recursive-doubling allgather.

    ``contributions`` is an ``(2**d, m)`` array, row ``x`` being node
    ``x``'s block.  Returns each node's gathered ``(2**d, m)`` array
    ordered by origin, produced by executing the doubling schedule.

    >>> import numpy as np
    >>> out = allgather(np.array([[1], [2], [3], [4]], dtype=np.uint8), 2)
    >>> out[3].ravel().tolist()
    [1, 2, 3, 4]
    """
    check_dimension(d)
    n = 1 << d
    contributions = np.asarray(contributions)
    if contributions.shape[0] != n:
        raise ValueError(f"need {n} contributions, got {contributions.shape[0]}")
    # holdings[x]: dict origin -> block
    holdings = [{x: contributions[x].copy()} for x in range(n)]
    for j in range(d):
        snapshot = [dict(h) for h in holdings]
        for node in range(n):
            partner = node ^ (1 << j)
            holdings[node].update(snapshot[partner])
    out = []
    for node in range(n):
        assert set(holdings[node]) == set(range(n)), f"node {node} missed blocks"
        out.append(np.stack([holdings[node][o] for o in range(n)]))
    return out


def allgather_time(m: float, d: int, params: MachineParams) -> float:
    """Recursive-doubling allgather prediction (see module docstring)."""
    check_dimension(d)
    n = 1 << d
    return (
        d * (params.exchange_latency + params.exchange_hop_time)
        + params.byte_time * m * (n - 1)
        + params.global_sync_time(d)
    )


def allgather_program(ctx: NodeContext, *, contribution: np.ndarray) -> Generator:
    """SPMD program: d synchronized neighbour exchanges of doubling size."""
    yield ctx.barrier()
    mine: dict[int, np.ndarray] = {ctx.rank: np.asarray(contribution)}
    for j in range(ctx.d):
        partner = ctx.rank ^ (1 << j)
        nbytes = int(sum(np.asarray(b).nbytes for b in mine.values()))
        received = yield ctx.exchange(partner, dict(mine), nbytes=nbytes, tag=j)
        mine.update(received)
    return np.stack([mine[o] for o in range(ctx.n)])


def simulate_allgather(d: int, m: int, params: MachineParams) -> tuple[float, RunResult]:
    """Measure recursive-doubling allgather; results byte-verified."""
    check_dimension(d)
    n = 1 << d
    rng = np.random.default_rng(999)
    contributions = rng.integers(0, 256, size=(n, max(m, 0)), dtype=np.uint8)
    machine = SimulatedHypercube(d, params)

    def program(ctx):
        return allgather_program(ctx, contribution=contributions[ctx.rank])

    run = machine.run(program)
    for rank, got in enumerate(run.node_results):
        assert np.array_equal(got, contributions), f"node {rank} gathered wrong data"
    return run.time, run
