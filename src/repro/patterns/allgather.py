"""All-to-all broadcast — allgather (paper §9, ref. [8]).

Every node contributes one ``m``-byte block and must end with all
``2**d`` blocks.  The classical recursive-doubling algorithm: step
``j`` exchanges the accumulated ``m·2**j`` bytes with the neighbour
across dimension ``j``.  All transfers are nearest-neighbour pairwise
exchanges, so the §7.2 synchronized primitive applies and the schedule
is contention-free.

Predicted time::

    t_allgather(m, d) = Σ_{j=0..d-1} (λ_eff + τ·m·2**j + δ_eff)
                      = d·(λ_eff + δ_eff) + τ·m·(2**d - 1)  [+ γ·d]

Moving the same total volume per node as the complete exchange's
minimum but with only ``d`` startups — the structural advantage §9
hints simpler patterns can exploit.
"""

from __future__ import annotations

from typing import Generator, Sequence

import numpy as np

from repro.model.params import MachineParams
from repro.sim.machine import RunResult, SimulatedHypercube
from repro.sim.node import NodeContext
from repro.util.validation import check_dimension

__all__ = [
    "allgather",
    "allgather_exchange_program",
    "allgather_exchange_time",
    "allgather_program",
    "allgather_time",
    "simulate_allgather",
]


def allgather(contributions: np.ndarray, d: int) -> list[np.ndarray]:
    """Data-level recursive-doubling allgather.

    ``contributions`` is an ``(2**d, m)`` array, row ``x`` being node
    ``x``'s block.  Returns each node's gathered ``(2**d, m)`` array
    ordered by origin, produced by executing the doubling schedule.

    >>> import numpy as np
    >>> out = allgather(np.array([[1], [2], [3], [4]], dtype=np.uint8), 2)
    >>> out[3].ravel().tolist()
    [1, 2, 3, 4]
    """
    check_dimension(d)
    n = 1 << d
    contributions = np.asarray(contributions)
    if contributions.shape[0] != n:
        raise ValueError(f"need {n} contributions, got {contributions.shape[0]}")
    # holdings[x]: dict origin -> block
    holdings = [{x: contributions[x].copy()} for x in range(n)]
    for j in range(d):
        snapshot = [dict(h) for h in holdings]
        for node in range(n):
            partner = node ^ (1 << j)
            holdings[node].update(snapshot[partner])
    out = []
    for node in range(n):
        assert set(holdings[node]) == set(range(n)), f"node {node} missed blocks"
        out.append(np.stack([holdings[node][o] for o in range(n)]))
    return out


def allgather_time(m: float, d: int, params: MachineParams) -> float:
    """Recursive-doubling allgather prediction (see module docstring)."""
    check_dimension(d)
    n = 1 << d
    return (
        d * (params.exchange_latency + params.exchange_hop_time)
        + params.byte_time * m * (n - 1)
        + params.global_sync_time(d)
    )


def allgather_exchange_time(
    m: float, d: int, partition: Sequence[int], params: MachineParams
) -> float:
    """Allgather realized as a complete exchange of ``m``-byte blocks
    (every node sends its contribution to every destination): exactly
    the multiphase model at that partition.  Pays the exchange's
    startup count for the pattern's volume — the planner's candidate
    that loses to recursive doubling, kept scored so the selection is
    checked, not assumed."""
    from repro.model.cost import multiphase_time

    return multiphase_time(m, d, tuple(partition), params)


def allgather_exchange_program(
    ctx: NodeContext,
    *,
    contribution: np.ndarray,
    partition: Sequence[int] | None = None,
    planner=None,
) -> Generator:
    """SPMD program: allgather via the complete exchange — every row of
    the send matrix is this node's contribution, so rank ``x`` ends
    with block ``j`` in row ``j``.  Routes through
    :meth:`repro.comm.communicator.Communicator.Alltoall`, so a
    planner can pick the exchange algorithm per ``(d, m)``."""
    from repro.comm.communicator import Communicator

    comm = Communicator(ctx)
    rows = np.tile(np.asarray(contribution, dtype=np.uint8), (ctx.n, 1))
    gathered = yield from comm.Alltoall(rows, partition=partition, planner=planner)
    return gathered


def allgather_program(ctx: NodeContext, *, contribution: np.ndarray) -> Generator:
    """SPMD program: d synchronized neighbour exchanges of doubling size."""
    yield ctx.barrier()
    mine: dict[int, np.ndarray] = {ctx.rank: np.asarray(contribution)}
    for j in range(ctx.d):
        partner = ctx.rank ^ (1 << j)
        nbytes = int(sum(np.asarray(b).nbytes for b in mine.values()))
        received = yield ctx.exchange(partner, dict(mine), nbytes=nbytes, tag=j)
        mine.update(received)
    return np.stack([mine[o] for o in range(ctx.n)])


def simulate_allgather(
    d: int,
    m: int,
    params: MachineParams,
    *,
    algorithm: str = "doubling",
    partition: Sequence[int] | None = None,
    planner=None,
) -> tuple[float, RunResult]:
    """Measure an allgather algorithm; results byte-verified.

    ``algorithm`` is ``"doubling"`` (recursive doubling),
    ``"exchange"`` (via the complete exchange, honouring
    ``partition``/``planner``), or ``"auto"`` (model-selected via
    :func:`repro.plan.plan_pattern`, the planner pricing the exchange
    candidate's partition).
    """
    check_dimension(d)
    if algorithm == "auto":
        from repro.plan.patterns import plan_pattern

        decision = plan_pattern("allgather", float(m), d, params, planner=planner)
        algorithm = decision.algorithm
        if partition is None:
            partition = decision.partition
    n = 1 << d
    rng = np.random.default_rng(999)
    contributions = rng.integers(0, 256, size=(n, max(m, 0)), dtype=np.uint8)
    machine = SimulatedHypercube(d, params)

    if algorithm == "doubling":
        def program(ctx):
            return allgather_program(ctx, contribution=contributions[ctx.rank])
    elif algorithm == "exchange":
        # the Alltoall selection inputs are mutually exclusive; prefer
        # the live planner, falling back to the decided partition
        exchange_planner = planner
        exchange_partition = None if planner is not None else partition

        def program(ctx):
            return allgather_exchange_program(
                ctx, contribution=contributions[ctx.rank],
                partition=exchange_partition, planner=exchange_planner,
            )
    else:
        raise ValueError(
            f"unknown allgather algorithm {algorithm!r}; "
            f"expected 'doubling', 'exchange', or 'auto'"
        )

    run = machine.run(program)
    for rank, got in enumerate(run.node_results):
        assert np.array_equal(got, contributions), f"node {rank} gathered wrong data"
    return run.time, run
