"""One-to-all personalized communication — scatter (paper §9, ref. [8]).

The root holds ``2**d`` distinct blocks, one per node.  Two algorithms
in the spirit of the paper's pair:

* **recursive halving** down the binomial tree: step ``i`` forwards the
  half of the remaining data belonging to the other subcube
  (``d`` transmissions of ``m·2**(d-i)`` bytes on the root's critical
  path) — the store-and-forward analogue of Standard Exchange;
* **direct circuits**: the root establishes a circuit to every node in
  turn (``2**d - 1`` transmissions of one block) — the analogue of the
  Optimal Circuit-Switched algorithm.  Unlike the complete exchange,
  scatter gives the circuit-switched variant no time advantage: the
  root must push ``τ·m·(2**d - 1)`` bytes through its own port either
  way, so direct circuits only add ``2**d - 1 - d`` extra startups.
  Its practical appeal on the real machine is avoiding store-and-
  forward buffering at intermediate nodes, not speed — an asymmetry
  with the exchange (where *every* node is a source) that the pattern
  benchmark quantifies.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.model.params import MachineParams
from repro.sim.machine import RunResult, SimulatedHypercube
from repro.sim.node import NodeContext
from repro.util.bitops import popcount
from repro.util.validation import check_dimension, check_node

__all__ = [
    "scatter",
    "scatter_direct_program",
    "scatter_direct_time",
    "scatter_program",
    "scatter_time",
    "simulate_scatter",
]


def scatter(blocks: np.ndarray, root: int, d: int) -> list[np.ndarray]:
    """Data-level recursive-halving scatter.

    ``blocks`` is the root's ``(2**d, m)`` array; block ``j`` is for
    node ``j``.  Returns each node's received block, moving data along
    the halving schedule explicitly.

    >>> import numpy as np
    >>> out = scatter(np.arange(8, dtype=np.uint8).reshape(4, 2), root=0, d=2)
    >>> [o.tolist() for o in out]
    [[0, 1], [2, 3], [4, 5], [6, 7]]
    """
    check_dimension(d)
    check_node(root, d)
    n = 1 << d
    blocks = np.asarray(blocks)
    if blocks.shape[0] != n:
        raise ValueError(f"root must hold {n} blocks, got {blocks.shape[0]}")
    # holdings[x] = dict dest -> block currently buffered at node x
    holdings: list[dict[int, np.ndarray]] = [dict() for _ in range(n)]
    holdings[root] = {j: blocks[j].copy() for j in range(n)}
    for step, j in enumerate(range(d - 1, -1, -1)):
        for node in range(n):
            relative = node ^ root
            # nodes active at this step are those already reached:
            # relative has no bits at or below j+... they hold a
            # contiguous (in relative terms) range of destinations
            if holdings[node] and (relative & ((1 << (j + 1)) - 1)) == 0:
                partner = node ^ (1 << j)
                moving = {
                    dest: blk
                    for dest, blk in holdings[node].items()
                    if (dest ^ root) & (1 << j)
                } if not (relative & (1 << j)) else {}
                # only the lower subcube holder forwards the upper half
                if moving:
                    for dest in moving:
                        del holdings[node][dest]
                    holdings[partner].update(moving)
    out = []
    for node in range(n):
        assert set(holdings[node]) == {node}, (
            f"node {node} ended with destinations {sorted(holdings[node])}"
        )
        out.append(holdings[node][node])
    return out


def scatter_time(m: float, d: int, params: MachineParams) -> float:
    """Recursive-halving scatter on the root's critical path:
    ``Σ_{i=1..d} (λ + τ·m·2**(d-i) + δ) = d·(λ + δ) + τ·m·(2**d - 1)``
    plus the global synchronization."""
    check_dimension(d)
    n = 1 << d
    return (
        d * (params.latency + params.hop_time)
        + params.byte_time * m * (n - 1)
        + params.global_sync_time(d)
    )


def scatter_direct_time(m: float, d: int, params: MachineParams) -> float:
    """Direct-circuit scatter: ``2**d - 1`` root transmissions of one
    block each, serialized at the root's port:
    ``Σ_{i=1..n-1} (λ + τ·m + δ·popcount(i))`` plus global sync."""
    check_dimension(d)
    n = 1 << d
    startups = (n - 1) * (params.latency + params.byte_time * m)
    distance = params.hop_time * sum(popcount(i) for i in range(1, n))
    return startups + distance + params.global_sync_time(d)


def scatter_program(ctx: NodeContext, *, blocks: np.ndarray | None, root: int) -> Generator:
    """SPMD program for recursive-halving scatter (FORCED discipline)."""
    n, d = ctx.n, ctx.d
    relative = ctx.rank ^ root
    if relative:
        # dimensions are processed from high to low, so a node is first
        # reached across the LOWEST set bit of its relative address
        arrival_j = (relative & -relative).bit_length() - 1
        src = ctx.rank ^ (1 << arrival_j)
        yield ctx.post_recv(src, tag=arrival_j)
    yield ctx.barrier()

    if relative == 0:
        mine: dict[int, np.ndarray] = {j: np.asarray(blocks)[j] for j in range(n)}
    else:
        received = yield ctx.recv(src, tag=arrival_j)
        mine = dict(received)

    # forward lower-dimension halves (steps proceed from high dims down;
    # we participate in steps below our arrival dimension)
    top = arrival_j if relative else d
    for j in range(top - 1, -1, -1):
        moving = {dest: blk for dest, blk in mine.items() if (dest ^ root) & (1 << j)}
        if moving:
            for dest in moving:
                del mine[dest]
            nbytes = int(sum(np.asarray(b).nbytes for b in moving.values()))
            yield ctx.send(ctx.rank ^ (1 << j), moving, nbytes, tag=j)
    assert set(mine) == {ctx.rank}
    return mine[ctx.rank]


def scatter_direct_program(
    ctx: NodeContext, *, blocks: np.ndarray | None, root: int
) -> Generator:
    """SPMD program for the direct-circuit scatter: the root opens a
    circuit to every node in turn and sends just that node's block
    (no store-and-forward buffering at intermediate nodes)."""
    if ctx.rank != root:
        yield ctx.post_recv(root, tag=0)
    yield ctx.barrier()
    if ctx.rank == root:
        mine = np.asarray(blocks)
        for dst in range(ctx.n):
            if dst != root:
                yield ctx.send(dst, mine[dst], int(mine[dst].nbytes), tag=0)
        return mine[root]
    block = yield ctx.recv(root, tag=0)
    return block


def simulate_scatter(
    d: int, m: int, params: MachineParams, *, root: int = 0, algorithm: str = "halving"
) -> tuple[float, RunResult]:
    """Measure a scatter algorithm; blocks byte-verified.

    ``algorithm`` is ``"halving"`` (recursive halving down the
    binomial tree), ``"direct"`` (root circuits), or ``"auto"``
    (model-selected via :func:`repro.plan.plan_pattern`).
    """
    check_dimension(d)
    check_node(root, d)
    if algorithm == "auto":
        from repro.plan.patterns import plan_pattern

        algorithm = plan_pattern("scatter", float(m), d, params).algorithm
    programs = {"halving": scatter_program, "direct": scatter_direct_program}
    if algorithm not in programs:
        raise ValueError(
            f"unknown scatter algorithm {algorithm!r}; "
            f"expected 'halving', 'direct', or 'auto'"
        )
    n = 1 << d
    rng = np.random.default_rng(12345)
    blocks = rng.integers(0, 256, size=(n, m), dtype=np.uint8)
    machine = SimulatedHypercube(d, params)
    run = machine.run(programs[algorithm], blocks=blocks, root=root)
    for rank, got in enumerate(run.node_results):
        assert np.array_equal(np.asarray(got, dtype=np.uint8), blocks[rank]), (
            f"node {rank} received the wrong block"
        )
    return run.time, run
