"""Other collective patterns on circuit-switched hypercubes (paper §9).

The paper closes by asking how the all-to-all broadcast, one-to-all
personalized, and one-to-all broadcast patterns [Johnsson & Ho] fare
under the same machine model, noting that the complete exchange —
being the densest requirement — upper-bounds them all.  This
subpackage implements the three patterns (data-level, cost model, and
simulated programs), plus circuit-switched variants that exploit long
circuits the way the paper's optimal exchange does, and verifies the
upper-bound relationship.

Every pattern algorithm also exists as a declarative
:class:`~repro.core.programs.CommProgram` step stream (re-exported
here: :func:`pattern_program` and the per-algorithm builders), which
:func:`repro.sim.fastpath.compile_program` prices in one numpy pass at
float equality with the SPMD simulations in this package — the planner
scores candidates with that fast path and the event engine only runs
as a spot-check.
"""

from repro.core.programs import (
    allgather_doubling_steps,
    allgather_exchange_steps,
    broadcast_binomial_steps,
    broadcast_direct_steps,
    pattern_program,
    scatter_direct_steps,
    scatter_halving_steps,
)
from repro.patterns.allgather import (
    allgather,
    allgather_exchange_time,
    allgather_time,
    simulate_allgather,
)
from repro.patterns.broadcast import (
    broadcast,
    broadcast_direct_time,
    broadcast_time,
    simulate_broadcast,
)
from repro.patterns.scatter import (
    scatter,
    scatter_direct_time,
    scatter_time,
    simulate_scatter,
)

__all__ = [
    "allgather",
    "allgather_doubling_steps",
    "allgather_exchange_steps",
    "allgather_exchange_time",
    "allgather_time",
    "broadcast",
    "broadcast_binomial_steps",
    "broadcast_direct_steps",
    "broadcast_direct_time",
    "broadcast_time",
    "pattern_program",
    "scatter",
    "scatter_direct_steps",
    "scatter_direct_time",
    "scatter_halving_steps",
    "scatter_time",
    "simulate_allgather",
    "simulate_broadcast",
    "simulate_scatter",
]
