"""Independent verification of complete-exchange results.

Correctness of an all-to-all personalized exchange is a single matrix
identity: if ``S[x]`` is node ``x``'s ``(n, m)`` send array (row ``j``
bound for node ``j``) and ``R[x]`` its receive array (row ``j`` from
node ``j``), then ``R[x][j] == S[j][x]`` for all ``x, j`` — the block
transpose of Figure 2.  These helpers check that identity directly on
raw arrays, independent of the buffer classes, so a bug in the buffer
bookkeeping cannot mask itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "alltoall_reference",
    "assert_exchange_correct",
    "exchange_defect",
]


def alltoall_reference(send_rows: Sequence[np.ndarray]) -> list[np.ndarray]:
    """The ground-truth complete exchange, computed by direct indexing.

    ``result[x][j] = send_rows[j][x]``.  O(n^2) block copies; used as
    the oracle for every algorithmic implementation.
    """
    n = len(send_rows)
    arrays = [np.asarray(r) for r in send_rows]
    for x, r in enumerate(arrays):
        if r.ndim != 2 or r.shape[0] != n:
            raise ValueError(f"node {x}: expected ({n}, m) send rows, got {r.shape}")
    return [np.stack([arrays[j][x] for j in range(n)]) for x in range(n)]


def exchange_defect(
    send_rows: Sequence[np.ndarray], recv_rows: Sequence[np.ndarray]
) -> list[tuple[int, int]]:
    """All ``(receiver, origin)`` pairs whose block is wrong or missing.

    Empty list means the exchange is correct.
    """
    n = len(send_rows)
    if len(recv_rows) != n:
        raise ValueError(f"{len(recv_rows)} receive arrays for {n} nodes")
    defects: list[tuple[int, int]] = []
    for x in range(n):
        recv = np.asarray(recv_rows[x])
        if recv.shape[0] != n:
            defects.extend((x, j) for j in range(n))
            continue
        for j in range(n):
            if not np.array_equal(recv[j], np.asarray(send_rows[j])[x]):
                defects.append((x, j))
    return defects


def assert_exchange_correct(
    send_rows: Sequence[np.ndarray], recv_rows: Sequence[np.ndarray]
) -> None:
    """Assert ``recv_rows`` is the complete exchange of ``send_rows``,
    reporting the first few defects on failure."""
    defects = exchange_defect(send_rows, recv_rows)
    assert not defects, (
        f"complete exchange incorrect at {len(defects)} (receiver, origin) pairs; "
        f"first few: {defects[:8]}"
    )
