"""Transmission schedules for the exchange algorithms.

An exchange algorithm is compiled to a flat sequence of *steps* that
every node executes in lockstep.  The same step list drives three
consumers:

* the abstract executor (:mod:`repro.core.exchange`) that applies the
  data movement directly to block buffers,
* the simulator programs (:mod:`repro.comm.program`) that replay the
  steps on the discrete-event machine,
* the static analysers, which expand each exchange step into the set of
  circuits held simultaneously and check them contention-free
  (:func:`schedule_circuits`, :func:`validate_contention_free`).

Step vocabulary
---------------
``PhaseStart``
    Marks a phase boundary: post receives and globally synchronize
    (paper §7.3 — FORCED messages are fatal without it).
``ExchangeStep``
    Every node pairs with ``node ^ (offset << group.lo)`` and the pair
    swaps the blocks bound for each other's subcube coordinate.  The
    offsets ``1 .. 2**d_i - 1`` in increasing order are exactly the
    Schmiermund–Seidel pairwise schedule, restricted to the phase's
    subcube bits.
``ShuffleStep``
    ``times`` elementary shuffles (index-bit rotations) at cost
    ``rho`` per byte of the node's full buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence, Union

from repro.hypercube.contention import analyze_contention
from repro.hypercube.routing import ecube_hops
from repro.hypercube.subcube import BitGroup, phase_bit_groups
from repro.util.bitops import popcount
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "ExchangeStep",
    "PhaseStart",
    "ShuffleStep",
    "Step",
    "multiphase_schedule",
    "optimal_schedule",
    "schedule_circuits",
    "schedule_stats",
    "schedule_stats_cache_info",
    "standard_schedule",
    "validate_contention_free",
]


@dataclass(frozen=True)
class PhaseStart:
    """Phase boundary: post all receives for the phase, then barrier."""

    phase_index: int
    group: BitGroup
    n_exchanges: int


@dataclass(frozen=True)
class ExchangeStep:
    """One pairwise-exchange step of a partial exchange.

    Every node ``x`` exchanges with ``x ^ (offset << group.lo)``; the
    payload each way is the sender's current blocks whose destination
    matches the partner's coordinate in ``group`` (the *effective
    block*, ``m * 2**(d - d_i)`` bytes).
    """

    phase_index: int
    group: BitGroup
    offset: int

    def __post_init__(self) -> None:
        if not 1 <= self.offset < (1 << self.group.width):
            raise ValueError(
                f"offset {self.offset} out of range 1..{(1 << self.group.width) - 1} "
                f"for a width-{self.group.width} phase"
            )

    def partner(self, node: int) -> int:
        """The exchange partner of ``node`` at this step."""
        return node ^ (self.offset << self.group.lo)

    @property
    def hops(self) -> int:
        """Distance between every pair at this step (= popcount of the
        offset; identical for all pairs, as the paper's eq. (2) uses)."""
        return popcount(self.offset)


@dataclass(frozen=True)
class ShuffleStep:
    """Local data permutation between phases: ``times`` elementary
    shuffles, one fused pass over the whole buffer."""

    phase_index: int
    times: int


Step = Union[PhaseStart, ExchangeStep, ShuffleStep]


def multiphase_schedule(d: int, partition: Sequence[int]) -> list[Step]:
    """Compile the multiphase algorithm for ``partition`` on a ``d``-cube.

    Degenerate cases per paper §5.2: ``partition == (1,)*d`` yields the
    Standard Exchange schedule (each phase one neighbour exchange of
    half the data); ``partition == (d,)`` yields the Optimal
    Circuit-Switched schedule (no shuffles at all).

    >>> steps = multiphase_schedule(3, (2, 1))
    >>> [type(s).__name__ for s in steps]  # doctest: +NORMALIZE_WHITESPACE
    ['PhaseStart', 'ExchangeStep', 'ExchangeStep', 'ExchangeStep', 'ShuffleStep',
     'PhaseStart', 'ExchangeStep', 'ShuffleStep']
    """
    parts = check_partition(partition, d)
    groups = phase_bit_groups(parts, d)
    k = len(parts)
    steps: list[Step] = []
    for i, (di, group) in enumerate(zip(parts, groups)):
        n_exchanges = (1 << di) - 1
        steps.append(PhaseStart(phase_index=i, group=group, n_exchanges=n_exchanges))
        for offset in range(1, 1 << di):
            steps.append(ExchangeStep(phase_index=i, group=group, offset=offset))
        if k > 1:
            # 'shuffle blocks d_i times': d_i index-bit rotations, fused
            # into one permutation pass.  Omitted for k == 1, where the
            # rotation by d is the identity (paper §7.4).
            steps.append(ShuffleStep(phase_index=i, times=di))
    return steps


def standard_schedule(d: int) -> list[Step]:
    """The Standard Exchange algorithm: the all-ones partition."""
    check_dimension(d, minimum=1)
    return multiphase_schedule(d, (1,) * d)


def optimal_schedule(d: int) -> list[Step]:
    """The Optimal Circuit-Switched algorithm: the single-part partition."""
    check_dimension(d, minimum=1)
    return multiphase_schedule(d, (d,))


# ----------------------------------------------------------------------
# static analysis
# ----------------------------------------------------------------------
def schedule_circuits(step: ExchangeStep, d: int) -> Iterator[tuple[int, int]]:
    """All circuits held simultaneously during one exchange step.

    Each unordered pair contributes both directed circuits (the
    exchange is full-duplex).
    """
    shift = step.offset << step.group.lo
    for node in range(1 << d):
        yield (node, node ^ shift)


def validate_contention_free(steps: Sequence[Step], d: int) -> None:
    """Assert that every exchange step of a schedule is edge-contention
    free under e-cube routing.

    This is the Schmiermund–Seidel property the whole construction
    rests on; it holds for every phase of every partition because a
    directed link determines the (source, offset) pair that may use it.
    """
    for idx, step in enumerate(steps):
        if not isinstance(step, ExchangeStep):
            continue
        report = analyze_contention(schedule_circuits(step, d))
        assert report.edge_contention_free, (
            f"step {idx} (phase {step.phase_index}, offset {step.offset}): "
            f"edge contention on {sorted(map(str, report.edge_conflicts))}"
        )


@lru_cache(maxsize=512)
def _schedule_stats_basis(steps: tuple[Step, ...], d: int) -> tuple[int, int, int, int, int]:
    """The block-size-independent aggregates of a schedule.

    Memoized per schedule (the step dataclasses are frozen, so a step
    tuple is a hashable key, and a ``(d, partition)`` pair always
    compiles to the same steps): sweep loops that query the same
    schedule at many block sizes walk the step list once.
    ``bytes_factor`` is the per-node byte volume per unit of ``m``.
    """
    n_transmissions = 0
    bytes_factor = 0
    hop_sum = 0
    n_phases = 0
    n_shuffles = 0
    for step in steps:
        if isinstance(step, PhaseStart):
            n_phases += 1
        elif isinstance(step, ExchangeStep):
            n_transmissions += 1
            bytes_factor += 1 << (d - step.group.width)
            hop_sum += step.hops
        elif isinstance(step, ShuffleStep):
            n_shuffles += 1
    return n_transmissions, bytes_factor, hop_sum, n_phases, n_shuffles


def schedule_stats(steps: Sequence[Step], d: int, m: int) -> dict[str, float]:
    """Aggregate statistics of a schedule for reporting.

    Returns transmission count, total bytes sent per node, total
    hop-weighted transmissions (the distance-impact driver), number of
    phases, and number of shuffle passes.  The per-schedule aggregates
    are memoized per ``(d, partition)`` — only the ``m`` scaling is
    recomputed per query (see :func:`schedule_stats_cache_info`).
    """
    n_transmissions, bytes_factor, hop_sum, n_phases, n_shuffles = _schedule_stats_basis(
        tuple(steps), d
    )
    return {
        "n_transmissions": float(n_transmissions),
        "bytes_per_node": float(m * bytes_factor),
        "hop_sum": float(hop_sum),
        "n_phases": float(n_phases),
        "n_shuffles": float(n_shuffles),
    }


def schedule_stats_cache_info():
    """Hit/miss counters of the memoized schedule aggregates."""
    return _schedule_stats_basis.cache_info()


def exchange_distance(src: int, dst: int) -> int:
    """Hop distance of the circuit ``src -> dst`` (e-cube path length)."""
    return ecube_hops(src, dst)
