"""Integer partitions of the cube dimension (paper §6).

The multiphase algorithm is parameterized by a partition
``D = {d1, ..., dk}`` of the cube dimension ``d``.  The number of
candidate algorithms is therefore ``p(d)``, the partition function —
"an exponential but very slowly growing function" (``p(7) = 15``,
``p(10) = 42``, ``p(20) = 627``), which makes exhaustive enumeration
over partitions entirely practical.

This module provides:

* :func:`partitions` — generation of all partitions of ``d``;
* :func:`partition_count` — ``p(d)`` via Euler's pentagonal-number
  recurrence, the same recurrence quoted in the paper;
* :func:`partition_count_asymptotic` — the Hardy–Ramanujan estimate
  ``p(d) ~ exp(pi*sqrt(2d/3)) / (4*sqrt(3)*d)`` the paper cites;
* :func:`compositions` — ordered variants, used to confirm that phase
  order does not change cost or correctness.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterator, Sequence

from repro.util.validation import check_partition

__all__ = [
    "cached_partitions",
    "canonical",
    "compositions",
    "partition_count",
    "partition_count_asymptotic",
    "partition_count_table",
    "partitions",
]


def partitions(d: int, *, max_part: int | None = None) -> Iterator[tuple[int, ...]]:
    """Generate all partitions of ``d`` in decreasing-part canonical form.

    Partitions are emitted in reverse lexicographic order starting from
    ``(d,)`` (the single-phase Optimal Circuit-Switched algorithm) and
    ending with ``(1,) * d`` (the Standard Exchange algorithm).

    Parameters
    ----------
    d:
        The integer (cube dimension) to partition; must be >= 0.  For
        ``d == 0`` the single empty partition ``()`` is produced.
    max_part:
        Optional cap on the largest part, used by the recursion and
        available to callers that want to exclude large subcubes.

    >>> list(partitions(4))
    [(4,), (3, 1), (2, 2), (2, 1, 1), (1, 1, 1, 1)]
    """
    if d < 0:
        raise ValueError(f"cannot partition a negative integer: {d}")
    cap = d if max_part is None else min(max_part, d)
    if d == 0:
        yield ()
        return
    if cap <= 0:
        return
    for first in range(cap, 0, -1):
        for rest in partitions(d - first, max_part=first):
            yield (first, *rest)


def compositions(d: int) -> Iterator[tuple[int, ...]]:
    """Generate all *ordered* partitions (compositions) of ``d``.

    There are ``2**(d-1)`` of them.  The paper notes the sequence of
    subcube dimensions is unimportant as long as shuffles are carried
    out correctly; the test suite uses compositions to check that every
    ordering of a partition yields a correct exchange with identical
    modelled cost.

    >>> sorted(compositions(3))
    [(1, 1, 1), (1, 2), (2, 1), (3,)]
    """
    if d < 0:
        raise ValueError(f"cannot compose a negative integer: {d}")
    if d == 0:
        yield ()
        return
    for first in range(1, d + 1):
        for rest in compositions(d - first):
            yield (first, *rest)


@lru_cache(maxsize=None)
def cached_partitions(
    d: int, *, max_part: int | None = None
) -> tuple[tuple[int, ...], ...]:
    """Memoized candidate pool: all partitions of ``d`` as a tuple.

    The optimizer and the batched sweeps enumerate the same pool for
    every block size they evaluate; the paper notes the enumeration
    "needs to be done only once", so cache it.  ``p(d)`` tuples for all
    supported ``d`` total a few thousand objects — the cache is
    unbounded on purpose.

    >>> cached_partitions(4)
    ((4,), (3, 1), (2, 2), (2, 1, 1), (1, 1, 1, 1))
    >>> cached_partitions(4) is cached_partitions(4)
    True
    """
    return tuple(partitions(d, max_part=max_part))


def canonical(partition: Sequence[int], d: int | None = None) -> tuple[int, ...]:
    """Canonical (decreasing) form of a partition.

    Used to compare partitions regardless of phase order and as the key
    in optimizer tables.
    """
    parts = tuple(sorted(partition, reverse=True))
    if d is not None:
        check_partition(parts, d)
    return parts


@lru_cache(maxsize=None)
def partition_count(d: int) -> int:
    """The partition function ``p(d)`` by the pentagonal-number recurrence.

    ``p(d) = sum_{j>=1} (-1)^(j+1) * [p(d - j(3j-1)/2) + p(d - j(3j+1)/2)]``

    with ``p(0) = 1`` and ``p(negative) = 0`` — the classical Euler
    recurrence the paper quotes in §6.

    >>> [partition_count(d) for d in (5, 7, 10, 15, 20)]
    [7, 15, 42, 176, 627]
    """
    if d < 0:
        return 0
    if d == 0:
        return 1
    total = 0
    j = 1
    while True:
        g1 = j * (3 * j - 1) // 2  # generalized pentagonal number
        g2 = j * (3 * j + 1) // 2
        if g1 > d and g2 > d:
            break
        sign = -1 if j % 2 == 0 else 1
        if g1 <= d:
            total += sign * partition_count(d - g1)
        if g2 <= d:
            total += sign * partition_count(d - g2)
        j += 1
    return total


def partition_count_asymptotic(d: int) -> float:
    """Hardy–Ramanujan asymptotic estimate of ``p(d)`` (paper §6).

    ``p(d) ~ exp(pi * sqrt(2d/3)) / (4 * d * sqrt(3))``.  Within ~15%
    of the exact value already at ``d = 20``... in the sense of the
    classical first-order term; the tests only assert the known
    asymptotic ratio behaviour, not tightness.
    """
    if d <= 0:
        raise ValueError(f"asymptotic estimate requires d > 0, got {d}")
    return math.exp(math.pi * math.sqrt(2.0 * d / 3.0)) / (4.0 * d * math.sqrt(3.0))


def partition_count_table(dims: Sequence[int] = (5, 10, 15, 20)) -> list[tuple[int, int]]:
    """The paper's §6 table of ``(d, p(d))`` pairs.

    Default dimensions match the published table: p(5)=7, p(10)=42,
    p(15)=176, p(20)=627.
    """
    return [(d, partition_count(d)) for d in dims]
