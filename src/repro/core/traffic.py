"""Multiphase exchange for arbitrary traffic (paper §9, open problem).

The paper closes with: "An open theoretical issue is whether we can
develop an efficient multiphase algorithm for a given arbitrary
communication requirement (i.e. an arbitrary directed graph)."  This
module implements the natural answer the multiphase machinery
suggests: run the same phase structure, but each pairwise exchange
carries only the blocks the traffic actually requires, and the cost of
a lockstep step is governed by its *heaviest* pair.

Model
-----
Traffic is an ``n x n`` matrix ``T`` with ``T[s, t]`` the bytes node
``s`` owes node ``t``; the diagonal is data a node keeps (it rides
through shuffles but never the wire).  Under partition
``D = (d_1...d_k)``, phase ``i``'s step with offset ``o`` exchanges,
for each pair, the traffic whose destination differs from the holder in
exactly the group-``i`` coordinate pattern implied by ``o`` — the same
rule as the complete exchange, restricted to present blocks.  With
pairwise-synchronized lockstep steps the step time is::

    λ_eff + τ · max_pair(bytes this step) + δ_eff · hops

so skewed traffic wastes the synchronized partners' time — quantifying
*why* the paper calls the general problem challenging — while uniform
traffic recovers the complete-exchange cost exactly.

:func:`best_partition_for_traffic` enumerates partitions against this
model, extending §6's optimizer to arbitrary requirements.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.partitions import partitions
from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, multiphase_schedule
from repro.model.params import MachineParams
from repro.util.bitops import log2_exact
from repro.util.validation import check_partition

__all__ = [
    "best_partition_for_traffic",
    "route_traffic",
    "traffic_time",
    "uniform_traffic",
]


def uniform_traffic(d: int, m: float) -> np.ndarray:
    """The complete-exchange traffic matrix: ``m`` bytes per ordered
    pair.  The diagonal is also ``m`` — the block a node keeps for
    itself, which is never transmitted but does ride through every
    shuffle pass (the paper's ``ρ·m·2**d`` term counts all ``2**d``
    blocks)."""
    n = 1 << d
    return np.full((n, n), float(m))


def _validate(traffic: np.ndarray) -> tuple[np.ndarray, int]:
    matrix = np.asarray(traffic, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"traffic must be square, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("traffic entries must be non-negative")
    d = log2_exact(matrix.shape[0])
    return matrix, d


def route_traffic(
    traffic: np.ndarray, partition: Sequence[int]
) -> list[tuple[int, int, np.ndarray]]:
    """Expand the phase structure into lockstep step loads.

    Returns one ``(phase_index, offset_shifted, loads)`` triple per
    exchange step, where ``loads`` is an ``n``-vector of the bytes each
    node ships at that step.  Between phases, pending traffic moves
    exactly as the complete exchange moves blocks: after a phase every
    remaining requirement agrees with its holder on the processed bits.

    The function also serves as a routing proof: it asserts that after
    the last phase every requirement has reached its destination.
    """
    matrix, d = _validate(traffic)
    parts = check_partition(partition, d)
    n = 1 << d
    # pending[holder][dest] = bytes currently at holder bound for dest.
    pending = matrix.copy()
    steps_out: list[tuple[int, int, np.ndarray]] = []
    for step in multiphase_schedule(d, parts):
        if isinstance(step, (PhaseStart, ShuffleStep)):
            continue
        assert isinstance(step, ExchangeStep)
        group = step.group
        shift = step.offset << group.lo
        dest_coords = (np.arange(n) >> group.lo) & ((1 << group.width) - 1)
        loads = np.zeros(n)
        moved: list[tuple[int, np.ndarray]] = []
        for holder in range(n):
            partner = holder ^ shift
            partner_coord = (partner >> group.lo) & ((1 << group.width) - 1)
            # blocks whose destination matches the partner's subcube
            # coordinate; the holder's own coordinate differs, so its
            # self-block never ships
            row = pending[holder] * (dest_coords == partner_coord)
            loads[holder] = row.sum()
            moved.append((partner, row))
        for holder, (partner, row) in enumerate(moved):
            pending[holder] -= row
            pending[partner] += row
        steps_out.append((step.phase_index, shift, loads))
    # routing proof: all traffic must now sit at its destination row
    off_diagonal = pending.copy()
    np.fill_diagonal(off_diagonal, 0.0)
    assert not off_diagonal.any(), "multiphase routing left traffic undelivered"
    return steps_out


def traffic_time(
    traffic: np.ndarray,
    partition: Sequence[int],
    params: MachineParams,
) -> float:
    """Predicted multiphase time for an arbitrary traffic matrix.

    Lockstep steps: each costs ``λ_eff + τ·max(load) + δ_eff·hops``;
    shuffles charge ρ over each node's *peak held volume* per phase
    (conservative); global sync per phase as usual.  For uniform
    traffic this reproduces :func:`repro.model.cost.multiphase_time`
    exactly (tested).
    """
    matrix, d = _validate(traffic)
    parts = check_partition(partition, d)
    steps = route_traffic(matrix, parts)
    k = len(parts)
    total = 0.0
    for _, shift, loads in steps:
        hops = bin(shift).count("1")
        total += (
            params.exchange_latency
            + params.byte_time * float(loads.max())
            + params.exchange_hop_time * hops
        )
    total += k * params.global_sync_time(d)
    if k > 1:
        # each phase ends with one fused permutation pass over the
        # busiest node's buffer; the initial per-node peak is exact for
        # uniform traffic (holdings never change size there) and a
        # first-order estimate under skew
        held_peak = float(matrix.sum(axis=1).max())
        total += k * params.permute_time * held_peak
    return total


def best_partition_for_traffic(
    traffic: np.ndarray, params: MachineParams
) -> tuple[tuple[int, ...], float]:
    """Enumerate partitions against the traffic model (§6 extended).

    Returns the best ``(partition, predicted_time)``.
    """
    matrix, d = _validate(traffic)
    best: tuple[tuple[int, ...], float] | None = None
    for partition in partitions(d):
        t = traffic_time(matrix, partition, params)
        if best is None or t < best[1] or (t == best[1] and partition < best[0]):
            best = (partition, t)
    assert best is not None
    return best
