"""Multiphase exchange for arbitrary traffic (paper §9, open problem).

The paper closes with: "An open theoretical issue is whether we can
develop an efficient multiphase algorithm for a given arbitrary
communication requirement (i.e. an arbitrary directed graph)."  This
module implements the natural answer the multiphase machinery
suggests: run the same phase structure, but each pairwise exchange
carries only the blocks the traffic actually requires, and the cost of
a lockstep step is governed by its *heaviest* pair.

Model
-----
Traffic is an ``n x n`` matrix ``T`` with ``T[s, t]`` the bytes node
``s`` owes node ``t``; the diagonal is data a node keeps (it rides
through shuffles but never the wire).  Under partition
``D = (d_1...d_k)``, phase ``i``'s step with offset ``o`` exchanges,
for each pair, the traffic whose destination differs from the holder in
exactly the group-``i`` coordinate pattern implied by ``o`` — the same
rule as the complete exchange, restricted to present blocks.  With
pairwise-synchronized lockstep steps the step time is::

    λ_eff + τ · max_pair(bytes this step) + δ_eff · hops

so skewed traffic wastes the synchronized partners' time — quantifying
*why* the paper calls the general problem challenging — while uniform
traffic recovers the complete-exchange cost exactly.

The routing and pricing kernels are *batched*: a stack of ``B``
traffic matrices is routed through one partition's schedule in a
single numpy pass (:func:`route_traffic_batch` /
:func:`traffic_time_batch`), and :func:`traffic_time_grid` prices a
``B × P`` grid of matrices × partitions the way
:func:`repro.model.grid` prices the uniform cost surface.  The scalar
:func:`route_traffic` / :func:`traffic_time` are the ``B = 1`` case of
the same kernel, so scalar and batch results are bitwise identical by
construction (within a step the shipped and received block sets of a
node are disjoint, so the batched ``pending - moved + received``
update touches each entry with at most one nonzero term — the same
floats the per-holder loop produced).

:func:`best_partition_for_traffic` evaluates the whole partition grid
in one pass, extending §6's optimizer to arbitrary requirements;
:func:`hotspot_traffic` builds the canonical skewed workload the
planner's traffic policy optimizes for.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.partitions import partitions
from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, multiphase_schedule
from repro.model.params import MachineParams
from repro.util.bitops import log2_exact
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "best_partition_for_traffic",
    "hotspot_traffic",
    "route_traffic",
    "route_traffic_batch",
    "traffic_time",
    "traffic_time_batch",
    "traffic_time_grid",
    "uniform_traffic",
]


def uniform_traffic(d: int, m: float) -> np.ndarray:
    """The complete-exchange traffic matrix: ``m`` bytes per ordered
    pair.  The diagonal is also ``m`` — the block a node keeps for
    itself, which is never transmitted but does ride through every
    shuffle pass (the paper's ``ρ·m·2**d`` term counts all ``2**d``
    blocks)."""
    n = 1 << d
    return np.full((n, n), float(m))


def hotspot_traffic(d: int, m: float, skew: float = 4.0) -> np.ndarray:
    """A deterministic non-uniform workload: uniform traffic with node 0
    a hotspot — everything it sends and receives is ``(1 + skew)``
    heavier.  ``skew = 0`` recovers :func:`uniform_traffic`.  This is
    the canonical skewed matrix the planner's traffic policy prices
    partitions against."""
    check_dimension(d, minimum=1)
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    matrix = uniform_traffic(d, m)
    matrix[0, :] *= 1.0 + skew
    matrix[1:, 0] *= 1.0 + skew
    return matrix


def _validate(traffic: np.ndarray) -> tuple[np.ndarray, int]:
    matrix = np.asarray(traffic, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"traffic must be square, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("traffic entries must be non-negative")
    d = log2_exact(matrix.shape[0])
    return matrix, d


def _validate_batch(traffics: np.ndarray) -> tuple[np.ndarray, int]:
    stack = np.asarray(traffics, dtype=np.float64)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise ValueError(
            f"traffic batch must have shape (B, n, n), got {stack.shape}"
        )
    if (stack < 0).any():
        raise ValueError("traffic entries must be non-negative")
    d = log2_exact(stack.shape[1])
    return stack, d


def route_traffic_batch(
    traffics: np.ndarray, partition: Sequence[int]
) -> list[tuple[int, int, np.ndarray]]:
    """Expand the phase structure into lockstep step loads, batched.

    ``traffics`` is a ``(B, n, n)`` stack of traffic matrices routed
    through one partition's schedule together.  Returns one
    ``(phase_index, offset_shifted, loads)`` triple per exchange step,
    where ``loads`` is a ``(B, n)`` array of the bytes each node ships
    at that step.  Between phases, pending traffic moves exactly as the
    complete exchange moves blocks: after a phase every remaining
    requirement agrees with its holder on the processed bits.

    The function also serves as a routing proof: it asserts that after
    the last phase every requirement has reached its destination (the
    shipped and received entry sets of a node are disjoint within a
    step, so cancellation is exact — no float residue).
    """
    stack, d = _validate_batch(traffics)
    parts = check_partition(partition, d)
    n = 1 << d
    nodes = np.arange(n)
    # pending[b, holder, dest] = bytes currently at holder bound for dest
    pending = stack.copy()
    steps_out: list[tuple[int, int, np.ndarray]] = []
    for step in multiphase_schedule(d, parts):
        if isinstance(step, (PhaseStart, ShuffleStep)):
            continue
        assert isinstance(step, ExchangeStep)
        group = step.group
        shift = step.offset << group.lo
        dest_coords = (nodes >> group.lo) & ((1 << group.width) - 1)
        partner = nodes ^ shift
        # ship[holder, dest]: dest's group coordinate matches the
        # holder's partner's — the holder's own coordinate differs, so
        # its self-block never ships
        ship = dest_coords[None, :] == dest_coords[partner][:, None]
        moved = pending * ship[None, :, :]
        loads = moved.sum(axis=-1)
        pending = pending - moved + moved[:, partner, :]
        steps_out.append((step.phase_index, shift, loads))
    # routing proof: all traffic must now sit at its destination row
    off_diagonal = pending.copy()
    off_diagonal[:, nodes, nodes] = 0.0
    assert not off_diagonal.any(), "multiphase routing left traffic undelivered"
    return steps_out


def route_traffic(
    traffic: np.ndarray, partition: Sequence[int]
) -> list[tuple[int, int, np.ndarray]]:
    """Expand the phase structure into lockstep step loads.

    The ``B = 1`` view of :func:`route_traffic_batch`: returns one
    ``(phase_index, offset_shifted, loads)`` triple per exchange step
    with ``loads`` an ``n``-vector of the bytes each node ships.
    """
    matrix, _ = _validate(traffic)
    return [
        (phase_index, shift, loads[0])
        for phase_index, shift, loads in route_traffic_batch(
            matrix[None, :, :], partition
        )
    ]


def traffic_time_batch(
    traffics: np.ndarray,
    partition: Sequence[int],
    params: MachineParams,
) -> np.ndarray:
    """Predicted multiphase times for a stack of traffic matrices.

    Lockstep steps: each costs ``λ_eff + τ·max(load) + δ_eff·hops``;
    shuffles charge ρ over each node's *peak held volume* per phase
    (conservative); global sync per phase as usual.  Terms combine in
    the same order as the scalar model always did, so
    :func:`traffic_time` results are reproduced bitwise.
    """
    stack, d = _validate_batch(traffics)
    parts = check_partition(partition, d)
    steps = route_traffic_batch(stack, parts)
    k = len(parts)
    totals = np.zeros(stack.shape[0], dtype=np.float64)
    for _, shift, loads in steps:
        hops = bin(shift).count("1")
        totals += (
            params.exchange_latency
            + params.byte_time * loads.max(axis=-1)
            + params.exchange_hop_time * hops
        )
    totals += k * params.global_sync_time(d)
    if k > 1:
        # each phase ends with one fused permutation pass over the
        # busiest node's buffer; the initial per-node peak is exact for
        # uniform traffic (holdings never change size there) and a
        # first-order estimate under skew
        held_peaks = stack.sum(axis=-1).max(axis=-1)
        totals += k * params.permute_time * held_peaks
    return totals


def traffic_time(
    traffic: np.ndarray,
    partition: Sequence[int],
    params: MachineParams,
) -> float:
    """Predicted multiphase time for an arbitrary traffic matrix.

    The ``B = 1`` view of :func:`traffic_time_batch`.  For uniform
    traffic this reproduces :func:`repro.model.cost.multiphase_time`
    exactly (tested).
    """
    matrix, _ = _validate(traffic)
    return float(traffic_time_batch(matrix[None, :, :], partition, params)[0])


def traffic_time_grid(
    traffics: np.ndarray,
    parts: Sequence[Sequence[int]],
    params: MachineParams,
) -> np.ndarray:
    """Price a ``B × P`` grid of traffic matrices × partitions.

    One routed pass per partition covers the whole batch; column ``j``
    equals ``traffic_time_batch(traffics, parts[j], params)``.
    """
    stack, _ = _validate_batch(traffics)
    grid = np.empty((stack.shape[0], len(parts)), dtype=np.float64)
    for j, partition in enumerate(parts):
        grid[:, j] = traffic_time_batch(stack, partition, params)
    return grid


def best_partition_for_traffic(
    traffic: np.ndarray, params: MachineParams
) -> tuple[tuple[int, ...], float]:
    """Evaluate every partition against the traffic model (§6 extended).

    One grid pass over :func:`repro.core.partitions.partitions`;
    returns the best ``(partition, predicted_time)``.

    Tie-breaking is deterministic: on equal predicted times the
    *lowest-index* partition in enumeration order wins (``argmin``
    takes the first minimum).  ``partitions(d)`` enumerates in
    reverse-lexicographic order with ``(d,)`` first, so ties prefer
    fewer, larger phases — independent of dict or insertion order.
    """
    matrix, d = _validate(traffic)
    parts = [tuple(partition) for partition in partitions(d)]
    grid = traffic_time_grid(matrix[None, :, :], parts, params)[0]
    index = int(np.argmin(grid))
    return parts[index], float(grid[index])
