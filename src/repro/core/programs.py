"""Lockstep communication programs: one step vocabulary for every collective.

The fast path (:mod:`repro.sim.fastpath`) prices a schedule by lowering
it to per-step timing coefficients and summing them in the event
engine's dispatch order.  That trick is not specific to the complete
exchange: *any* collective whose critical path is a fixed chain of
barriers, one-way sends, and pairwise exchanges can be compiled the
same way.  This module is the shared vocabulary those programs are
written in — a :class:`CommProgram` is a named, hashable step stream
that :func:`repro.sim.fastpath.compile_program` lowers to coefficient
arrays, and that :mod:`repro.check.schedule` certifies structurally.

Step vocabulary
---------------
:class:`BarrierStep`
    Global synchronization; the engine releases all nodes ``γ·d`` after
    arrival (paper §7.3 — FORCED messages are fatal without it).
:class:`SendStep`
    One FORCED one-way transmission ``src -> dst`` of
    ``bytes_per_m · m`` bytes, priced with the *plain* constants
    ``λ + τ·nbytes + δ·hops`` (one-way traffic pays no pairwise
    handshake).
:class:`PairStep`
    A synchronized pairwise exchange: every node swaps with
    ``node ^ shift``, priced with the §7.4 effective constants
    ``λ_eff + τ·nbytes + δ_eff·hops``.
:class:`LocalShuffleStep`
    A local permutation pass, ``ρ`` per byte of the node's buffer.

A program's step stream is its **critical-path chain**: the sequence of
step durations whose cumulative sum is the run's makespan on the event
engine.  For lockstep programs (the exchange, allgather doubling) the
chain is literally every node's step list; for rooted trees (broadcast,
scatter) it is the root's chain, which the §9 schedules make the
longest one — every forwarding node's chain accumulates the identical
float suffix, so the root chain's ``cumsum`` equals the engine's
makespan *exactly*, not just asymptotically.

Programs with ``contended=True`` (the naive rotation baseline) have no
lockstep closed form — their cost is link/port serialization — and are
refused by the compiler; :func:`repro.sim.fastpath.batch_program_times`
routes them to the reservation replay instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.core.schedule import (
    ExchangeStep,
    PhaseStart,
    ShuffleStep,
    multiphase_schedule,
)
from repro.util.bitops import popcount
from repro.util.validation import check_dimension, check_node, check_partition

__all__ = [
    "BarrierStep",
    "CommProgram",
    "LocalShuffleStep",
    "PairStep",
    "ProgramStep",
    "SendStep",
    "allgather_doubling_steps",
    "allgather_exchange_steps",
    "broadcast_binomial_steps",
    "broadcast_direct_steps",
    "exchange_steps",
    "naive_rotation_steps",
    "pattern_program",
    "scatter_direct_steps",
    "scatter_halving_steps",
]


@dataclass(frozen=True)
class BarrierStep:
    """Global synchronization: all nodes release ``γ·d`` after arrival."""


@dataclass(frozen=True)
class SendStep:
    """One FORCED one-way send ``src -> dst`` of ``bytes_per_m·m`` bytes.

    Priced with the plain constants (``λ``, ``δ``): one-directional
    traffic needs no pairwise handshake (§7.3).
    """

    src: int
    dst: int
    bytes_per_m: int

    @property
    def hops(self) -> int:
        """Circuit length under e-cube routing."""
        return popcount(self.src ^ self.dst)


@dataclass(frozen=True)
class PairStep:
    """A synchronized pairwise exchange across XOR mask ``shift``.

    Every node swaps ``bytes_per_m·m`` bytes with ``node ^ shift``,
    priced with the §7.4 effective constants (``λ_eff``, ``δ_eff``).
    """

    shift: int
    bytes_per_m: int

    @property
    def hops(self) -> int:
        """Distance between every pair (= popcount of the shift)."""
        return popcount(self.shift)


@dataclass(frozen=True)
class LocalShuffleStep:
    """Local data permutation: ``ρ`` per byte of ``bytes_per_m·m``."""

    bytes_per_m: int


ProgramStep = Union[BarrierStep, SendStep, PairStep, LocalShuffleStep]


@dataclass(frozen=True)
class CommProgram:
    """A named communication program as a hashable step stream.

    ``steps`` is the critical-path chain (see module docstring);
    ``contended`` marks programs whose cost is serialization rather
    than the chain sum (the compiler refuses them); ``partition`` is
    carried for exchange-backed programs so consumers can trace the
    schedule a program prices.
    """

    name: str
    d: int
    steps: tuple[ProgramStep, ...] = field(default=())
    contended: bool = False
    partition: tuple[int, ...] | None = None

    @property
    def n_steps(self) -> int:
        return len(self.steps)


# ----------------------------------------------------------------------
# exchange programs (lowered from the compiled schedules)
# ----------------------------------------------------------------------
def exchange_steps(d: int, partition: Sequence[int] | None = None) -> CommProgram:
    """The multiphase complete exchange as a program step stream.

    Lowers :func:`repro.core.schedule.multiphase_schedule` step for
    step: ``PhaseStart`` → barrier, ``ExchangeStep`` → pairwise swap of
    the effective block ``m·2**(d-d_i)``, ``ShuffleStep`` → one local
    pass over the full ``m·2**d`` buffer.  ``partition=None`` selects
    the single-phase ``(d,)`` schedule, like
    :func:`repro.comm.program.simulate_exchange`.
    """
    check_dimension(d, minimum=1)
    parts = check_partition(partition if partition is not None else (d,), d)
    steps: list[ProgramStep] = []
    for step in multiphase_schedule(d, parts):
        if isinstance(step, PhaseStart):
            steps.append(BarrierStep())
        elif isinstance(step, ExchangeStep):
            steps.append(PairStep(
                shift=step.offset << step.group.lo,
                bytes_per_m=1 << (d - step.group.width),
            ))
        elif isinstance(step, ShuffleStep):
            steps.append(LocalShuffleStep(bytes_per_m=1 << d))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step type {type(step).__name__}")
    return CommProgram(name="exchange", d=d, steps=tuple(steps), partition=parts)


def naive_rotation_steps(d: int) -> CommProgram:
    """The naive rotation baseline, marked contended.

    The step stream records one node's rotation chain (rank 0's — every
    rank's is a relabeling) for structural verification, but the chain
    sum is *not* the program's cost: the schedule's price is link/port
    serialization, so the program carries ``contended=True`` and the
    fast path prices it with the reservation replay.
    """
    check_dimension(d, minimum=1)
    n = 1 << d
    steps: list[ProgramStep] = [BarrierStep()]
    steps.extend(SendStep(src=0, dst=s % n, bytes_per_m=1) for s in range(1, n))
    return CommProgram(name="naive", d=d, steps=tuple(steps), contended=True)


# ----------------------------------------------------------------------
# §9 pattern programs
# ----------------------------------------------------------------------
def broadcast_binomial_steps(d: int, root: int = 0) -> CommProgram:
    """Binomial (subcube-doubling) broadcast: the root's send chain.

    Step ``j`` forwards the whole message across dimension ``j``; every
    reached node's forwarding chain accumulates the same per-step
    duration ``λ + τ·m + δ``, so the root chain is the exact makespan.
    """
    check_dimension(d, minimum=1)
    check_node(root, d)
    steps: list[ProgramStep] = [BarrierStep()]
    steps.extend(
        SendStep(src=root, dst=root ^ (1 << j), bytes_per_m=1) for j in range(d)
    )
    return CommProgram(name="broadcast/binomial", d=d, steps=tuple(steps))


def broadcast_direct_steps(d: int, root: int = 0) -> CommProgram:
    """Direct-circuit broadcast: the root circuits to every node in
    turn (ascending destination order, as the SPMD program sends),
    serialized at its own port."""
    check_dimension(d, minimum=1)
    check_node(root, d)
    steps: list[ProgramStep] = [BarrierStep()]
    steps.extend(
        SendStep(src=root, dst=dst, bytes_per_m=1)
        for dst in range(1 << d)
        if dst != root
    )
    return CommProgram(name="broadcast/direct", d=d, steps=tuple(steps))


def scatter_halving_steps(d: int, root: int = 0) -> CommProgram:
    """Recursive-halving scatter: the root's chain, dimensions high to
    low; step over dimension ``j`` forwards the ``2**j`` blocks bound
    for the other subcube."""
    check_dimension(d, minimum=1)
    check_node(root, d)
    steps: list[ProgramStep] = [BarrierStep()]
    steps.extend(
        SendStep(src=root, dst=root ^ (1 << j), bytes_per_m=1 << j)
        for j in range(d - 1, -1, -1)
    )
    return CommProgram(name="scatter/halving", d=d, steps=tuple(steps))


def scatter_direct_steps(d: int, root: int = 0) -> CommProgram:
    """Direct-circuit scatter: one block to every node in turn — the
    same chain shape as the direct broadcast, one block per circuit."""
    check_dimension(d, minimum=1)
    check_node(root, d)
    steps: list[ProgramStep] = [BarrierStep()]
    steps.extend(
        SendStep(src=root, dst=dst, bytes_per_m=1)
        for dst in range(1 << d)
        if dst != root
    )
    return CommProgram(name="scatter/direct", d=d, steps=tuple(steps))


def allgather_doubling_steps(d: int) -> CommProgram:
    """Recursive-doubling allgather: ``d`` synchronized neighbour
    exchanges of doubling size ``m·2**j`` — fully lockstep."""
    check_dimension(d, minimum=1)
    steps: list[ProgramStep] = [BarrierStep()]
    steps.extend(PairStep(shift=1 << j, bytes_per_m=1 << j) for j in range(d))
    return CommProgram(name="allgather/doubling", d=d, steps=tuple(steps))


def allgather_exchange_steps(
    d: int, partition: Sequence[int] | None = None
) -> CommProgram:
    """Allgather realized as a complete exchange at ``partition`` —
    the exchange program under the pattern's name."""
    base = exchange_steps(d, partition)
    return CommProgram(
        name="allgather/exchange", d=d, steps=base.steps, partition=base.partition
    )


#: pattern/algorithm -> builder, the compiler-facing §9 registry
_PATTERN_BUILDERS = {
    ("broadcast", "binomial"): broadcast_binomial_steps,
    ("broadcast", "direct"): broadcast_direct_steps,
    ("scatter", "halving"): scatter_halving_steps,
    ("scatter", "direct"): scatter_direct_steps,
}


def pattern_program(
    pattern: str,
    algorithm: str,
    d: int,
    *,
    partition: Sequence[int] | None = None,
    root: int = 0,
) -> CommProgram:
    """The :class:`CommProgram` for one §9 pattern algorithm.

    ``partition`` applies only to allgather's ``exchange`` algorithm;
    ``root`` to the rooted patterns (broadcast, scatter).

    >>> pattern_program("broadcast", "binomial", 3).n_steps
    4
    >>> pattern_program("allgather", "doubling", 3).name
    'allgather/doubling'
    """
    if pattern == "allgather":
        if algorithm == "doubling":
            return allgather_doubling_steps(d)
        if algorithm == "exchange":
            return allgather_exchange_steps(d, partition)
        raise ValueError(
            f"unknown allgather algorithm {algorithm!r}; "
            f"expected 'doubling' or 'exchange'"
        )
    try:
        builder = _PATTERN_BUILDERS[(pattern, algorithm)]
    except KeyError:
        raise ValueError(
            f"no program for pattern {pattern!r} algorithm {algorithm!r}; "
            f"have {sorted(_PATTERN_BUILDERS)} plus allgather "
            f"doubling/exchange"
        ) from None
    return builder(d, root)
