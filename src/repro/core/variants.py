"""Alternative pairwise-exchange schedule orderings (paper §4.2, ref. [3]).

The paper uses the Schmiermund–Seidel schedule with offsets in index
order (``1, 2, ..., 2**d_i - 1``) but notes that "other schedules are
possible — some of these have advantages over certain ranges of block
size" (explored in the companion ICASE report 91-4).  The correctness
and total cost of a phase are *order-invariant*: any permutation of
the offsets exchanges the same blocks over the same distances, and
each step remains individually contention-free.  What changes is the
temporal profile — which matters once phases are pipelined with
computation or run without full synchronization.

This module provides the orderings discussed there:

``index``
    The paper's ascending-offset order.
``distance``
    Offsets sorted by path length (nearest partners first): front-loads
    the cheap steps, useful when overlapping the tail with computation.
``distance_desc``
    Farthest first: drains the long circuits early.
``gray``
    Offsets in binary-reflected Gray sequence; consecutive steps differ
    in partner by one dimension, minimizing circuit "teardown churn"
    between steps.

All orderings are validated contention-free and produce byte-identical
exchanges (tests), and :func:`distance_profile` exposes the per-step
hop sequence the orderings differ by.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, Step
from repro.hypercube.subcube import phase_bit_groups
from repro.util.bitops import gray_code, popcount
from repro.util.validation import check_partition

__all__ = [
    "ORDERINGS",
    "distance_profile",
    "offset_order",
    "multiphase_schedule_ordered",
]

ORDERINGS = ("index", "distance", "distance_desc", "gray")


def offset_order(width: int, ordering: str) -> list[int]:
    """The non-zero offsets of a ``width``-dimensional phase in the
    requested ordering.

    >>> offset_order(3, "index")
    [1, 2, 3, 4, 5, 6, 7]
    >>> offset_order(3, "distance")
    [1, 2, 4, 3, 5, 6, 7]
    >>> offset_order(3, "gray")
    [1, 3, 2, 6, 7, 5, 4]
    """
    if width < 1:
        raise ValueError(f"phase width must be >= 1, got {width}")
    offsets = list(range(1, 1 << width))
    if ordering == "index":
        return offsets
    if ordering == "distance":
        return sorted(offsets, key=lambda o: (popcount(o), o))
    if ordering == "distance_desc":
        return sorted(offsets, key=lambda o: (-popcount(o), o))
    if ordering == "gray":
        return [gray_code(i) for i in range(1, 1 << width)]
    raise ValueError(f"unknown ordering {ordering!r}; have {ORDERINGS}")


def multiphase_schedule_ordered(
    d: int, partition: Sequence[int], ordering: str = "index"
) -> list[Step]:
    """The multiphase schedule with a chosen within-phase offset order.

    ``ordering='index'`` reproduces
    :func:`repro.core.schedule.multiphase_schedule` exactly.
    """
    parts = check_partition(partition, d)
    groups = phase_bit_groups(parts, d)
    k = len(parts)
    steps: list[Step] = []
    for i, (di, group) in enumerate(zip(parts, groups)):
        steps.append(PhaseStart(phase_index=i, group=group, n_exchanges=(1 << di) - 1))
        for offset in offset_order(di, ordering):
            steps.append(ExchangeStep(phase_index=i, group=group, offset=offset))
        if k > 1:
            steps.append(ShuffleStep(phase_index=i, times=di))
    return steps


def distance_profile(steps: Sequence[Step]) -> list[int]:
    """Per-exchange-step hop distances, in execution order.

    The multiset is ordering-invariant (total distance is fixed at
    ``Σ d_i·2**(d_i-1)``); the sequence is what the orderings shape.
    """
    return [step.hops for step in steps if isinstance(step, ExchangeStep)]
