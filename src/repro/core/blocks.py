"""Tagged block storage for complete-exchange data movement.

Every node of an ``n = 2**d`` machine starts with ``n`` blocks of ``m``
bytes, block ``j`` destined for node ``j``; a correct complete exchange
leaves every node holding the ``n`` blocks addressed to it, one from
each origin.  :class:`BlockBuffer` stores the blocks with explicit
``(origin, dest)`` tags plus numpy byte payloads, so the exchange
algorithms can be verified byte-for-byte rather than by counting
messages.

The buffer is deliberately *rule-oriented* rather than layout-oriented:
blocks are selected by destination bit fields (the invariant the
algorithms maintain), independent of physical position.  The companion
:mod:`repro.core.shuffle` module implements the physically-contiguous
layout discipline of the real machine; the two are cross-validated in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypercube.subcube import BitGroup
from repro.util.bitops import bit_field
from repro.util.validation import check_dimension, check_node

__all__ = ["BlockBuffer", "BlockSet", "payload_pattern"]

#: Modulus for the deterministic payload pattern.  A prime below 256 so
#: that distinct (origin, dest, offset) triples rarely collide.
_PATTERN_MOD = 251


def payload_pattern(origin: int, dest: int, m: int, d: int) -> np.ndarray:
    """Deterministic, verifiable payload for the block ``origin -> dest``.

    The byte at offset ``i`` is ``((origin * n + dest) * 31 + i * 7) % 251``
    with ``n = 2**d``; any corruption, misrouting, or mis-sizing shows
    up as a mismatch against this pattern.
    """
    if m < 0:
        raise ValueError(f"block size must be >= 0, got {m}")
    n = 1 << d
    base = (origin * n + dest) * 31
    return ((base + np.arange(m, dtype=np.int64) * 7) % _PATTERN_MOD).astype(np.uint8)


@dataclass
class BlockSet:
    """A batch of blocks in flight: parallel tag arrays plus payload rows.

    ``origins``/``dests`` are int64 arrays of length ``B``; ``payload``
    is a ``(B, m)`` uint8 array whose row ``i`` is the data of block
    ``(origins[i], dests[i])``.
    """

    origins: np.ndarray
    dests: np.ndarray
    payload: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.origins) == len(self.dests) == len(self.payload)):
            raise ValueError(
                f"inconsistent block set: {len(self.origins)} origins, "
                f"{len(self.dests)} dests, {len(self.payload)} payload rows"
            )

    @property
    def n_blocks(self) -> int:
        return len(self.origins)

    @property
    def nbytes(self) -> int:
        """Total payload bytes (what a transmission of this set carries)."""
        return int(self.payload.size)

    def sorted_by_dest(self) -> "BlockSet":
        """Stable sort by (dest, origin); normalizes wire order."""
        order = np.lexsort((self.origins, self.dests))
        return BlockSet(self.origins[order], self.dests[order], self.payload[order])


class BlockBuffer:
    """Per-node block store for a complete exchange.

    Parameters
    ----------
    node:
        Label of the owning node.
    d:
        Cube dimension.
    m:
        Block size in bytes (>= 0; zero-byte blocks still carry tags,
        matching the paper's m=0 measurements).

    Examples
    --------
    >>> buf = BlockBuffer.initial(node=2, d=2, m=4)
    >>> buf.n_blocks
    4
    >>> sorted(buf.dests.tolist())
    [0, 1, 2, 3]
    """

    def __init__(self, node: int, d: int, m: int, blocks: BlockSet) -> None:
        check_dimension(d)
        check_node(node, d)
        self.node = node
        self.d = d
        self.m = int(m)
        self._blocks = blocks

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, node: int, d: int, m: int) -> "BlockBuffer":
        """The pre-exchange state: one block for every destination."""
        n = 1 << d
        origins = np.full(n, node, dtype=np.int64)
        dests = np.arange(n, dtype=np.int64)
        payload = np.empty((n, m), dtype=np.uint8)
        for dest in range(n):
            payload[dest] = payload_pattern(node, dest, m, d)
        return cls(node, d, m, BlockSet(origins, dests, payload))

    @classmethod
    def from_rows(cls, node: int, d: int, rows: np.ndarray) -> "BlockBuffer":
        """Build the initial state from user data.

        ``rows`` is an ``(n, m)`` uint8 array; row ``j`` is the block this
        node sends to node ``j``.  Used by the application kernels
        (transpose, FFT, table lookup) to exchange real data.
        """
        n = 1 << d
        rows = np.ascontiguousarray(rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[0] != n:
            raise ValueError(f"expected ({n}, m) rows, got shape {rows.shape}")
        origins = np.full(n, node, dtype=np.int64)
        dests = np.arange(n, dtype=np.int64)
        return cls(node, d, rows.shape[1], BlockSet(origins, dests, rows.copy()))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self._blocks.n_blocks

    @property
    def origins(self) -> np.ndarray:
        return self._blocks.origins

    @property
    def dests(self) -> np.ndarray:
        return self._blocks.dests

    @property
    def payload(self) -> np.ndarray:
        return self._blocks.payload

    @property
    def total_bytes(self) -> int:
        return self._blocks.nbytes

    # ------------------------------------------------------------------
    # exchange operations
    # ------------------------------------------------------------------
    def extract_for_coordinate(self, group: BitGroup, coordinate: int) -> BlockSet:
        """Remove and return all blocks whose dest has ``coordinate`` in
        ``group``.

        This is the multiphase send rule: in a phase on ``group``, the
        blocks bound for subcube partner ``p`` are exactly those whose
        destination agrees with ``p`` on the group bits.  The extracted
        set is the *effective block* of the paper: ``m * 2**(d - d_i)``
        bytes when called mid-phase on a consistent buffer.
        """
        mask = self._field(self._blocks.dests, group) == coordinate
        return self._extract(mask)

    def extract_for_dest_bit(self, bit_index: int, bit_value: int) -> BlockSet:
        """Remove and return blocks whose dest bit ``bit_index`` equals
        ``bit_value`` — the Standard Exchange step rule."""
        mask = ((self._blocks.dests >> bit_index) & 1) == bit_value
        return self._extract(mask)

    def insert(self, incoming: BlockSet) -> None:
        """Add received blocks to the buffer."""
        if incoming.payload.shape[1:] != (self.m,):
            raise ValueError(
                f"received payload rows of width {incoming.payload.shape[1:]}, "
                f"expected ({self.m},)"
            )
        blocks = self._blocks
        self._blocks = BlockSet(
            np.concatenate([blocks.origins, incoming.origins]),
            np.concatenate([blocks.dests, incoming.dests]),
            np.concatenate([blocks.payload, incoming.payload]),
        )

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def dest_field_values(self, group: BitGroup) -> np.ndarray:
        """Distinct group-coordinates among held destinations (sorted)."""
        return np.unique(self._field(self._blocks.dests, group))

    def is_complete_exchange_result(self) -> bool:
        """True iff this buffer is a correct post-exchange state."""
        try:
            self.verify_complete_exchange_result()
        except AssertionError:
            return False
        return True

    def verify_complete_exchange_result(self, *, check_payload: bool = True) -> None:
        """Assert the post-exchange invariants, with precise messages.

        * exactly ``n`` blocks are held;
        * every destination equals this node;
        * origins are exactly ``0 .. n-1`` (one block from each node);
        * every payload matches :func:`payload_pattern` for its tags
          (skipped for user data via ``check_payload=False``).
        """
        n = 1 << self.d
        blocks = self._blocks
        assert blocks.n_blocks == n, (
            f"node {self.node}: holds {blocks.n_blocks} blocks, expected {n}"
        )
        wrong_dest = blocks.dests != self.node
        assert not wrong_dest.any(), (
            f"node {self.node}: {int(wrong_dest.sum())} blocks with foreign destinations "
            f"{np.unique(blocks.dests[wrong_dest]).tolist()}"
        )
        origins = np.sort(blocks.origins)
        assert np.array_equal(origins, np.arange(n)), (
            f"node {self.node}: origins {origins.tolist()} are not a permutation of 0..{n - 1}"
        )
        if check_payload and self.m > 0:
            for i in range(blocks.n_blocks):
                expected = payload_pattern(int(blocks.origins[i]), self.node, self.m, self.d)
                assert np.array_equal(blocks.payload[i], expected), (
                    f"node {self.node}: payload of block from {int(blocks.origins[i])} corrupted"
                )

    def result_rows(self) -> np.ndarray:
        """Post-exchange payload as an ``(n, m)`` array ordered by origin.

        Row ``j`` is the block node ``j`` sent to this node.  Raises if
        the buffer is not a complete post-exchange state.
        """
        self.verify_complete_exchange_result(check_payload=False)
        order = np.argsort(self._blocks.origins)
        return self._blocks.payload[order]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _field(labels: np.ndarray, group: BitGroup) -> np.ndarray:
        return (labels >> group.lo) & ((1 << group.width) - 1)

    def _extract(self, mask: np.ndarray) -> BlockSet:
        blocks = self._blocks
        out = BlockSet(blocks.origins[mask], blocks.dests[mask], blocks.payload[mask])
        keep = ~mask
        self._blocks = BlockSet(blocks.origins[keep], blocks.dests[keep], blocks.payload[keep])
        return out

    def coordinate(self, group: BitGroup) -> int:
        """This node's coordinate within its subcube for ``group``."""
        return bit_field(self.node, group.lo, group.width)

    def __repr__(self) -> str:
        return (
            f"BlockBuffer(node={self.node}, d={self.d}, m={self.m}, "
            f"n_blocks={self.n_blocks})"
        )
