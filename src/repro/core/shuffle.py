"""Block shuffles and the contiguous-layout discipline (paper Fig. 3).

On the real machine the ``2**d`` blocks of a node live in one
contiguous buffer, and each multiphase transmission must send a
*contiguous* superblock (a single ``csend``).  The paper's *shuffles*
are the in-memory permutations that restore contiguity between phases:
"shuffle blocks d_i times" after the phase on a ``d_i``-dimensional
subcube group.

This module establishes (and :mod:`tests.core.test_shuffle` verifies)
the precise meaning of one elementary shuffle: **one left rotation of
the d-bit block index**.  Concretely, with the layout invariant

    at the start of phase *i* the block index reads, MSB first,
    ``[dest G_i | dest G_{i+1} | ... | dest G_k | origin G_1 | ... | origin G_{i-1}]``

a phase's pairwise exchanges swap equal-index contiguous runs (the top
``d_i`` index bits select the run), turning the top field into
``origin G_i``; rotating the whole index left by ``d_i`` then yields
the next phase's invariant, and after the final rotation every node is
exactly origin-sorted.  For ``k = 1`` the rotation is by ``d`` — the
identity — matching the paper's remark that the single-phase algorithm
needs no shuffling at all.

:class:`LayoutBuffer` implements this physically-contiguous engine; the
tag-based :class:`repro.core.blocks.BlockBuffer` engine is the oracle it
is cross-validated against.
"""

from __future__ import annotations

import numpy as np

from repro.hypercube.subcube import BitGroup
from repro.util.bitops import bit_field, rotate_bits_left, rotate_bits_right
from repro.util.validation import check_dimension, check_node

__all__ = [
    "LayoutBuffer",
    "apply_shuffle",
    "shuffle_gather_indices",
    "shuffle_permutation",
]


def shuffle_permutation(d: int, times: int) -> np.ndarray:
    """Destination map of ``times`` elementary shuffles on ``2**d`` blocks.

    Returns ``perm`` with ``perm[q]`` the new position of the block at
    position ``q``: ``new[perm[q]] = old[q]`` where
    ``perm[q] = rotate_bits_left(q, times, d)``.

    >>> shuffle_permutation(3, 1).tolist()
    [0, 2, 4, 6, 1, 3, 5, 7]
    """
    check_dimension(d, minimum=1)
    return np.array([rotate_bits_left(q, times, d) for q in range(1 << d)], dtype=np.int64)


def shuffle_gather_indices(d: int, times: int) -> np.ndarray:
    """Gather form of :func:`shuffle_permutation`.

    Returns ``idx`` with ``new[j] = old[idx[j]]``, i.e.
    ``idx[j] = rotate_bits_right(j, times, d)`` — the form numpy fancy
    indexing consumes in a single vectorized pass (the paper's ``rho``
    cost per byte buys exactly this pass).
    """
    check_dimension(d, minimum=1)
    return np.array([rotate_bits_right(j, times, d) for j in range(1 << d)], dtype=np.int64)


def apply_shuffle(blocks: np.ndarray, times: int, d: int) -> np.ndarray:
    """Apply ``times`` elementary shuffles to a block array.

    ``blocks`` has ``2**d`` rows (axis 0 indexes blocks); the result is
    a new array with rows permuted so that the row previously at ``q``
    lands at ``rotate_bits_left(q, times, d)``.
    """
    n = 1 << d
    if blocks.shape[0] != n:
        raise ValueError(f"expected {n} block rows, got {blocks.shape[0]}")
    return blocks[shuffle_gather_indices(d, times)]


class LayoutBuffer:
    """Physically-contiguous block buffer following the Fig. 3 discipline.

    Stores the node's ``2**d`` blocks in a single ``(2**d, m)`` array in
    the exact order a real implementation would: phase transmissions
    are contiguous row-runs, and phases are separated by
    :func:`apply_shuffle` rotations.

    The buffer also carries parallel origin/dest tag arrays so the
    layout invariant itself can be asserted at every step.
    """

    def __init__(self, node: int, d: int, m: int) -> None:
        check_dimension(d)
        check_node(node, d)
        self.node = node
        self.d = d
        self.m = int(m)
        n = 1 << d
        # Initial layout: index == destination (phase-1 invariant).
        from repro.core.blocks import payload_pattern

        self.payload = np.empty((n, m), dtype=np.uint8)
        for dest in range(n):
            self.payload[dest] = payload_pattern(node, dest, m, d)
        self.origins = np.full(n, node, dtype=np.int64)
        self.dests = np.arange(n, dtype=np.int64)

    @classmethod
    def from_rows(cls, node: int, d: int, rows: np.ndarray) -> "LayoutBuffer":
        """Initial layout from user data; row ``j`` goes to node ``j``."""
        n = 1 << d
        rows = np.ascontiguousarray(rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[0] != n:
            raise ValueError(f"expected ({n}, m) rows, got shape {rows.shape}")
        buf = cls.__new__(cls)
        buf.node = check_node(node, check_dimension(d))
        buf.d = d
        buf.m = rows.shape[1]
        buf.payload = rows.copy()
        buf.origins = np.full(n, node, dtype=np.int64)
        buf.dests = np.arange(n, dtype=np.int64)
        return buf

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self.payload.shape[0]

    def run_slice(self, group: BitGroup, run: int) -> slice:
        """Row range of superblock ``run`` for a phase of width ``group.width``.

        The top ``group.width`` index bits select the run, so run ``c``
        occupies rows ``[c * 2**(d - w), (c+1) * 2**(d - w))``.
        """
        width = group.width
        if not 0 <= run < (1 << width):
            raise ValueError(f"run {run} out of range for phase width {width}")
        span = 1 << (self.d - width)
        return slice(run * span, (run + 1) * span)

    def take_run(self, group: BitGroup, run: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copy out superblock ``run`` as ``(origins, dests, payload)``.

        The copy is what goes on the wire; the run's rows stay in place
        until :meth:`put_run` overwrites them with the partner's data.
        """
        sl = self.run_slice(group, run)
        return self.origins[sl].copy(), self.dests[sl].copy(), self.payload[sl].copy()

    def put_run(
        self,
        group: BitGroup,
        run: int,
        origins: np.ndarray,
        dests: np.ndarray,
        payload: np.ndarray,
    ) -> None:
        """Install a received superblock into row-run ``run``."""
        sl = self.run_slice(group, run)
        span = sl.stop - sl.start
        if len(origins) != span or len(dests) != span or payload.shape != (span, self.m):
            raise ValueError(
                f"received superblock of {len(origins)} blocks / shape {payload.shape}; "
                f"expected {span} rows of {self.m} bytes"
            )
        self.origins[sl] = origins
        self.dests[sl] = dests
        self.payload[sl] = payload

    def shuffle(self, times: int) -> None:
        """Apply ``times`` elementary shuffles (index-bit left rotations)."""
        idx = shuffle_gather_indices(self.d, times)
        self.payload = self.payload[idx]
        self.origins = self.origins[idx]
        self.dests = self.dests[idx]

    # ------------------------------------------------------------------
    # invariant checking
    # ------------------------------------------------------------------
    def check_phase_start_invariant(self, group: BitGroup) -> None:
        """Assert the top ``group.width`` index bits equal the dest
        coordinate in ``group`` — i.e. sends for this phase are
        contiguous runs."""
        w = group.width
        n = self.n_blocks
        top = np.arange(n) >> (self.d - w)
        coords = (self.dests >> group.lo) & ((1 << w) - 1)
        mismatch = top != coords
        assert not mismatch.any(), (
            f"node {self.node}: layout invariant broken at {int(mismatch.sum())} rows "
            f"for phase group lo={group.lo} width={w}"
        )

    def is_origin_sorted_result(self) -> bool:
        """True iff the buffer is the correct final state: row ``j``
        holds the block from origin ``j`` addressed to this node."""
        n = self.n_blocks
        if not np.array_equal(self.origins, np.arange(n)):
            return False
        return bool((self.dests == self.node).all())

    def verify_final(self, *, check_payload: bool = True) -> None:
        """Assert the final origin-sorted state, byte-checking payloads."""
        n = self.n_blocks
        assert np.array_equal(self.origins, np.arange(n)), (
            f"node {self.node}: final layout not origin-sorted: {self.origins.tolist()}"
        )
        assert (self.dests == self.node).all(), (
            f"node {self.node}: holds blocks for other destinations "
            f"{np.unique(self.dests[self.dests != self.node]).tolist()}"
        )
        if check_payload and self.m > 0:
            from repro.core.blocks import payload_pattern

            for origin in range(n):
                expected = payload_pattern(origin, self.node, self.m, self.d)
                assert np.array_equal(self.payload[origin], expected), (
                    f"node {self.node}: payload from origin {origin} corrupted"
                )

    def coordinate(self, group: BitGroup) -> int:
        """This node's coordinate within its subcube for ``group``."""
        return bit_field(self.node, group.lo, group.width)

    def __repr__(self) -> str:
        return f"LayoutBuffer(node={self.node}, d={self.d}, m={self.m})"
