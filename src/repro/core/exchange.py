"""Abstract (un-timed) execution of exchange schedules.

This module moves real bytes according to a compiled schedule, without
the discrete-event machinery: all nodes advance in lockstep, one step
at a time.  It is the fast path for correctness testing and for the
application kernels when no timing is required, and it doubles as the
reference oracle for the simulator (both must produce byte-identical
results).

Two interchangeable data engines are provided:

* ``engine="tags"`` — :class:`~repro.core.blocks.BlockBuffer`, which
  selects blocks by destination bit fields (rule-based, position-free);
* ``engine="layout"`` — :class:`~repro.core.shuffle.LayoutBuffer`, which
  reproduces the real machine's contiguous superblock layout and
  explicit shuffle permutations (paper Figure 3).

Both end origin-sorted and byte-verified; the test suite cross-checks
them step by step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.core.blocks import BlockBuffer, BlockSet
from repro.core.schedule import (
    ExchangeStep,
    PhaseStart,
    ShuffleStep,
    Step,
    multiphase_schedule,
)
from repro.core.shuffle import LayoutBuffer
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "ExchangeOutcome",
    "run_exchange",
    "run_exchange_on_rows",
    "run_naive_exchange_on_rows",
    "run_planned_exchange_on_rows",
]

Engine = Literal["tags", "layout"]


@dataclass
class ExchangeOutcome:
    """Result of an abstract exchange run.

    Attributes
    ----------
    buffers:
        Final per-node buffers (``BlockBuffer`` or ``LayoutBuffer``
        depending on the engine), indexed by node label.
    n_exchange_steps:
        Number of pairwise-exchange steps executed per node.
    bytes_sent_per_node:
        Payload bytes each node transmitted (identical across nodes by
        symmetry).
    trace:
        Per-step records ``(step_index, kind, detail)`` for debugging
        and for the Figure 3 walkthrough example.
    """

    buffers: list
    n_exchange_steps: int = 0
    bytes_sent_per_node: int = 0
    trace: list[tuple[int, str, str]] = field(default_factory=list)

    def verify(self, *, check_payload: bool = True) -> None:
        """Assert every node holds a correct complete-exchange result."""
        for buf in self.buffers:
            if isinstance(buf, LayoutBuffer):
                buf.verify_final(check_payload=check_payload)
            else:
                buf.verify_complete_exchange_result(check_payload=check_payload)

    def result_rows(self, node: int) -> np.ndarray:
        """Received blocks of ``node`` ordered by origin, ``(n, m)``."""
        buf = self.buffers[node]
        if isinstance(buf, LayoutBuffer):
            buf.verify_final(check_payload=False)
            return buf.payload
        return buf.result_rows()


def run_exchange(
    d: int,
    m: int,
    partition: Sequence[int] | None = None,
    *,
    engine: Engine = "tags",
    record_trace: bool = False,
) -> ExchangeOutcome:
    """Execute a complete exchange with pattern payloads and verify it.

    Parameters
    ----------
    d:
        Cube dimension (``2**d`` nodes).
    m:
        Block size in bytes.
    partition:
        Multiphase partition; defaults to ``(d,)`` (the single-phase
        Optimal Circuit-Switched algorithm).
    engine:
        ``"tags"`` (rule-based oracle) or ``"layout"`` (contiguous
        superblock engine with explicit shuffles).
    record_trace:
        Keep a human-readable per-step trace (used by the Figure 3
        walkthrough).

    >>> outcome = run_exchange(3, 8, (2, 1))
    >>> outcome.verify()
    >>> outcome.n_exchange_steps
    4
    """
    check_dimension(d, minimum=1)
    parts = check_partition(partition if partition is not None else (d,), d)
    steps = multiphase_schedule(d, parts)
    n = 1 << d
    if engine == "tags":
        buffers: list = [BlockBuffer.initial(node, d, m) for node in range(n)]
    elif engine == "layout":
        buffers = [LayoutBuffer(node, d, m) for node in range(n)]
    else:
        raise ValueError(f"unknown engine {engine!r}; expected 'tags' or 'layout'")
    outcome = _execute(steps, buffers, d, engine, record_trace)
    outcome.verify()
    return outcome


def run_exchange_on_rows(
    send_rows: Sequence[np.ndarray] | np.ndarray,
    partition: Sequence[int] | None = None,
    *,
    engine: Engine = "tags",
) -> list[np.ndarray]:
    """Complete exchange of user data; the library's data front door.

    ``send_rows[x]`` is node ``x``'s ``(n, m)`` uint8 array, row ``j``
    bound for node ``j``.  Returns ``recv_rows`` with ``recv_rows[x][j]``
    equal to ``send_rows[j][x]`` — the defining equation of the complete
    exchange (and of the block matrix transpose, Figure 2).
    """
    rows, d = _normalize_rows(send_rows)
    if d == 0:
        return [rows[0].copy()]
    return _rows_exchange(rows, d, partition, engine)


def _rows_exchange(
    rows: list[np.ndarray],
    d: int,
    partition: Sequence[int] | None,
    engine: Engine,
) -> list[np.ndarray]:
    """Multiphase exchange of already-normalized rows (``d >= 1``)."""
    n = len(rows)
    parts = check_partition(partition if partition is not None else (d,), d)
    steps = multiphase_schedule(d, parts)
    if engine == "tags":
        buffers: list = [BlockBuffer.from_rows(x, d, rows[x]) for x in range(n)]
    elif engine == "layout":
        buffers = [LayoutBuffer.from_rows(x, d, rows[x]) for x in range(n)]
    else:
        raise ValueError(f"unknown engine {engine!r}; expected 'tags' or 'layout'")
    outcome = _execute(steps, buffers, d, engine, record_trace=False)
    outcome.verify(check_payload=False)
    return [outcome.result_rows(x) for x in range(n)]


def _normalize_rows(send_rows: Sequence[np.ndarray] | np.ndarray) -> tuple[list[np.ndarray], int]:
    """Validate user send rows; returns ``(rows, d)``."""
    rows = [np.ascontiguousarray(r, dtype=np.uint8) for r in send_rows]
    n = len(rows)
    if n == 0 or (n & (n - 1)):
        raise ValueError(f"number of nodes must be a power of two, got {n}")
    d = n.bit_length() - 1
    for x, r in enumerate(rows):
        if r.ndim != 2 or r.shape[0] != n:
            raise ValueError(f"node {x}: expected ({n}, m) send rows, got {r.shape}")
        if r.shape[1] != rows[0].shape[1]:
            raise ValueError("all nodes must use the same block size")
    return rows, d


def run_naive_exchange_on_rows(
    send_rows: Sequence[np.ndarray] | np.ndarray,
) -> list[np.ndarray]:
    """Complete exchange of user data along the naive rotation schedule.

    Step ``s`` moves node ``x``'s block for ``(x + s) mod n`` — the
    textbook crossbar order of :func:`repro.comm.program.naive_program`,
    executed in lockstep on real bytes.  Data-wise the result equals
    :func:`run_exchange_on_rows` (any correct exchange must agree); the
    schedule only differs in *time* on the simulated machine, which is
    the point of keeping it as a baseline policy target.
    """
    rows, d = _normalize_rows(send_rows)
    if d == 0:
        return [rows[0].copy()]
    return _naive_rows_exchange(rows, d)


def _naive_rows_exchange(rows: list[np.ndarray], d: int) -> list[np.ndarray]:
    """Rotation-order exchange of already-normalized rows (``d >= 1``)."""
    from repro.hypercube.subcube import BitGroup

    n = 1 << d
    buffers = [BlockBuffer.from_rows(x, d, rows[x]) for x in range(n)]
    whole = BitGroup(lo=0, width=d)
    for s in range(1, n):
        extracted = {
            x: buffers[x].extract_for_coordinate(whole, (x + s) % n) for x in range(n)
        }
        for x in range(n):
            buffers[x].insert(extracted[(x - s) % n])
    for buf in buffers:
        buf.verify_complete_exchange_result(check_payload=False)
    return [buffers[x].result_rows() for x in range(n)]


def run_planned_exchange_on_rows(
    send_rows: Sequence[np.ndarray] | np.ndarray,
    planner,
    *,
    engine: Engine = "tags",
) -> list[np.ndarray]:
    """Complete exchange of user data, algorithm chosen by a planner.

    ``planner`` is any object with a ``decide(d, m) -> PlanDecision``
    method (normally :class:`repro.plan.CollectivePlanner`); the
    decision selects the naive rotation baseline or a multiphase
    partition per ``(d, m)`` at call time.  This is the data-layer
    entry point the apps route through.
    """
    rows, d = _normalize_rows(send_rows)
    if d == 0:
        return [rows[0].copy()]
    decision = planner.decide(d, rows[0].shape[1])
    if decision.algorithm == "naive":
        return _naive_rows_exchange(rows, d)
    return _rows_exchange(rows, d, decision.partition, engine)


# ----------------------------------------------------------------------
# lockstep execution
# ----------------------------------------------------------------------
def _execute(
    steps: list[Step],
    buffers: list,
    d: int,
    engine: Engine,
    record_trace: bool,
) -> ExchangeOutcome:
    outcome = ExchangeOutcome(buffers=buffers)
    n = 1 << d
    for idx, step in enumerate(steps):
        if isinstance(step, PhaseStart):
            if engine == "layout":
                for buf in buffers:
                    buf.check_phase_start_invariant(step.group)
            if record_trace:
                outcome.trace.append(
                    (idx, "phase", f"phase {step.phase_index}: bits "
                     f"{step.group.hi}..{step.group.lo}, {step.n_exchanges} exchanges")
                )
        elif isinstance(step, ExchangeStep):
            _apply_exchange(step, buffers, n, engine, outcome)
            if record_trace:
                outcome.trace.append(
                    (idx, "exchange", f"offset {step.offset} (<< {step.group.lo}), "
                     f"{step.hops} hops")
                )
        elif isinstance(step, ShuffleStep):
            if engine == "layout":
                for buf in buffers:
                    buf.shuffle(step.times)
            # The tag engine is position-free; shuffles are no-ops for
            # data placement (their cost is charged by the simulator).
            if record_trace:
                outcome.trace.append((idx, "shuffle", f"{step.times} elementary shuffles"))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step type {type(step).__name__}")
    return outcome


def _apply_exchange(
    step: ExchangeStep,
    buffers: list,
    n: int,
    engine: Engine,
    outcome: ExchangeOutcome,
) -> None:
    group = step.group
    shift = step.offset << group.lo
    outcome.n_exchange_steps += 1
    if engine == "tags":
        # Extract both directions first (the machine's exchanges are
        # concurrent and symmetric), then insert.
        extracted: dict[int, BlockSet] = {}
        for node in range(n):
            partner = node ^ shift
            partner_coord = (partner >> group.lo) & ((1 << group.width) - 1)
            extracted[node] = buffers[node].extract_for_coordinate(group, partner_coord)
        for node in range(n):
            partner = node ^ shift
            buffers[node].insert(extracted[partner])
        outcome.bytes_sent_per_node += extracted[0].nbytes
    else:
        taken: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for node in range(n):
            partner = node ^ shift
            partner_coord = (partner >> group.lo) & ((1 << group.width) - 1)
            taken[node] = buffers[node].take_run(group, partner_coord)
        for node in range(n):
            partner = node ^ shift
            partner_coord = (partner >> group.lo) & ((1 << group.width) - 1)
            buffers[node].put_run(group, partner_coord, *taken[partner])
        outcome.bytes_sent_per_node += taken[0][2].size
