"""The paper's primary contribution: complete-exchange algorithms.

Exposes the three algorithms (Standard Exchange, Optimal
Circuit-Switched, and the unifying multiphase algorithm), the compiled
schedules they share, the block/shuffle data engines, and integer
partition enumeration.
"""

from repro.core.blocks import BlockBuffer, BlockSet, payload_pattern
from repro.core.exchange import (
    ExchangeOutcome,
    run_exchange,
    run_exchange_on_rows,
    run_naive_exchange_on_rows,
    run_planned_exchange_on_rows,
)
from repro.core.multiphase import (
    effective_block_size,
    multiphase_exchange,
    total_transmissions,
)
from repro.core.optimal import optimal_exchange, optimal_partition, pairwise_partners
from repro.core.partitions import (
    cached_partitions,
    compositions,
    partition_count,
    partition_count_table,
    partitions,
)
from repro.core.schedule import (
    ExchangeStep,
    PhaseStart,
    ShuffleStep,
    multiphase_schedule,
    optimal_schedule,
    schedule_circuits,
    schedule_stats,
    schedule_stats_cache_info,
    standard_schedule,
    validate_contention_free,
)
from repro.core.shuffle import LayoutBuffer, apply_shuffle, shuffle_permutation
from repro.core.standard import standard_exchange, standard_partition
from repro.core.traffic import (
    best_partition_for_traffic,
    route_traffic,
    traffic_time,
    uniform_traffic,
)
from repro.core.variants import (
    ORDERINGS,
    distance_profile,
    multiphase_schedule_ordered,
    offset_order,
)
from repro.core.verify import alltoall_reference, assert_exchange_correct, exchange_defect

__all__ = [
    "BlockBuffer",
    "ORDERINGS",
    "best_partition_for_traffic",
    "distance_profile",
    "multiphase_schedule_ordered",
    "offset_order",
    "route_traffic",
    "traffic_time",
    "uniform_traffic",
    "BlockSet",
    "ExchangeOutcome",
    "ExchangeStep",
    "LayoutBuffer",
    "PhaseStart",
    "ShuffleStep",
    "alltoall_reference",
    "apply_shuffle",
    "assert_exchange_correct",
    "cached_partitions",
    "compositions",
    "effective_block_size",
    "exchange_defect",
    "multiphase_exchange",
    "multiphase_schedule",
    "optimal_exchange",
    "optimal_partition",
    "optimal_schedule",
    "pairwise_partners",
    "partition_count",
    "partition_count_table",
    "partitions",
    "payload_pattern",
    "run_exchange",
    "run_exchange_on_rows",
    "run_naive_exchange_on_rows",
    "run_planned_exchange_on_rows",
    "schedule_circuits",
    "schedule_stats",
    "schedule_stats_cache_info",
    "shuffle_permutation",
    "standard_exchange",
    "standard_partition",
    "standard_schedule",
    "total_transmissions",
    "validate_contention_free",
]
