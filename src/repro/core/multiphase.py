"""The unified multiphase complete-exchange algorithm (paper §5).

A complete exchange on a ``d``-cube with block size ``m`` is carried
out as ``k`` *partial exchanges* over a partition
``D = (d_1, ..., d_k)`` of ``d``: phase ``i`` runs the pairwise
circuit-switched schedule simultaneously on all subcubes spanned by a
``d_i``-bit group of label bits, but always moves all ``2**d`` blocks,
giving an *effective block size* of ``m_i = m * 2**(d - d_i)`` bytes
per transmission.  Phases are separated by block shuffles that restore
send contiguity (see :mod:`repro.core.shuffle`).

The two classical algorithms are the extreme partitions:
``(1,) * d`` is Standard Exchange and ``(d,)`` is the Optimal
Circuit-Switched algorithm.  Intermediate partitions "lengthen"
messages, buying back the per-message startup cost λ at the price of
extra volume and shuffles — the paper's central idea.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exchange import ExchangeOutcome, run_exchange
from repro.core.schedule import Step, multiphase_schedule
from repro.util.validation import check_partition

__all__ = [
    "effective_block_size",
    "multiphase_exchange",
    "multiphase_schedule",
    "phase_transmissions",
    "total_transmissions",
]


def effective_block_size(m: float, d: int, di: int) -> float:
    """Effective block size of a ``d_i``-dimensional phase:
    ``m * 2**(d - d_i)`` bytes (paper abstract and §5.2).

    >>> effective_block_size(24, 6, 2)
    384.0
    """
    if not 1 <= di <= d:
        raise ValueError(f"phase dimension {di} out of range 1..{d}")
    return float(m) * (1 << (d - di))


def phase_transmissions(di: int) -> int:
    """Transmissions per node in a ``d_i``-dimensional phase:
    ``2**d_i - 1``."""
    if di < 1:
        raise ValueError(f"phase dimension must be >= 1, got {di}")
    return (1 << di) - 1


def total_transmissions(partition: Sequence[int], d: int) -> int:
    """Transmissions per node over the whole multiphase exchange:
    ``sum(2**d_i - 1)``.

    Ranges from ``d`` (all-ones partition) to ``2**d - 1`` (single
    phase); every partition in between trades transmissions against
    bytes moved.
    """
    parts = check_partition(partition, d)
    return sum((1 << di) - 1 for di in parts)


def multiphase_exchange(
    d: int,
    m: int,
    partition: Sequence[int],
    *,
    engine: str = "tags",
    record_trace: bool = False,
) -> ExchangeOutcome:
    """Run a verified multiphase exchange with pattern payloads.

    >>> outcome = multiphase_exchange(4, 8, (2, 2))
    >>> outcome.n_exchange_steps   # two phases of 2**2 - 1 exchanges
    6
    """
    return run_exchange(
        d, m, partition, engine=engine, record_trace=record_trace  # type: ignore[arg-type]
    )


def schedule(d: int, partition: Sequence[int]) -> list[Step]:
    """The compiled multiphase step sequence for ``partition``."""
    return multiphase_schedule(d, partition)
