"""The Optimal Circuit-Switched algorithm (paper §4.2).

``2**d - 1`` transmissions of one block each, following the
Schmiermund–Seidel pairwise schedule: at step ``i`` every node
exchanges with ``node ^ i``.  The schedule is edge-contention-free
under e-cube routing — at step ``i`` a directed link ``u -> u ^ 2**b``
can only be used by the circuit whose source agrees with ``u`` on bits
``>= b`` and with ``u ^ i`` on bits ``< b``, which pins the source
uniquely (proved in :func:`contention_free_reason`, checked
exhaustively in the tests).

In the unified framework this is the multiphase algorithm with the
single-part partition ``(d,)``; no shuffles are needed because the
final index rotation by ``d`` is the identity (paper §7.4).
"""

from __future__ import annotations

from repro.core.exchange import ExchangeOutcome, run_exchange
from repro.core.schedule import Step, optimal_schedule
from repro.util.validation import check_dimension

__all__ = [
    "contention_free_reason",
    "optimal_exchange",
    "optimal_partition",
    "optimal_schedule",
    "optimal_transmissions",
    "pairwise_partners",
]


def optimal_partition(d: int) -> tuple[int, ...]:
    """The partition realizing the OCS algorithm: ``(d,)``."""
    check_dimension(d, minimum=1)
    return (d,)


def optimal_transmissions(d: int) -> int:
    """Transmissions per node: ``2**d - 1`` (one per destination)."""
    check_dimension(d, minimum=1)
    return (1 << d) - 1


def pairwise_partners(node: int, d: int) -> list[int]:
    """The node's partner sequence over the schedule: ``node ^ i`` for
    ``i = 1 .. 2**d - 1``.

    Every destination appears exactly once, and the relation is an
    involution at each step (``partner(partner(x)) == x``), which is
    what makes every step a clean pairwise exchange.
    """
    check_dimension(d, minimum=1)
    return [node ^ i for i in range(1, 1 << d)]


def contention_free_reason(u: int, b: int, offset: int, d: int) -> int:
    """The unique source whose step-``offset`` circuit can use link
    ``u -> u ^ 2**b``.

    e-cube routing corrects bits from the least significant end, so a
    circuit ``x -> x ^ offset`` crossing dimension ``b`` does so from
    the intermediate node that matches ``x ^ offset`` on bits below
    ``b`` and ``x`` on bits ``b`` and above.  Solving for ``x``::

        x = (u & high_mask) | ((u ^ offset) & low_mask)

    The tests confirm no other source's circuit touches the link, which
    is the Schmiermund–Seidel contention-freedom property.
    """
    check_dimension(d, minimum=1)
    if not (offset >> b) & 1:
        raise ValueError(f"offset {offset} does not cross dimension {b}")
    low_mask = (1 << b) - 1
    high_mask = ((1 << d) - 1) ^ low_mask
    return (u & high_mask) | ((u ^ offset) & low_mask)


def optimal_exchange(d: int, m: int, *, engine: str = "tags") -> ExchangeOutcome:
    """Run a verified Optimal Circuit-Switched exchange.

    >>> optimal_exchange(3, 4).n_exchange_steps
    7
    """
    return run_exchange(d, m, optimal_partition(d), engine=engine)  # type: ignore[arg-type]


def schedule(d: int) -> list[Step]:
    """The compiled OCS step sequence."""
    return optimal_schedule(d)
