"""The Standard Exchange algorithm (paper §4.1).

``d`` transmissions of ``2**(d-1)`` blocks each, every one across a
single dimension (distance 1, hence trivially contention-free), with a
block shuffle after each step.  Johnsson & Ho's classic hypercube
transpose.  In the unified framework it is exactly the multiphase
algorithm with the all-ones partition ``(1,) * d`` — this module is the
named front door plus the algorithm-specific analysis helpers.
"""

from __future__ import annotations

from repro.core.exchange import ExchangeOutcome, run_exchange
from repro.core.schedule import Step, standard_schedule
from repro.util.validation import check_dimension

__all__ = [
    "standard_exchange",
    "standard_partition",
    "standard_schedule",
    "standard_transmissions",
]


def standard_partition(d: int) -> tuple[int, ...]:
    """The partition realizing Standard Exchange: ``(1,) * d``."""
    check_dimension(d, minimum=1)
    return (1,) * d


def standard_transmissions(d: int) -> int:
    """Number of transmissions per node: ``d`` (``log n``)."""
    check_dimension(d, minimum=1)
    return d


def standard_blocks_per_transmission(d: int) -> int:
    """Blocks carried by each transmission: ``2**(d-1)`` (half the data)."""
    check_dimension(d, minimum=1)
    return 1 << (d - 1)


def standard_exchange(d: int, m: int, *, engine: str = "tags") -> ExchangeOutcome:
    """Run a verified Standard Exchange with pattern payloads.

    >>> standard_exchange(3, 4).n_exchange_steps
    3
    """
    return run_exchange(d, m, standard_partition(d), engine=engine)  # type: ignore[arg-type]


def schedule(d: int) -> list[Step]:
    """The compiled Standard Exchange step sequence."""
    return standard_schedule(d)
