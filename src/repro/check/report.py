"""Machine-readable results of the static analyzers.

A :class:`Violation` is one provable defect with full provenance: the
check that found it, the target it was found in (a schedule, a pattern,
a source file), where (step index or source line), a human message, a
machine-readable counterexample, and a fix hint.  A
:class:`CheckReport` aggregates violations next to the list of targets
that were *certified* clean — a passing check names what it proved,
not just the absence of complaints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["CheckReport", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One provable defect, with provenance.

    Attributes
    ----------
    check:
        Identifier of the invariant or lint rule that failed
        (e.g. ``"edge-contention"``, ``"async-blocking"``).
    target:
        What was being verified: a schedule label like
        ``"schedule d=5 {2,3}"`` or a source path.
    message:
        Human-readable statement of the defect.
    step_index:
        Index of the offending schedule step (domain checks; ``None``
        for code checks).
    line:
        1-based source line (code checks; ``None`` for domain checks).
    counterexample:
        Machine-readable evidence — e.g. the shared link and the
        circuits holding it, or the undelivered blocks.
    fix_hint:
        How to repair or allowlist the finding.
    """

    check: str
    target: str
    message: str
    step_index: int | None = None
    line: int | None = None
    counterexample: Mapping[str, Any] | None = None
    fix_hint: str | None = None

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready document (counterexample values stringified only
        where they are not already JSON-encodable)."""
        return {
            "check": self.check,
            "target": self.target,
            "message": self.message,
            "step_index": self.step_index,
            "line": self.line,
            "counterexample": _jsonable(self.counterexample),
            "fix_hint": self.fix_hint,
        }

    def describe(self) -> str:
        """One-line human rendering."""
        where = self.target
        if self.step_index is not None:
            where += f" step {self.step_index}"
        if self.line is not None:
            where += f":{self.line}"
        text = f"[{self.check}] {where}: {self.message}"
        if self.fix_hint:
            text += f"  (hint: {self.fix_hint})"
        return text


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of counterexample payloads to JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return str(value)


@dataclass
class CheckReport:
    """Aggregated result of one or more static checks.

    ``certified`` lists the targets proven clean; ``violations`` the
    defects found.  Reports merge with :meth:`extend` so the CLI can
    run the domain verifier and the lint engine into one document.
    """

    certified: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no violation was found."""
        return not self.violations

    def certify(self, target: str) -> None:
        """Record that ``target`` passed every applicable check."""
        self.certified.append(target)

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, other: "CheckReport") -> "CheckReport":
        """Merge ``other`` into this report (returns self for chaining)."""
        self.certified.extend(other.certified)
        self.violations.extend(other.violations)
        return self

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready document for ``repro check --json``."""
        return {
            "ok": self.ok,
            "certified": list(self.certified),
            "violations": [violation.as_dict() for violation in self.violations],
        }

    def render(self) -> str:
        """Human-readable summary, violations first."""
        lines = [violation.describe() for violation in self.violations]
        lines.append(
            f"{len(self.certified)} target(s) certified, "
            f"{len(self.violations)} violation(s)"
        )
        return "\n".join(lines)
