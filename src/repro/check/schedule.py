"""Static schedule verifier: whole-schedule proofs, no simulator.

Lifts the per-step contention oracle of
:mod:`repro.hypercube.contention` to whole-schedule certificates for
every compiled ``(d, partition)`` exchange schedule, §9 pattern
program, and planner-emitted collective — without invoking
:mod:`repro.sim.engine`.  Four invariant families:

* **circuit disjointness** — every step's circuit set is edge-disjoint
  (no two circuits share a directed link under e-cube) *and*
  port-disjoint (no node sources or sinks two circuits at once); a
  failure names the shared resource and the circuits holding it;
* **route legality** — every circuit's e-cube route starts at its
  source, ends at its destination, flips exactly one bit per hop, and
  crosses dimensions in strictly ascending order (the fixed routing
  every contention conclusion rests on);
* **block conservation** — an abstract (tag-only) replay of the step
  stream proves every block departs and arrives exactly once per
  phase-slice and that every node ends holding exactly the blocks
  destined for it: dropped steps surface as undelivered blocks,
  duplicated steps as vacuous transfers, wrong offsets as misrouted
  blocks;
* **coefficient fidelity** — the fast path's compiled per-step
  coefficients (:class:`repro.sim.fastpath.CompiledSchedule` for
  exchange schedules, :class:`repro.sim.fastpath.CompiledProgram` for
  the §9 pattern programs) must structurally match the step stream
  they claim to price.

Every function returns plain :class:`~repro.check.report.Violation`
lists so callers can compose them into one
:class:`~repro.check.report.CheckReport`; :func:`check_schedules` is
the ``repro check --schedules`` driver.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.check.report import CheckReport, Violation
from repro.core.partitions import partitions
from repro.core.programs import (
    BarrierStep,
    LocalShuffleStep,
    PairStep,
    SendStep,
    exchange_steps,
    pattern_program,
)
from repro.core.schedule import (
    ExchangeStep,
    PhaseStart,
    ShuffleStep,
    Step,
    multiphase_schedule,
    schedule_circuits,
)
from repro.hypercube.contention import analyze_contention
from repro.hypercube.routing import ecube_path_edges
from repro.model.params import PRESETS, MachineParams
from repro.plan.decision import PlanDecision, format_partition
from repro.sim.fastpath import (
    KIND_BARRIER,
    KIND_EXCHANGE,
    KIND_SEND,
    KIND_SHUFFLE,
    CompiledProgram,
    CompiledSchedule,
    compile_program,
    compile_schedule,
    naive_step_circuits,
)
from repro.util.bitops import popcount
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "CHECK_DIMS",
    "CHECK_SIZES",
    "check_schedules",
    "pattern_variants",
    "verify_block_conservation",
    "verify_circuit_steps",
    "verify_fastpath_coefficients",
    "verify_pattern",
    "verify_plan_decision",
    "verify_program_coefficients",
    "verify_schedule",
]

#: cube dimensions ``repro check --schedules`` certifies by default
CHECK_DIMS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
#: block sizes at which planner-emitted collectives are sampled
CHECK_SIZES: tuple[float, ...] = (8.0, 40.0, 160.0)

Circuit = tuple[int, int]


def _schedule_target(d: int, partition: Sequence[int]) -> str:
    return f"schedule d={d} {format_partition(partition)}"


# ----------------------------------------------------------------------
# circuit-level invariants: routes, ports, edges
# ----------------------------------------------------------------------
def verify_circuit_steps(
    circuit_steps: Sequence[Iterable[Circuit]],
    d: int,
    *,
    target: str,
    step_indices: Sequence[int] | None = None,
) -> list[Violation]:
    """Prove every step's circuit set route-legal and edge/port-disjoint.

    ``circuit_steps[i]`` is the set of ``(src, dst)`` circuits held
    simultaneously during step ``i``; ``step_indices`` maps each entry
    back to its position in a larger step stream for provenance.
    Self-circuits (``src == dst``) hold no resources and are ignored,
    matching :func:`~repro.hypercube.contention.analyze_contention`.
    """
    check_dimension(d, minimum=1)
    n = 1 << d
    violations: list[Violation] = []
    for position, raw_circuits in enumerate(circuit_steps):
        index = step_indices[position] if step_indices is not None else position
        circuits = [(src, dst) for src, dst in raw_circuits if src != dst]
        for src, dst in circuits:
            violations.extend(_verify_route(src, dst, n, target, index))
        violations.extend(_verify_ports(circuits, target, index))
        violations.extend(_verify_edges(circuits, target, index))
    return violations


def _verify_route(
    src: int, dst: int, n: int, target: str, index: int
) -> list[Violation]:
    """Route legality: in-range endpoints, one ascending bit per hop."""
    if not (0 <= src < n and 0 <= dst < n):
        return [Violation(
            check="ecube-route",
            target=target,
            message=f"circuit {src}->{dst} leaves the {n}-node cube",
            step_index=index,
            counterexample={"src": src, "dst": dst, "n_nodes": n},
            fix_hint="schedule offsets/groups must stay inside the cube's label bits",
        )]
    edges = ecube_path_edges(src, dst)
    violations: list[Violation] = []
    previous_dim = -1
    current = src
    for edge in edges:
        flipped = edge.src ^ edge.dst
        dim = flipped.bit_length() - 1
        if edge.src != current or popcount(flipped) != 1 or dim <= previous_dim:
            violations.append(Violation(
                check="ecube-route",
                target=target,
                message=(
                    f"circuit {src}->{dst}: hop {edge} is not a legal "
                    f"dimension-ordered e-cube hop"
                ),
                step_index=index,
                counterexample={
                    "src": src, "dst": dst, "hop": str(edge),
                    "previous_dimension": previous_dim,
                },
                fix_hint="e-cube must flip exactly one differing bit, lowest first",
            ))
            return violations
        previous_dim = dim
        current = edge.dst
    if current != dst or len(edges) != popcount(src ^ dst):
        violations.append(Violation(
            check="ecube-route",
            target=target,
            message=f"circuit {src}->{dst}: route ends at {current} "
                    f"after {len(edges)} hops (expected {popcount(src ^ dst)})",
            step_index=index,
            counterexample={"src": src, "dst": dst, "ends_at": current},
            fix_hint="the route must correct exactly the differing bits",
        ))
    return violations


def _verify_ports(
    circuits: Sequence[Circuit], target: str, index: int
) -> list[Violation]:
    """Port disjointness: no node sources or sinks two circuits."""
    violations: list[Violation] = []
    for role, position in (("source", 0), ("destination", 1)):
        seen: dict[int, list[Circuit]] = {}
        for circuit in circuits:
            seen.setdefault(circuit[position], []).append(circuit)
        for node, holders in sorted(seen.items()):
            if len(holders) > 1:
                violations.append(Violation(
                    check="port-contention",
                    target=target,
                    message=f"node {node} is the {role} of "
                            f"{len(holders)} simultaneous circuits",
                    step_index=index,
                    counterexample={"node": node, "role": role,
                                    "circuits": [list(c) for c in holders]},
                    fix_hint="a node's port serializes; one circuit per step per role",
                ))
    return violations


def _verify_edges(
    circuits: Sequence[Circuit], target: str, index: int
) -> list[Violation]:
    """Edge disjointness, with the sharing circuits as counterexample."""
    report = analyze_contention(circuits)
    violations: list[Violation] = []
    for link, load in sorted(report.edge_conflicts.items(), key=lambda kv: str(kv[0])):
        holders = [
            circuit for circuit in circuits
            if link in ecube_path_edges(*circuit)
        ]
        violations.append(Violation(
            check="edge-contention",
            target=target,
            message=f"link {link} is held by {load} circuits at once",
            step_index=index,
            counterexample={"link": str(link), "load": load,
                            "circuits": [list(c) for c in holders]},
            fix_hint="simultaneous circuits must use disjoint e-cube links "
                     "(paper §2: edge contention is disastrous)",
        ))
    return violations


# ----------------------------------------------------------------------
# block conservation: abstract tag-only replay of the step stream
# ----------------------------------------------------------------------
def verify_block_conservation(
    steps: Sequence[Step], d: int, *, target: str
) -> list[Violation]:
    """Prove the step stream delivers every block exactly once.

    Replays the schedule on a ``(origin, dest) -> holder`` matrix (the
    functional abstraction of the block buffers: no payload, just
    placement).  Invariants proven:

    * within each phase, every block whose destination's subcube
      coordinate differs from its holder's departs **exactly once**
      (``block-duplicated`` / ``block-undelivered`` otherwise), and
      blocks already home never move;
    * every exchange step moves at least one block somewhere in the
      cube (``vacuous-step`` — the signature of a duplicated step);
    * at each phase end every block sits at its destination coordinate
      within the phase's bit group (``block-misrouted``);
    * after the final step every node holds exactly the blocks destined
      for it (``block-undelivered`` with the block's actual location).

    Because every exchange is a symmetric swap of disjoint slices,
    departures equal arrivals by construction, so proving departures
    exact proves the paper's "each block is transmitted exactly once
    per phase" conservation law.
    """
    check_dimension(d, minimum=1)
    n = 1 << d
    dest = np.broadcast_to(np.arange(n), (n, n))          # dest[o, b] = b
    holder = np.tile(np.arange(n)[:, None], (1, n))       # holder[o, b] = o
    violations: list[Violation] = []

    phase_group = None
    phase_index = -1
    departs: np.ndarray | None = None
    expected: np.ndarray | None = None

    def close_phase() -> None:
        if phase_group is None:
            return
        assert departs is not None and expected is not None
        lo, width = phase_group.lo, phase_group.width
        mask = (1 << width) - 1
        dup = departs > expected
        missing = departs < expected
        stray = ((holder >> lo) & mask) != ((dest >> lo) & mask)
        for kind, where, message, hint in (
            ("block-duplicated", dup,
             "departed more than once within phase {p}",
             "a block must be transmitted exactly once per phase"),
            ("block-undelivered", missing,
             "never departed during phase {p} despite a differing "
             "subcube coordinate",
             "every off-coordinate block must be exchanged during its phase"),
            ("block-misrouted", stray,
             "ended phase {p} at the wrong subcube coordinate",
             "phase exchanges must deliver blocks to their coordinate "
             "in the phase's bit group"),
        ):
            origins, blocks = np.nonzero(where)
            if origins.size:
                origin, block = int(origins[0]), int(blocks[0])
                violations.append(Violation(
                    check=kind,
                    target=target,
                    message=f"block ({origin}->{block}) "
                            + message.format(p=phase_index),
                    counterexample={
                        "origin": origin, "dest": block,
                        "held_by": int(holder[origin, block]),
                        "phase": phase_index,
                        "n_affected_blocks": int(origins.size),
                    },
                    fix_hint=hint,
                ))

    for index, step in enumerate(steps):
        if isinstance(step, PhaseStart):
            close_phase()
            phase_group = step.group
            phase_index = step.phase_index
            if step.group.hi >= d:
                violations.append(Violation(
                    check="step-domain",
                    target=target,
                    message=f"phase bit group {step.group} exceeds the "
                            f"{d}-cube's label bits",
                    step_index=index,
                    counterexample={"lo": step.group.lo, "width": step.group.width},
                    fix_hint="bit groups must stay within 0..d-1",
                ))
                return violations
            lo, width = step.group.lo, step.group.width
            mask = (1 << width) - 1
            expected = (((holder >> lo) & mask) != ((dest >> lo) & mask)).astype(np.int64)
            departs = np.zeros((n, n), dtype=np.int64)
        elif isinstance(step, ExchangeStep):
            if phase_group is None or departs is None:
                violations.append(Violation(
                    check="phase-structure",
                    target=target,
                    message="exchange step before any phase start",
                    step_index=index,
                    fix_hint="every phase must open with a PhaseStart barrier "
                             "(FORCED messages are fatal without it, §7.3)",
                ))
                continue
            lo, width = step.group.lo, step.group.width
            mask = (1 << width) - 1
            shift = step.offset << lo
            if step.group.hi >= d:
                violations.append(Violation(
                    check="step-domain",
                    target=target,
                    message=f"exchange bit group {step.group} exceeds the "
                            f"{d}-cube's label bits",
                    step_index=index,
                    counterexample={"lo": lo, "width": width, "offset": step.offset},
                    fix_hint="bit groups must stay within 0..d-1",
                ))
                continue
            if step.group != phase_group:
                violations.append(Violation(
                    check="phase-structure",
                    target=target,
                    message=f"exchange step uses bit group {step.group} inside "
                            f"a phase on {phase_group}",
                    step_index=index,
                    fix_hint="all exchanges of a phase operate on the phase's bit group",
                ))
                continue
            moving = ((dest >> lo) & mask) == (((holder ^ shift) >> lo) & mask)
            if not moving.any():
                violations.append(Violation(
                    check="vacuous-step",
                    target=target,
                    message=f"exchange step (offset {step.offset}) moves no "
                            f"blocks — its slice was already exchanged",
                    step_index=index,
                    counterexample={"offset": step.offset, "lo": lo, "width": width},
                    fix_hint="duplicated offsets re-run an already-completed "
                             "exchange; each offset appears once per phase",
                ))
                continue
            departs += moving
            holder = np.where(moving, holder ^ shift, holder)
        elif isinstance(step, ShuffleStep):
            continue  # local permutation: no block changes nodes
        else:
            violations.append(Violation(
                check="phase-structure",
                target=target,
                message=f"unknown step type {type(step).__name__}",
                step_index=index,
            ))
    close_phase()

    final_stray = holder != dest
    origins, blocks = np.nonzero(final_stray)
    if origins.size:
        origin, block = int(origins[0]), int(blocks[0])
        violations.append(Violation(
            check="block-undelivered",
            target=target,
            message=f"block ({origin}->{block}) ends at node "
                    f"{int(holder[origin, block])}, not its destination",
            counterexample={
                "origin": origin, "dest": block,
                "held_by": int(holder[origin, block]),
                "n_affected_blocks": int(origins.size),
            },
            fix_hint="the phases must jointly cover every label bit exactly once",
        ))
    return violations


# ----------------------------------------------------------------------
# fast-path coefficient fidelity
# ----------------------------------------------------------------------
def verify_fastpath_coefficients(compiled: CompiledSchedule) -> list[Violation]:
    """Prove compiled fast-path coefficients match their step stream.

    Recomputes, independently from the step dataclasses, the per-step
    kind code, byte multiplier, and hop count that
    :func:`repro.sim.fastpath.compile_schedule` should have produced,
    and compares structurally.  Also proves the compiled step tuple is
    the canonical :func:`~repro.core.schedule.multiphase_schedule`
    stream for its ``(d, partition)`` — the fast path must price the
    schedule the executors actually run.
    """
    target = f"fastpath {_schedule_target(compiled.d, compiled.partition)}"
    violations: list[Violation] = []
    canonical = tuple(multiphase_schedule(compiled.d, compiled.partition))
    if compiled.steps != canonical:
        violations.append(Violation(
            check="coeff-mismatch",
            target=target,
            message="compiled step stream is not the canonical schedule "
                    f"for d={compiled.d} partition {compiled.partition}",
            counterexample={"n_compiled": len(compiled.steps),
                            "n_canonical": len(canonical)},
            fix_hint="recompile via repro.sim.fastpath.compile_schedule",
        ))
    arrays = (compiled.kinds, compiled.bytes_per_m, compiled.hops)
    if any(len(array) != len(compiled.steps) for array in arrays):
        violations.append(Violation(
            check="coeff-mismatch",
            target=target,
            message="coefficient arrays and step stream disagree in length",
            counterexample={"n_steps": len(compiled.steps),
                            "array_lengths": [len(a) for a in arrays]},
        ))
        return violations
    for index, step in enumerate(compiled.steps):
        if isinstance(step, PhaseStart):
            kind, nbytes, hops = KIND_BARRIER, 0, 0
        elif isinstance(step, ExchangeStep):
            kind = KIND_EXCHANGE
            nbytes = 2 ** (compiled.d - step.group.width)
            hops = popcount(step.offset)
        elif isinstance(step, ShuffleStep):
            kind, nbytes, hops = KIND_SHUFFLE, 2 ** compiled.d, 0
        else:
            violations.append(Violation(
                check="coeff-mismatch",
                target=target,
                message=f"unknown step type {type(step).__name__}",
                step_index=index,
            ))
            continue
        got = (int(compiled.kinds[index]), int(compiled.bytes_per_m[index]),
               int(compiled.hops[index]))
        if got != (kind, nbytes, hops):
            violations.append(Violation(
                check="coeff-mismatch",
                target=target,
                message=f"step {index} ({type(step).__name__}) compiled to "
                        f"kind/bytes/hops {got}, expected {(kind, nbytes, hops)}",
                step_index=index,
                counterexample={"compiled": list(got),
                                "expected": [kind, nbytes, hops]},
                fix_hint="the affine timing coefficients must mirror the step "
                         "stream term for term",
            ))
    return violations


def verify_program_coefficients(compiled: CompiledProgram) -> list[Violation]:
    """Prove a compiled program's coefficients match its step stream.

    The :class:`~repro.sim.fastpath.CompiledProgram` analogue of
    :func:`verify_fastpath_coefficients`: recomputes, independently
    from the program step dataclasses, the per-step kind code, byte
    multiplier, and hop count :func:`repro.sim.fastpath.compile_program`
    should have produced — ``coeff-mismatch`` violations otherwise —
    and proves each step structurally legal (endpoints inside the cube,
    no self-sends, pair shifts in range: ``program-structure``).
    """
    program = compiled.program
    target = f"fastpath program {program.name} d={program.d}"
    n = 1 << program.d
    violations: list[Violation] = []
    arrays = (compiled.kinds, compiled.bytes_per_m, compiled.hops)
    if any(len(array) != len(program.steps) for array in arrays):
        violations.append(Violation(
            check="coeff-mismatch",
            target=target,
            message="coefficient arrays and program step stream disagree in length",
            counterexample={"n_steps": len(program.steps),
                            "array_lengths": [len(a) for a in arrays]},
        ))
        return violations
    for index, step in enumerate(program.steps):
        if isinstance(step, BarrierStep):
            kind, nbytes, hops = KIND_BARRIER, 0, 0
        elif isinstance(step, SendStep):
            if (
                not (0 <= step.src < n and 0 <= step.dst < n)
                or step.src == step.dst
            ):
                violations.append(Violation(
                    check="program-structure",
                    target=target,
                    message=f"step {index}: send {step.src}->{step.dst} is "
                            f"not a legal circuit of the {program.d}-cube",
                    step_index=index,
                    counterexample={"src": step.src, "dst": step.dst, "n": n},
                    fix_hint="send endpoints must be distinct cube nodes",
                ))
                continue
            kind = KIND_SEND
            nbytes = step.bytes_per_m
            hops = popcount(step.src ^ step.dst)
        elif isinstance(step, PairStep):
            if not 1 <= step.shift < n:
                violations.append(Violation(
                    check="program-structure",
                    target=target,
                    message=f"step {index}: pair shift {step.shift} outside "
                            f"1..{n - 1}",
                    step_index=index,
                    counterexample={"shift": step.shift, "n": n},
                    fix_hint="a pairwise exchange must pair distinct cube nodes",
                ))
                continue
            kind = KIND_EXCHANGE
            nbytes = step.bytes_per_m
            hops = popcount(step.shift)
        elif isinstance(step, LocalShuffleStep):
            kind, nbytes, hops = KIND_SHUFFLE, step.bytes_per_m, 0
        else:
            violations.append(Violation(
                check="coeff-mismatch",
                target=target,
                message=f"unknown program step type {type(step).__name__}",
                step_index=index,
            ))
            continue
        got = (int(compiled.kinds[index]), int(compiled.bytes_per_m[index]),
               int(compiled.hops[index]))
        if got != (kind, nbytes, hops):
            violations.append(Violation(
                check="coeff-mismatch",
                target=target,
                message=f"step {index} ({type(step).__name__}) compiled to "
                        f"kind/bytes/hops {got}, expected {(kind, nbytes, hops)}",
                step_index=index,
                counterexample={"compiled": list(got),
                                "expected": [kind, nbytes, hops]},
                fix_hint="the affine timing coefficients must mirror the "
                         "program step stream term for term",
            ))
    return violations


# ----------------------------------------------------------------------
# whole-schedule certificates
# ----------------------------------------------------------------------
def verify_schedule_steps(
    steps: Sequence[Step], d: int, *, target: str
) -> list[Violation]:
    """All step-stream invariants for one schedule: circuits + blocks."""
    exchange_positions = [
        index for index, step in enumerate(steps) if isinstance(step, ExchangeStep)
    ]
    circuit_steps = [
        list(schedule_circuits(steps[index], d)) for index in exchange_positions
    ]
    violations = verify_circuit_steps(
        circuit_steps, d, target=target, step_indices=exchange_positions
    )
    violations.extend(verify_block_conservation(steps, d, target=target))
    return violations


def verify_schedule(d: int, partition: Sequence[int] | None = None) -> list[Violation]:
    """Certify one compiled ``(d, partition)`` exchange schedule.

    ``partition=None`` selects the single-phase ``(d,)`` schedule.
    Covers circuit disjointness, route legality, block conservation,
    and fast-path coefficient fidelity — of both the compiled schedule
    and its program-compiler lowering (the two fast paths must agree
    with the step stream *and* each other); an empty list is a
    certificate.
    """
    check_dimension(d, minimum=1)
    parts = check_partition(partition if partition is not None else (d,), d)
    steps = multiphase_schedule(d, parts)
    violations = verify_schedule_steps(steps, d, target=_schedule_target(d, parts))
    violations.extend(verify_fastpath_coefficients(compile_schedule(d, parts)))
    violations.extend(
        verify_program_coefficients(compile_program(exchange_steps(d, parts)))
    )
    return violations


# ----------------------------------------------------------------------
# §9 pattern programs
# ----------------------------------------------------------------------
#: pattern -> algorithms the static verifier certifies
PATTERN_ALGORITHMS: Mapping[str, tuple[str, ...]] = {
    "broadcast": ("binomial", "direct"),
    "scatter": ("halving", "direct"),
    "allgather": ("doubling",),
}


def pattern_variants() -> list[tuple[str, str]]:
    """Every ``(pattern, algorithm)`` pair the verifier can certify."""
    return [
        (pattern, algorithm)
        for pattern, algorithms in PATTERN_ALGORITHMS.items()
        for algorithm in algorithms
    ]


def verify_pattern(
    pattern: str, algorithm: str, d: int, *, root: int = 0
) -> list[Violation]:
    """Certify one §9 pattern program's static schedule.

    Derives the per-step circuit sets the SPMD programs of
    :mod:`repro.patterns` hold, proves each step edge/port-disjoint and
    route-legal, and proves delivery: broadcast informs every node
    exactly once, scatter lands every block at its owner, allgather
    ends with every node holding every origin.  (The allgather
    ``exchange`` variant is a complete exchange; certify it with
    :func:`verify_schedule` on its partition.)
    """
    check_dimension(d, minimum=1)
    target = f"pattern {pattern}/{algorithm} d={d} root={root}"
    n = 1 << d
    builders = {
        ("broadcast", "binomial"): _binomial_broadcast_steps,
        ("broadcast", "direct"): _direct_root_steps,
        ("scatter", "halving"): _halving_scatter_steps,
        ("scatter", "direct"): _direct_root_steps,
        ("allgather", "doubling"): _doubling_allgather_steps,
    }
    try:
        builder = builders[(pattern, algorithm)]
    except KeyError:
        raise ValueError(
            f"cannot statically verify pattern {pattern!r} algorithm "
            f"{algorithm!r}; have {sorted(builders)}"
        ) from None
    circuit_steps, delivery_violations = builder(d, root, target)
    violations = verify_circuit_steps(circuit_steps, d, target=target)
    violations.extend(delivery_violations)
    return violations


def _binomial_broadcast_steps(
    d: int, root: int, target: str
) -> tuple[list[list[Circuit]], list[Violation]]:
    """Subcube-doubling broadcast: step ``j`` doubles the informed set."""
    n = 1 << d
    informed = {root}
    steps: list[list[Circuit]] = []
    violations: list[Violation] = []
    for j in range(d):
        circuits = [
            (node, node ^ (1 << j))
            for node in sorted(informed)
            if (node ^ root) < (1 << j)
        ]
        for src, dst in circuits:
            if dst in informed:
                violations.append(Violation(
                    check="pattern-delivery",
                    target=target,
                    message=f"node {dst} informed twice (step {j})",
                    step_index=j,
                    counterexample={"node": dst, "step": j},
                    fix_hint="the binomial tree reaches each node exactly once",
                ))
        informed.update(dst for _, dst in circuits)
        steps.append(circuits)
    if len(informed) != n:
        missing = sorted(set(range(n)) - informed)
        violations.append(Violation(
            check="pattern-delivery",
            target=target,
            message=f"{len(missing)} node(s) never informed",
            counterexample={"missing": missing[:8]},
            fix_hint="after d doubling steps the informed set must be the cube",
        ))
    return steps, violations


def _direct_root_steps(
    d: int, root: int, target: str
) -> tuple[list[list[Circuit]], list[Violation]]:
    """Direct-circuit broadcast/scatter: the root circuits to every
    node in turn, serialized at its port (one circuit per step)."""
    n = 1 << d
    steps = [[(root, dst)] for dst in range(n) if dst != root]
    reached = {root} | {dst for (_, dst), in steps}
    violations: list[Violation] = []
    if len(reached) != n:
        violations.append(Violation(
            check="pattern-delivery",
            target=target,
            message="direct-circuit sweep misses nodes",
            counterexample={"missing": sorted(set(range(n)) - reached)[:8]},
        ))
    return steps, violations


def _halving_scatter_steps(
    d: int, root: int, target: str
) -> tuple[list[list[Circuit]], list[Violation]]:
    """Recursive-halving scatter down the binomial tree."""
    n = 1 << d
    holdings: dict[int, set[int]] = {root: set(range(n))}
    steps: list[list[Circuit]] = []
    violations: list[Violation] = []
    for step_index, j in enumerate(range(d - 1, -1, -1)):
        circuits: list[Circuit] = []
        moved: dict[int, set[int]] = {}
        for node in sorted(holdings):
            relative = node ^ root
            if (relative & ((1 << (j + 1)) - 1)) or (relative & (1 << j)):
                continue
            moving = {dest for dest in holdings[node] if (dest ^ root) & (1 << j)}
            if moving:
                partner = node ^ (1 << j)
                circuits.append((node, partner))
                moved[partner] = moving
                holdings[node] -= moving
        for partner, blocks in moved.items():
            already = holdings.setdefault(partner, set())
            duplicated = already & blocks
            if duplicated:
                violations.append(Violation(
                    check="block-duplicated",
                    target=target,
                    message=f"blocks {sorted(duplicated)[:4]} arrive twice "
                            f"at node {partner}",
                    step_index=step_index,
                    counterexample={"node": partner,
                                    "blocks": sorted(duplicated)[:8]},
                ))
            already |= blocks
        steps.append(circuits)
    for node in range(n):
        held = holdings.get(node, set())
        if held != {node}:
            violations.append(Violation(
                check="block-undelivered",
                target=target,
                message=f"node {node} ends holding {sorted(held)[:4]} "
                        f"instead of exactly its own block",
                counterexample={"node": node, "holds": sorted(held)[:8]},
                fix_hint="recursive halving must land block j at node j",
            ))
            break
    return steps, violations


def _doubling_allgather_steps(
    d: int, root: int, target: str
) -> tuple[list[list[Circuit]], list[Violation]]:
    """Recursive-doubling allgather: full neighbour pairing per step."""
    n = 1 << d
    holdings = [{node} for node in range(n)]
    steps: list[list[Circuit]] = []
    violations: list[Violation] = []
    for j in range(d):
        circuits = [(node, node ^ (1 << j)) for node in range(n)]
        snapshot = [set(h) for h in holdings]
        for node in range(n):
            holdings[node] |= snapshot[node ^ (1 << j)]
        steps.append(circuits)
    for node in range(n):
        if holdings[node] != set(range(n)):
            violations.append(Violation(
                check="block-undelivered",
                target=target,
                message=f"node {node} gathered only "
                        f"{len(holdings[node])}/{n} origins",
                counterexample={
                    "node": node,
                    "missing": sorted(set(range(n)) - holdings[node])[:8],
                },
            ))
            break
    return steps, violations


# ----------------------------------------------------------------------
# planner-emitted collectives
# ----------------------------------------------------------------------
def verify_plan_decision(decision: PlanDecision) -> list[Violation]:
    """Certify the schedule a planner decision would execute.

    A partitioned decision is verified as a full exchange schedule; the
    naive rotation baseline is *sanctioned contended* — for it the
    verifier proves the weaker invariant the baseline does satisfy:
    every rotation step in isolation is link-clean and port-disjoint
    (its slowness comes from drift, not from an illegal schedule).
    """
    target = f"plan d={decision.d} m={decision.m:g} {decision.algorithm}"
    if decision.algorithm == "naive":
        n = 1 << decision.d
        rotation = [naive_step_circuits(decision.d, s) for s in range(1, n)]
        return [
            Violation(
                check=violation.check, target=target,
                message=violation.message, step_index=violation.step_index,
                counterexample=violation.counterexample,
                fix_hint=violation.fix_hint,
            )
            for violation in verify_circuit_steps(
                rotation, decision.d, target=target
            )
        ]
    try:
        parts = check_partition(decision.partition, decision.d)
    except (TypeError, ValueError) as exc:
        return [Violation(
            check="plan-illegal",
            target=target,
            message=f"decision partition {decision.partition!r} is not a "
                    f"partition of d={decision.d}: {exc}",
            counterexample={"partition": list(decision.partition or ())},
            fix_hint="planner policies must emit partitions summing to d",
        )]
    return verify_schedule(decision.d, parts)


# ----------------------------------------------------------------------
# the `repro check --schedules` driver
# ----------------------------------------------------------------------
def check_schedules(
    dims: Sequence[int] = CHECK_DIMS,
    *,
    presets: Sequence[str] | None = None,
    block_sizes: Sequence[float] = CHECK_SIZES,
) -> CheckReport:
    """Statically certify every schedule the library can emit.

    For each dimension: every partition's exchange schedule (circuits,
    conservation, fast-path coefficients), every §9 pattern program,
    and — per machine preset — the collectives the model policy
    actually emits at the sampled block sizes (exchange decisions and
    pattern selections).  Returns a merged report; ``report.ok`` is
    the certificate.
    """
    from repro.plan.patterns import PATTERNS, plan_pattern
    from repro.plan.policies import ModelPolicy

    report = CheckReport()
    preset_names = sorted(PRESETS) if presets is None else list(presets)
    verified: dict[tuple[int, tuple[int, ...]], bool] = {}

    def certify_schedule(d: int, parts: tuple[int, ...]) -> bool:
        key = (d, parts)
        if key not in verified:
            violations = verify_schedule(d, parts)
            for violation in violations:
                report.add(violation)
            verified[key] = not violations
            if not violations:
                report.certify(_schedule_target(d, parts))
        return verified[key]

    for d in dims:
        check_dimension(d, minimum=1)
        for parts in partitions(d):
            certify_schedule(d, parts)
        for pattern, algorithm in pattern_variants():
            violations = verify_pattern(pattern, algorithm, d)
            violations.extend(
                verify_program_coefficients(
                    compile_program(pattern_program(pattern, algorithm, d))
                )
            )
            for violation in violations:
                report.add(violation)
            if not violations:
                report.certify(f"pattern {pattern}/{algorithm} d={d}")

    for name in preset_names:
        params: MachineParams = PRESETS[name]()
        policy = ModelPolicy(params)
        for d in dims:
            for m in block_sizes:
                decision = policy.decide(d, float(m))
                violations = verify_plan_decision(decision)
                for violation in violations:
                    report.add(violation)
                if not violations:
                    report.certify(
                        f"plan {name} d={d} m={m:g} -> {decision.algorithm} "
                        + (format_partition(decision.partition)
                           if decision.partition else "rotation")
                    )
                for pattern in PATTERNS:
                    pattern_decision = plan_pattern(pattern, float(m), d, params)
                    if pattern_decision.algorithm == "exchange":
                        ok = (pattern_decision.partition is not None
                              and certify_schedule(
                                  d, tuple(pattern_decision.partition)))
                    else:
                        pattern_violations = verify_pattern(
                            pattern, pattern_decision.algorithm, d
                        )
                        for violation in pattern_violations:
                            report.add(violation)
                        ok = not pattern_violations
                    if ok:
                        report.certify(
                            f"plan {name} {pattern} d={d} m={m:g} -> "
                            f"{pattern_decision.algorithm}"
                        )
    return report
