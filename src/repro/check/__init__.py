"""Static verification: prove invariants without running the simulator.

Every other correctness guarantee in this repository is *dynamic* —
contention-freedom is observed by replaying schedules on the event
engine, fast-path agreement is measured, protocol agreement is tested
by running both transports.  This package adds the *static* layer: it
proves the Bokhari schedule invariants (edge/port-disjoint circuits,
legal dimension-ordered e-cube routes, block conservation, fast-path
coefficient fidelity) and the repository's own coding invariants
(no blocking calls in async transports, no event-engine imports
outside sanctioned sites, no bare float equality, seeded randomness,
protocol-constant agreement) ahead of execution, in the model-checking
spirit of proving properties over a transition system rather than
sampling its runs.

Two coordinated analyzers, both behind ``repro check``:

* :mod:`repro.check.schedule` — the domain verifier, certifying every
  compiled ``(d, partition)`` schedule, §9 pattern program, and
  planner-emitted collective, with counterexample extraction;
* :mod:`repro.check.rules` — the AST-based project lint engine with
  per-rule allowlists, fix hints, and inline
  ``# repro: allow[rule-id]`` escape hatches.

Both emit the machine-readable :class:`~repro.check.report.CheckReport`.
"""

from repro.check.report import CheckReport, Violation
from repro.check.rules import RULES, LintRule, run_rules
from repro.check.schedule import (
    check_schedules,
    verify_block_conservation,
    verify_circuit_steps,
    verify_fastpath_coefficients,
    verify_pattern,
    verify_plan_decision,
    verify_program_coefficients,
    verify_schedule,
)

__all__ = [
    "CheckReport",
    "LintRule",
    "RULES",
    "Violation",
    "check_schedules",
    "run_rules",
    "verify_block_conservation",
    "verify_circuit_steps",
    "verify_fastpath_coefficients",
    "verify_pattern",
    "verify_plan_decision",
    "verify_program_coefficients",
    "verify_schedule",
]
