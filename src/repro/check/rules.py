"""AST-based project lint engine: the repository's coding invariants.

Complements the domain verifier of :mod:`repro.check.schedule` with
rules over the *source tree* — invariants that keep the simulation
deterministic, the transports honest, and the layering intact, but
that no unit test can enforce globally:

============== ====================================================
rule id        invariant
============== ====================================================
async-blocking no blocking call (``time.sleep``, ``subprocess``,
               ``os.system``, ``socket.socket``, builtin ``open``,
               ``input``) lexically inside an ``async def``
engine-import  :mod:`repro.sim.engine` is imported only at the
               sanctioned sites (the executor layer); everything
               else must go through :mod:`repro.sim.machine` or the
               fast path
float-eq       no bare ``==``/``!=`` against a float literal —
               model times are floats; compare with tolerances
unseeded-rand  no unseeded randomness: ``default_rng()`` without a
               seed, legacy ``numpy.random.*`` module calls, or
               stdlib ``random`` module calls under ``src/``
protocol-drift a module-level ``ALL_CAPS`` literal defined in two
               or more protocol modules — ``server.py`` /
               ``async_server.py`` / ``client.py`` / ``wire.py`` /
               ``api.py`` / ``config.py`` and the fabric's
               ``coordinator.py`` / ``node.py`` / ``cluster.py`` —
               must agree project-wide, covering the binary frame
               constants (magic, version, opcodes, header layout),
               the fabric control opcodes, and the JSON limits
wall-clock     no wall-clock reads (``time.time``,
               ``perf_counter``, ``monotonic``) under ``src/`` —
               simulated time is the only clock
============== ====================================================

Escape hatches, in order of preference: register the site in the
rule's ``allow_paths`` (for whole sanctioned modules), or append an
inline ``# repro: allow[rule-id]`` comment on the flagged line (for
individual sentinel comparisons and the like).  Run via
``repro check --code`` or :func:`run_rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.check.report import CheckReport, Violation

__all__ = ["RULES", "LintRule", "SourceFile", "run_rules"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9-]+)\]")


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file handed to the rules."""

    path: str          # repo-relative, forward slashes
    tree: ast.Module
    lines: tuple[str, ...]

    def allowed(self, rule_id: str, lineno: int | None) -> bool:
        """True when the 1-based line carries ``# repro: allow[rule_id]``."""
        if lineno is None or not (1 <= lineno <= len(self.lines)):
            return False
        return any(
            match.group(1) == rule_id
            for match in _ALLOW_RE.finditer(self.lines[lineno - 1])
        )


#: a per-file checker yields (lineno, message, counterexample)
FileChecker = Callable[[SourceFile], Iterator[tuple[int, str, dict]]]
#: a project checker sees every file at once (cross-file invariants)
ProjectChecker = Callable[
    [Sequence[SourceFile]], Iterator[tuple[str, int, str, dict]]
]


@dataclass(frozen=True)
class LintRule:
    """One coding invariant: checker + allowlist + fix hint.

    ``allow_paths`` are repo-relative path suffixes at which the rule
    is suspended wholesale (sanctioned modules); individual lines opt
    out with ``# repro: allow[rule-id]``.
    """

    rule_id: str
    description: str
    fix_hint: str
    check_file: FileChecker | None = None
    check_project: ProjectChecker | None = None
    allow_paths: tuple[str, ...] = field(default=())

    def path_allowed(self, path: str) -> bool:
        return any(path.endswith(suffix) for suffix in self.allow_paths)


# ----------------------------------------------------------------------
# rule: async-blocking
# ----------------------------------------------------------------------
_BLOCKING_ATTR_CALLS = {
    ("time", "sleep"),
    ("os", "system"),
    ("socket", "socket"),
    ("socket", "create_connection"),
}
_BLOCKING_MODULES = {"subprocess"}
_BLOCKING_BUILTINS = {"open", "input"}


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _check_async_blocking(source: SourceFile) -> Iterator[tuple[int, str, dict]]:
    def walk(node: ast.AST, in_async: bool) -> Iterator[tuple[int, str, dict]]:
        for child in ast.iter_child_nodes(node):
            child_async = in_async
            if isinstance(child, ast.AsyncFunctionDef):
                child_async = True
            elif isinstance(child, (ast.FunctionDef, ast.Lambda)):
                # a nested sync def is a fresh (possibly offloaded) context
                child_async = False
            if in_async and isinstance(child, ast.Call):
                name = _dotted(child.func)
                blocking = name is not None and (
                    name[-2:] in _BLOCKING_ATTR_CALLS
                    or name[0] in _BLOCKING_MODULES
                    or (len(name) == 1 and name[0] in _BLOCKING_BUILTINS)
                )
                if blocking:
                    yield (
                        child.lineno,
                        f"blocking call {'.'.join(name)}() inside async def",
                        {"call": ".".join(name)},
                    )
            yield from walk(child, child_async)

    yield from walk(source.tree, in_async=False)


# ----------------------------------------------------------------------
# rule: engine-import
# ----------------------------------------------------------------------
def _check_engine_import(source: SourceFile) -> Iterator[tuple[int, str, dict]]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.sim.engine" or alias.name.startswith(
                    "repro.sim.engine."
                ):
                    yield (node.lineno, f"imports {alias.name}", {"module": alias.name})
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.sim.engine" or module.startswith("repro.sim.engine."):
                yield (node.lineno, f"imports from {module}", {"module": module})
            elif module == "repro.sim" and any(
                alias.name == "engine" for alias in node.names
            ):
                yield (node.lineno, "imports engine from repro.sim", {"module": module})


# ----------------------------------------------------------------------
# rule: float-eq
# ----------------------------------------------------------------------
def _check_float_eq(source: SourceFile) -> Iterator[tuple[int, str, dict]]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    yield (
                        node.lineno,
                        f"bare float {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"against literal {operand.value!r}",
                        {"literal": operand.value},
                    )
                    break


# ----------------------------------------------------------------------
# rule: unseeded-rand
# ----------------------------------------------------------------------
_LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "choice", "shuffle",
    "permutation", "normal", "uniform", "seed", "random_sample",
}
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
}


def _numpy_aliases(tree: ast.Module) -> set[str]:
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _imports_stdlib_random(tree: ast.Module) -> bool:
    return any(
        isinstance(node, ast.Import)
        and any(alias.name == "random" for alias in node.names)
        for node in ast.walk(tree)
    )


def _check_unseeded_rand(source: SourceFile) -> Iterator[tuple[int, str, dict]]:
    np_names = _numpy_aliases(source.tree)
    stdlib_random = _imports_stdlib_random(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None:
            continue
        if name[-1] == "default_rng" and not node.args and not node.keywords:
            yield (
                node.lineno,
                "default_rng() without a seed is nondeterministic",
                {"call": ".".join(name)},
            )
        elif (
            len(name) == 3
            and name[0] in np_names
            and name[1] == "random"
            and name[2] in _LEGACY_NP_RANDOM
        ):
            yield (
                node.lineno,
                f"legacy numpy global-state RNG {'.'.join(name)}()",
                {"call": ".".join(name)},
            )
        elif (
            stdlib_random
            and len(name) == 2
            and name[0] == "random"
            and name[1] in _STDLIB_RANDOM_FNS
        ):
            yield (
                node.lineno,
                f"stdlib global-state RNG {'.'.join(name)}()",
                {"call": ".".join(name)},
            )


# ----------------------------------------------------------------------
# rule: wall-clock
# ----------------------------------------------------------------------
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
}


def _check_wall_clock(source: SourceFile) -> Iterator[tuple[int, str, dict]]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None and name[-2:] in _WALL_CLOCK:
                yield (
                    node.lineno,
                    f"wall-clock read {'.'.join(name)}()",
                    {"call": ".".join(name)},
                )


# ----------------------------------------------------------------------
# rule: protocol-drift (project-wide)
# ----------------------------------------------------------------------
#: every module that participates in a wire protocol: the data plane
#: (service) and the fabric control plane speak the same framing, so
#: their constants are compared in ONE project-wide group — a fabric
#: module redefining an opcode out of sync with wire.py is drift even
#: though the files live in different directories
_PROTOCOL_FILES = {
    "server.py", "async_server.py", "client.py", "wire.py",
    "api.py", "config.py",
    "coordinator.py", "node.py", "cluster.py",
}


def _module_constants(tree: ast.Module) -> dict[str, tuple[int, object]]:
    constants: dict[str, tuple[int, object]] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id.isupper()
                and value is not None
            ):
                try:
                    constants[target.id] = (node.lineno, ast.literal_eval(value))
                except (ValueError, SyntaxError):
                    continue
    return constants


def _check_protocol_drift(
    sources: Sequence[SourceFile],
) -> Iterator[tuple[str, int, str, dict]]:
    peers = [s for s in sources if Path(s.path).name in _PROTOCOL_FILES]
    if len(peers) < 2:
        return
    definitions: dict[str, list[tuple[SourceFile, int, object]]] = {}
    for source in peers:
        for name, (lineno, value) in _module_constants(source.tree).items():
            definitions.setdefault(name, []).append((source, lineno, value))
    for name, sites in sorted(definitions.items()):
        values = {repr(value) for _, _, value in sites}
        if len(sites) >= 2 and len(values) > 1:
            for source, lineno, value in sites:
                yield (
                    source.path,
                    lineno,
                    f"protocol constant {name} = {value!r} disagrees with "
                    f"its peer definition(s): {sorted(values)}",
                    {"name": name, "values": sorted(values)},
                )


# ----------------------------------------------------------------------
# registry + engine
# ----------------------------------------------------------------------
RULES: tuple[LintRule, ...] = (
    LintRule(
        rule_id="async-blocking",
        description="no blocking calls lexically inside async def",
        fix_hint="await an asyncio equivalent or offload via run_in_executor",
        check_file=_check_async_blocking,
    ),
    LintRule(
        rule_id="engine-import",
        description="repro.sim.engine is imported only at sanctioned executor sites",
        fix_hint="depend on repro.sim.machine / repro.sim.fastpath instead, or "
                 "register the site in the rule's allow_paths",
        check_file=_check_engine_import,
        allow_paths=(
            "repro/sim/__init__.py",
            "repro/sim/machine.py",
            "repro/sim/node.py",
            "repro/sim/network.py",
            # boot-count audit only: validate_policy reads
            # Engine.boot_count to prove the fast path booted zero
            # event engines — it never constructs one itself
            "repro/analysis/validation.py",
        ),
    ),
    LintRule(
        rule_id="float-eq",
        description="no bare ==/!= against float literals",
        fix_hint="compare with math.isclose/tolerance, or mark a genuine "
                 "sentinel with '# repro: allow[float-eq]'",
        check_file=_check_float_eq,
    ),
    LintRule(
        rule_id="unseeded-rand",
        description="all randomness under src/ is explicitly seeded",
        fix_hint="pass a seed to default_rng(); never use global-state RNGs",
        check_file=_check_unseeded_rand,
    ),
    LintRule(
        rule_id="wall-clock",
        description="no wall-clock reads under src/ (simulated time only)",
        fix_hint="thread the engine's simulated clock through instead; "
                 "wall-clock timing belongs in benches/",
        check_file=_check_wall_clock,
    ),
    LintRule(
        rule_id="protocol-drift",
        description="protocol constants agree across the service and fabric "
                    "protocol modules, project-wide",
        fix_hint="define the constant once (server.py for JSON limits, wire.py "
                 "for frame and fabric opcodes) and import it elsewhere",
        check_project=_check_protocol_drift,
    ),
)


def _load(path: Path, root: Path) -> SourceFile | None:
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError):
        return None
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = path
    return SourceFile(
        path=str(relative).replace("\\", "/"),
        tree=tree,
        lines=tuple(text.splitlines()),
    )


def _iter_paths(paths: Iterable[str | Path] | None, root: str | Path) -> list[Path]:
    if paths is not None:
        return [Path(p) for p in paths]
    return sorted(Path(root).rglob("*.py"))


def run_rules(
    paths: Iterable[str | Path] | None = None,
    *,
    root: str | Path = "src",
    rules: Sequence[LintRule] = RULES,
) -> CheckReport:
    """Run the lint rules over ``paths`` (default: every ``.py`` under
    ``root``) and return a :class:`CheckReport`.

    Per-rule path allowlists and inline ``# repro: allow[rule-id]``
    comments suppress individual findings; a rule with no surviving
    finding certifies as ``code:<rule-id>``.
    """
    root_path = Path(root)
    sources = [
        source
        for path in _iter_paths(paths, root_path)
        if (source := _load(path, root_path)) is not None
    ]
    report = CheckReport()
    for rule in rules:
        found = 0
        if rule.check_file is not None:
            for source in sources:
                if rule.path_allowed(source.path):
                    continue
                for lineno, message, counterexample in rule.check_file(source):
                    if source.allowed(rule.rule_id, lineno):
                        continue
                    found += 1
                    report.add(Violation(
                        check=rule.rule_id,
                        target=source.path,
                        message=message,
                        line=lineno,
                        counterexample=counterexample,
                        fix_hint=rule.fix_hint,
                    ))
        if rule.check_project is not None:
            sources_by_path: Mapping[str, SourceFile] = {
                source.path: source for source in sources
            }
            for path, lineno, message, counterexample in rule.check_project(sources):
                source = sources_by_path.get(path)
                if source is not None and source.allowed(rule.rule_id, lineno):
                    continue
                if rule.path_allowed(path):
                    continue
                found += 1
                report.add(Violation(
                    check=rule.rule_id,
                    target=path,
                    message=message,
                    line=lineno,
                    counterexample=counterexample,
                    fix_hint=rule.fix_hint,
                ))
        if not found:
            report.certify(f"code:{rule.rule_id} ({len(sources)} files)")
    return report
