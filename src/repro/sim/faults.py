"""Seeded, deterministic fault injection for the simulated machine.

Everything built before this module assumes a uniform, failure-free
hypercube — exactly the idealization the paper makes.  A
:class:`FaultPlan` breaks that idealization on purpose, in four
declared (and independently toggleable) ways:

* **link degradation** — per-directed-link latency/bandwidth scale
  factors (≥ 1.0) drawn from declared uniform ranges; a transfer whose
  e-cube circuit crosses a degraded link runs at the *worst* scale
  along its path (the slow link gates the circuit);
* **stragglers** — nodes with a compute-slowdown multiplier applied to
  local work (delays and shuffle passes);
* **transient link outages** — scheduled ``[t_fail, t_heal)`` windows
  during which a directed link cannot carry a circuit; a sender whose
  path crosses a down link *blocks and retries* with deterministic
  capped exponential backoff until the heal time (recorded in the
  trace), it never loses the block;
* **cross-traffic** — background flows that periodically reserve an
  e-cube circuit for a fixed payload, stealing link time from the
  workload without participating in it.

The plan is *data*, not behaviour: :class:`~repro.sim.network.Network`
and :class:`~repro.sim.machine.SimulatedHypercube` consume it natively,
and the pricing stack mirrors it
(:func:`repro.model.cost.degraded_multiphase_time`).  Generation is
fully seeded (``numpy`` ``default_rng``): the same ``(d, seed,
knobs)`` always yields the identical plan, which is what makes a chaos
sweep reproducible run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.hypercube.topology import Hypercube, Link
from repro.util.validation import check_dimension

__all__ = [
    "CrossTraffic",
    "FaultPlan",
    "LinkDegradation",
    "LinkOutage",
    "Straggler",
]

#: hard cap on block-and-retry attempts for one transfer; a plan whose
#: outage outlasts this many capped backoffs is a configuration error,
#: not a survivable transient
MAX_RETRY_ATTEMPTS = 10_000


@dataclass(frozen=True)
class LinkDegradation:
    """One directed link running slow: scale factors on λ and τ."""

    link: Link
    #: multiplies the startup/handshake (λ-like) share of a transfer
    latency_scale: float = 1.0
    #: multiplies the per-byte (τ) share of a transfer
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_scale < 1.0 or self.bandwidth_scale < 1.0:
            raise ValueError(
                f"degradation scales must be >= 1.0, got "
                f"latency {self.latency_scale}/bandwidth {self.bandwidth_scale} "
                f"for {self.link}"
            )


@dataclass(frozen=True)
class Straggler:
    """One slow node: local compute runs ``compute_scale`` times slower."""

    node: int
    compute_scale: float

    def __post_init__(self) -> None:
        if self.compute_scale < 1.0:
            raise ValueError(
                f"compute_scale must be >= 1.0, got {self.compute_scale} "
                f"for node {self.node}"
            )


@dataclass(frozen=True)
class LinkOutage:
    """One transient failure: the link is down for ``[t_fail, t_heal)``."""

    link: Link
    t_fail: float
    t_heal: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.t_fail < self.t_heal:
            raise ValueError(
                f"need 0 <= t_fail < t_heal, got [{self.t_fail}, {self.t_heal}) "
                f"for {self.link}"
            )

    @property
    def duration(self) -> float:
        return self.t_heal - self.t_fail

    def covers(self, t: float) -> bool:
        return self.t_fail <= t < self.t_heal


@dataclass(frozen=True)
class CrossTraffic:
    """One background flow: ``n_messages`` payloads of ``nbytes`` from
    ``src`` to ``dst``, one every ``period_us`` starting at ``t_first``."""

    src: int
    dst: int
    nbytes: int
    period_us: float
    t_first: float = 0.0
    n_messages: int = 1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"cross-traffic flow {self.src}->{self.dst} is a self-loop")
        if self.nbytes < 0 or self.period_us <= 0 or self.t_first < 0:
            raise ValueError(
                f"bad cross-traffic flow: nbytes={self.nbytes}, "
                f"period_us={self.period_us}, t_first={self.t_first}"
            )
        if self.n_messages < 1:
            raise ValueError(f"n_messages must be >= 1, got {self.n_messages}")

    def emission_times(self) -> list[float]:
        return [self.t_first + i * self.period_us for i in range(self.n_messages)]


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic description of how a machine misbehaves.

    Build one directly from explicit records, or draw one from declared
    distributions with :meth:`generate` (seeded; identical seed ->
    identical plan).  An *empty* plan is behaviourally inert: the
    network and pricing layers treat it exactly like no plan at all
    (asserted by the zero-overhead benchmark).
    """

    d: int
    degradations: tuple[LinkDegradation, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    outages: tuple[LinkOutage, ...] = ()
    cross_traffic: tuple[CrossTraffic, ...] = ()
    #: first block-and-retry backoff delay (µs)
    retry_base_us: float = 50.0
    #: backoff cap (µs); delays double from the base up to this
    retry_cap_us: float = 800.0
    seed: int | None = None
    #: lookup tables, derived in ``__post_init__``
    _degraded: dict = field(default_factory=dict, repr=False, compare=False)
    _compute: dict = field(default_factory=dict, repr=False, compare=False)
    _outage_map: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_dimension(self.d, minimum=1)
        if self.retry_base_us <= 0 or self.retry_cap_us < self.retry_base_us:
            raise ValueError(
                f"need 0 < retry_base_us <= retry_cap_us, got "
                f"{self.retry_base_us}/{self.retry_cap_us}"
            )
        cube = Hypercube(self.d)
        for record in self.degradations:
            cube.validate_node(record.link.src)
            cube.validate_node(record.link.dst)
            self._degraded[record.link] = record
        for straggler in self.stragglers:
            cube.validate_node(straggler.node)
            self._compute[straggler.node] = straggler.compute_scale
        for outage in self.outages:
            cube.validate_node(outage.link.src)
            cube.validate_node(outage.link.dst)
            self._outage_map.setdefault(outage.link, []).append(outage)
        for flow in self.cross_traffic:
            cube.validate_node(flow.src)
            cube.validate_node(flow.dst)

    # ------------------------------------------------------------------
    # queries the network/machine make on the hot path
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.degradations or self.stragglers or self.outages or self.cross_traffic
        )

    def link_scales(self, link: Link) -> tuple[float, float]:
        """``(latency_scale, bandwidth_scale)`` of one directed link."""
        record = self._degraded.get(link)
        if record is None:
            return (1.0, 1.0)
        return (record.latency_scale, record.bandwidth_scale)

    def path_scales(self, links: Iterable[object]) -> tuple[float, float]:
        """Worst-case scales along a circuit: the slowest link gates it."""
        lat = bw = 1.0
        for link in links:
            if isinstance(link, Link):
                record = self._degraded.get(link)
                if record is not None:
                    lat = max(lat, record.latency_scale)
                    bw = max(bw, record.bandwidth_scale)
        return (lat, bw)

    def compute_scale(self, node: int) -> float:
        """Local-compute slowdown multiplier of ``node`` (1.0 normally)."""
        return self._compute.get(node, 1.0)

    def down_until(self, link: Link, t: float) -> float | None:
        """Heal time if ``link`` is inside an outage window at ``t``."""
        for outage in self._outage_map.get(link, ()):
            if outage.covers(t):
                return outage.t_heal
        return None

    def backoff_us(self, attempt: int) -> float:
        """Deterministic capped exponential backoff: delay before retry
        number ``attempt`` (0-based).  No jitter — the project bans
        ambient randomness, and virtual-time retries gain nothing from
        desynchronization."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.retry_cap_us, self.retry_base_us * (2.0 ** attempt))

    # ------------------------------------------------------------------
    # aggregate statistics the pricing layer consumes
    # ------------------------------------------------------------------
    def _n_directed_links(self) -> int:
        return self.d << self.d

    def mean_latency_scale(self) -> float:
        """Mean latency scale over *all* directed links (missing = 1.0)."""
        n = self._n_directed_links()
        excess = sum(rec.latency_scale - 1.0 for rec in self.degradations)
        return 1.0 + excess / n

    def mean_bandwidth_scale(self) -> float:
        """Mean bandwidth scale over all directed links (missing = 1.0)."""
        n = self._n_directed_links()
        excess = sum(rec.bandwidth_scale - 1.0 for rec in self.degradations)
        return 1.0 + excess / n

    def max_compute_scale(self) -> float:
        """The slowest node's compute scale — barrier-synchronized
        phases run at the straggler's pace."""
        return max((s.compute_scale for s in self.stragglers), default=1.0)

    def expected_stall_us(self) -> float:
        """Expected per-transmission outage stall, in µs.

        Heuristic penalty term: total scheduled downtime spread over
        every directed link, halved because a transmission that does
        hit a window arrives uniformly inside it and waits out the
        remainder (half the window in expectation).
        """
        total_downtime = sum(outage.duration for outage in self.outages)
        return 0.5 * total_downtime / self._n_directed_links()

    # ------------------------------------------------------------------
    # serialization (chaos CLI --json, reproducibility checks)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "d": self.d,
            "seed": self.seed,
            "retry_base_us": self.retry_base_us,
            "retry_cap_us": self.retry_cap_us,
            "degradations": [
                {
                    "link": [rec.link.src, rec.link.dst],
                    "latency_scale": rec.latency_scale,
                    "bandwidth_scale": rec.bandwidth_scale,
                }
                for rec in self.degradations
            ],
            "stragglers": [
                {"node": s.node, "compute_scale": s.compute_scale}
                for s in self.stragglers
            ],
            "outages": [
                {
                    "link": [o.link.src, o.link.dst],
                    "t_fail": o.t_fail,
                    "t_heal": o.t_heal,
                }
                for o in self.outages
            ],
            "cross_traffic": [
                {
                    "src": f.src,
                    "dst": f.dst,
                    "nbytes": f.nbytes,
                    "period_us": f.period_us,
                    "t_first": f.t_first,
                    "n_messages": f.n_messages,
                }
                for f in self.cross_traffic
            ],
        }

    # ------------------------------------------------------------------
    # seeded generation from declared distributions
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        d: int,
        seed: int | Sequence[int],
        *,
        degraded_link_fraction: float = 0.0,
        latency_scale_range: tuple[float, float] = (1.5, 3.0),
        bandwidth_scale_range: tuple[float, float] = (1.5, 3.0),
        straggler_fraction: float = 0.0,
        straggler_scale_range: tuple[float, float] = (2.0, 4.0),
        link_failure_rate: float = 0.0,
        horizon_us: float = 50_000.0,
        outage_duration_range_us: tuple[float, float] = (500.0, 5_000.0),
        cross_traffic_flows: int = 0,
        cross_traffic_nbytes: int = 256,
        cross_traffic_period_range_us: tuple[float, float] = (500.0, 2_000.0),
        retry_base_us: float = 50.0,
        retry_cap_us: float = 800.0,
    ) -> "FaultPlan":
        """Draw a plan from declared distributions, deterministically.

        Fractions/rates are per *undirected wire* (degradation and
        outages hit both directions of a physical channel, matching
        ``fail_link``'s default) and per node for stragglers.  Outage
        windows start uniformly in ``[0, horizon_us)`` with durations
        from ``outage_duration_range_us``.  Every draw comes from one
        ``default_rng(seed)`` stream in a fixed iteration order, so a
        seed fully determines the plan.
        """
        check_dimension(d, minimum=1)
        for name, value in (
            ("degraded_link_fraction", degraded_link_fraction),
            ("straggler_fraction", straggler_fraction),
            ("link_failure_rate", link_failure_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        rng = np.random.default_rng(seed)
        cube = Hypercube(d)
        wires = sorted({link.undirected for link in cube.links()})

        degradations: list[LinkDegradation] = []
        outages: list[LinkOutage] = []
        for u, v in wires:
            if rng.random() < degraded_link_fraction:
                lat = float(rng.uniform(*latency_scale_range))
                bw = float(rng.uniform(*bandwidth_scale_range))
                degradations.append(LinkDegradation(Link(u, v), lat, bw))
                degradations.append(LinkDegradation(Link(v, u), lat, bw))
            if rng.random() < link_failure_rate:
                t_fail = float(rng.uniform(0.0, horizon_us))
                duration = float(rng.uniform(*outage_duration_range_us))
                outages.append(LinkOutage(Link(u, v), t_fail, t_fail + duration))
                outages.append(LinkOutage(Link(v, u), t_fail, t_fail + duration))

        stragglers = [
            Straggler(node, float(rng.uniform(*straggler_scale_range)))
            for node in cube.nodes()
            if rng.random() < straggler_fraction
        ]

        flows: list[CrossTraffic] = []
        for _ in range(cross_traffic_flows):
            src = int(rng.integers(0, cube.n_nodes))
            dst = int(rng.integers(0, cube.n_nodes))
            if src == dst:
                dst = (dst + 1) % cube.n_nodes
            period = float(rng.uniform(*cross_traffic_period_range_us))
            t_first = float(rng.uniform(0.0, period))
            n_messages = max(1, int(horizon_us / period))
            flows.append(
                CrossTraffic(
                    src=src,
                    dst=dst,
                    nbytes=cross_traffic_nbytes,
                    period_us=period,
                    t_first=t_first,
                    n_messages=n_messages,
                )
            )

        plan_seed = seed if isinstance(seed, int) else None
        return cls(
            d=d,
            degradations=tuple(degradations),
            stragglers=tuple(stragglers),
            outages=tuple(outages),
            cross_traffic=tuple(flows),
            retry_base_us=retry_base_us,
            retry_cap_us=retry_cap_us,
            seed=plan_seed,
        )
