"""Discrete-event engine with coroutine processes.

A minimal, deterministic event core in the SimPy style: *processes*
are Python generators that ``yield`` request objects; the engine
advances virtual time (float microseconds) through a heap of scheduled
callbacks and resumes each process when its current request completes,
sending the request's result back into the generator.

Determinism: events at equal times fire in schedule order (a
monotonically increasing sequence number breaks ties), so simulations
are exactly reproducible — a property the regression tests rely on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Engine", "Process", "Request", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside a simulation (e.g. a FORCED
    message arriving with no posted receive under strict semantics, or
    a deadlocked run)."""


class Request:
    """Base class for things a process can ``yield``.

    Subclasses implement :meth:`activate`, wiring themselves into the
    engine/services; when the request completes, they call
    ``process.resume(value)`` (possibly immediately).
    """

    def activate(self, engine: "Engine", process: "Process") -> None:
        raise NotImplementedError


class Delay(Request):
    """Pure passage of virtual time (compute, memory permutation...)."""

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"delay must be >= 0, got {duration}")
        self.duration = duration

    def activate(self, engine: "Engine", process: "Process") -> None:
        engine.schedule(self.duration, lambda: process.resume(None))


class Process:
    """A running generator coroutine.

    The generator yields :class:`Request` objects and receives each
    request's result as the value of the ``yield`` expression.  The
    generator's ``return`` value is captured in :attr:`result`.
    """

    def __init__(self, engine: "Engine", generator: Generator[Request, Any, Any], name: str) -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.end_time: float | None = None
        #: set when the process is waiting on a request (for deadlock
        #: diagnostics)
        self.waiting_on: Request | None = None

    def start(self) -> None:
        """Schedule the first resumption at the current time."""
        self.engine.schedule(0.0, lambda: self.resume(None))

    def resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and activate its next
        request."""
        if self.finished:
            raise SimulationError(f"process {self.name} resumed after completion")
        self.waiting_on = None
        try:
            request = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.end_time = self.engine.now
            self.engine._process_finished(self)
            return
        if not isinstance(request, Request):
            raise SimulationError(
                f"process {self.name} yielded {type(request).__name__}; expected a Request"
            )
        self.waiting_on = request
        request.activate(self.engine, self)

    def fail(self, exc: BaseException) -> None:
        """Throw an exception into the generator (fatal conditions)."""
        self.generator.throw(exc)


class Engine:
    """The event loop: a heap of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._n_events = 0

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Number of events dispatched so far (for stats and loop caps)."""
        return self._n_events

    @property
    def processes(self) -> list[Process]:
        return list(self._processes)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` µs from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``time``."""
        self.schedule(time - self.now, callback)

    def spawn(self, generator: Generator[Request, Any, Any], name: str = "proc") -> Process:
        """Register and start a new process."""
        process = Process(self, generator, name)
        self._processes.append(process)
        process.start()
        return process

    def run(self, *, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the heap drains (or limits hit).

        Returns the final virtual time.  Raises
        :class:`SimulationError` if processes remain unfinished with an
        empty heap (deadlock) or the event cap is exceeded.
        """
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            if until is not None and time > until:
                self.now = until
                return self.now
            self.now = time
            self._n_events += 1
            if self._n_events > max_events:
                raise SimulationError(f"event cap {max_events} exceeded at t={self.now}")
            callback()
        stuck = [p for p in self._processes if not p.finished]
        if stuck:
            detail = ", ".join(
                f"{p.name} (waiting on {type(p.waiting_on).__name__})" for p in stuck[:8]
            )
            raise SimulationError(
                f"deadlock: {len(stuck)} processes never finished: {detail}"
            )
        return self.now

    def _process_finished(self, process: Process) -> None:
        """Hook for subclasses/services; default does nothing."""

    @staticmethod
    def all_finished(processes: Iterable[Process]) -> bool:
        return all(p.finished for p in processes)
