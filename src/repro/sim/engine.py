"""Discrete-event engine with coroutine processes.

A minimal, deterministic event core in the SimPy style: *processes*
are Python generators that ``yield`` request objects; the engine
advances virtual time (float microseconds) through a heap of scheduled
callbacks and resumes each process when its current request completes,
sending the request's result back into the generator.

Determinism: events at equal times fire in schedule order (a
monotonically increasing sequence number breaks ties), so simulations
are exactly reproducible — a property the regression tests rely on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Engine", "Process", "Request", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside a simulation (e.g. a FORCED
    message arriving with no posted receive under strict semantics, or
    a deadlocked run)."""


class Request:
    """Base class for things a process can ``yield``.

    Subclasses implement :meth:`activate`, wiring themselves into the
    engine/services.  A completion that happens synchronously (inside
    ``activate`` or another event's callback) calls
    ``process.resume(value)`` directly; a completion *scheduled for
    later* must go through ``process.resume_callback(value)`` so that
    a wait superseded in the meantime (see :meth:`Process.fail`) leaves
    the stale event inert instead of resuming the wrong wait.
    """

    def activate(self, engine: "Engine", process: "Process") -> None:
        raise NotImplementedError


class Delay(Request):
    """Pure passage of virtual time (compute, memory permutation...)."""

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"delay must be >= 0, got {duration}")
        self.duration = duration

    def activate(self, engine: "Engine", process: "Process") -> None:
        engine.schedule(self.duration, process.resume_callback(None))


class Process:
    """A running generator coroutine.

    The generator yields :class:`Request` objects and receives each
    request's result as the value of the ``yield`` expression.  The
    generator's ``return`` value is captured in :attr:`result`.
    """

    def __init__(self, engine: "Engine", generator: Generator[Request, Any, Any], name: str) -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.end_time: float | None = None
        #: set when the process is waiting on a request (for deadlock
        #: diagnostics)
        self.waiting_on: Request | None = None
        #: bumped on every advance; resume_callback captures it so a
        #: callback for a superseded wait (e.g. after fail()) is inert
        self._epoch = 0
        #: live resume callbacks of the current wait; cancelled on
        #: advance so superseded events neither fire nor advance the
        #: clock (keeping run()'s makespan honest after a fail())
        self._pending: list[Any] = []

    def start(self) -> None:
        """Schedule the first resumption at the current time."""
        self.engine.schedule(0.0, self.resume_callback(None))

    def _advance(self, step: Callable[[], Request]) -> None:
        """Drive the generator one step (send or throw) and wire up
        whatever it does next: finish on StopIteration, else activate
        the yielded request."""
        previous_wait = self.waiting_on
        self.waiting_on = None
        self._epoch += 1
        for stale in self._pending:
            stale.cancelled = True
        self._pending.clear()
        try:
            request = step()
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.end_time = self.engine.now
            self.engine._process_finished(self)
            return
        except BaseException:
            # uncaught fail(): keep the request the process was blocked
            # on so deadlock diagnostics name it, not NoneType
            self.waiting_on = previous_wait
            raise
        if not isinstance(request, Request):
            raise SimulationError(
                f"process {self.name} yielded {type(request).__name__}; expected a Request"
            )
        self.waiting_on = request
        request.activate(self.engine, self)

    def resume(self, value: Any) -> None:
        """Advance the generator with ``value`` and activate its next
        request."""
        if self.finished:
            raise SimulationError(f"process {self.name} resumed after completion")
        self._advance(lambda: self.generator.send(value))

    def wait_token(self) -> int:
        """Identifier of the process's current wait.  Services that
        park a process in a queue (rendezvous, blocked receive,
        barrier) snapshot this at registration and later check
        :meth:`wait_is_current` — a process that was failed (and
        caught) while parked must not be resumed by the stale entry."""
        return self._epoch

    def wait_is_current(self, token: int) -> bool:
        """Whether the wait identified by ``token`` is still the one
        the process is blocked on (and the process is still alive)."""
        return not self.finished and self._epoch == token

    def resume_callback(self, value: Any, *, token: int | None = None) -> Callable[[], None]:
        """A deferred :meth:`resume` for :meth:`Engine.schedule` that
        only fires if the wait it belongs to is still current — a wait
        superseded by :meth:`fail` leaves its already-scheduled
        completion event in the heap, and that stale event must not
        resume the process again.  ``token`` defaults to the current
        wait; pass a stored :meth:`wait_token` when the callback is
        created later than the wait it completes (e.g. at barrier
        release).

        The callback carries a ``cancelled`` flag the event loop
        honours: when the wait ends (normally or via fail) its pending
        callbacks are cancelled, so stale events are dropped from the
        heap without firing or advancing virtual time."""
        epoch = self._epoch if token is None else token

        def _fire() -> None:
            if self.wait_is_current(epoch):
                self.resume(value)

        _fire.cancelled = not self.wait_is_current(epoch)
        if not _fire.cancelled:
            self._pending.append(_fire)
        return _fire

    def fail(self, exc: BaseException) -> None:
        """Throw an exception into the generator (fatal conditions).

        The generator may catch the exception and clean up: if it
        returns, the process is marked finished like any normal
        completion (result and end time recorded); if it yields a new
        request, the process keeps running on that request.  Only an
        exception that escapes the generator propagates to the caller.
        """
        if self.finished:
            raise SimulationError(f"process {self.name} failed after completion")
        self._advance(lambda: self.generator.throw(exc))


class Engine:
    """The event loop: a heap of ``(time, seq, callback)`` entries."""

    #: process-wide count of engines ever booted.  The fast path exists
    #: to keep this flat: `validate_policy(engine="fast")` and the apps
    #: benchmark assert a zero delta across their default paths.
    boot_count: int = 0

    def __init__(self) -> None:
        Engine.boot_count += 1
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._n_events = 0

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Number of events dispatched so far (for stats and loop caps)."""
        return self._n_events

    @property
    def processes(self) -> list[Process]:
        return list(self._processes)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` µs from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``time``."""
        self.schedule(time - self.now, callback)

    def spawn(self, generator: Generator[Request, Any, Any], name: str = "proc") -> Process:
        """Register and start a new process."""
        process = Process(self, generator, name)
        self._processes.append(process)
        process.start()
        return process

    def run(self, *, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the heap drains (or limits hit).

        Returns the final virtual time.  Raises
        :class:`SimulationError` if processes remain unfinished with an
        empty heap (deadlock) or the event cap is exceeded.
        """
        while self._heap:
            time, seq, callback = heapq.heappop(self._heap)
            if getattr(callback, "cancelled", False):
                continue  # superseded wait: neither fires nor advances time
            if until is not None and time > until:
                # not yet due: put it back (same seq keeps tie order)
                # so a later run() still sees it.  Never rewind the
                # clock — an `until` in the past must not let later
                # schedule() calls fire before already-dispatched events
                heapq.heappush(self._heap, (time, seq, callback))
                self.now = max(self.now, until)
                return self.now
            self.now = time
            self._n_events += 1
            if self._n_events > max_events:
                raise SimulationError(f"event cap {max_events} exceeded at t={self.now}")
            callback()
        stuck = [p for p in self._processes if not p.finished]
        if stuck:
            detail = ", ".join(
                f"{p.name} (waiting on {type(p.waiting_on).__name__})" for p in stuck[:8]
            )
            raise SimulationError(
                f"deadlock: {len(stuck)} processes never finished: {detail}"
            )
        return self.now

    def _process_finished(self, process: Process) -> None:
        """Hook for subclasses/services; default does nothing."""

    @staticmethod
    def all_finished(processes: Iterable[Process]) -> bool:
        return all(p.finished for p in processes)
