"""Vectorized lockstep fast path for schedule timing.

Bokhari's exchange schedules are *lockstep*: every node executes the
same step list, each step has the same duration on every node (the
pairwise schedule exchanges equal payloads over equal distances), and
the compiled schedules are edge-contention free — so every circuit is
granted the instant it is requested.  The per-node timeline of a
simulated run is therefore computable in closed form, one cumulative
sum over the step durations, without booting coroutine processes (the
same observation that lets implicit lockstep simulations replace
event-driven ones wholesale).  This module is that closed form,
vectorized with numpy over steps × block sizes:

* :func:`exchange_time` / :func:`exchange_times` /
  :func:`exchange_timeline` — total and per-step start/finish times of
  a multiphase/standard/single-phase schedule.  These agree with
  :func:`repro.comm.program.simulate_exchange` to **float equality**
  (``==``, not approx): the same constants are combined in the same
  order the event engine combines them, and ``cumsum`` accumulates
  steps in the engine's dispatch order.
* :func:`batch_exchange_times` — one array pass per distinct
  ``(d, partition)`` group over a whole batch of ``(d, m, partition)``
  configurations (the validation-sweep workhorse).
* :func:`compile_program` / :func:`program_time` /
  :func:`program_times` / :func:`program_timeline` /
  :func:`batch_program_times` — the same lowering generalized to *any*
  :class:`repro.core.programs.CommProgram` step stream: the exchange,
  the §9 pattern programs (broadcast binomial/direct, scatter
  halving/direct, allgather doubling/exchange), and any future
  barrier/send/pair/shuffle chain.  One-way ``SendStep`` rows price
  with the plain constants (``λ + τ·nbytes + δ·h``), pairwise
  ``PairStep`` rows with the §7.4 effective constants, exactly as
  :class:`repro.sim.node.Node` combines them — float equality with the
  event engine holds for every compiled program.  Contended programs
  (the naive rotation) are refused by the compiler;
  :func:`batch_program_times` routes them to the reservation replay.
* :func:`naive_exchange_time` / :func:`naive_timeline` — the
  *contended* naive rotation baseline, priced by replaying the event
  engine's greedy link/port reservation discipline over the send
  stream directly (a flat heap loop — no generators, no payload
  movement, no trace records).  Edge conflicts serialize exactly as
  :class:`repro.sim.network.Network.reserve` serializes them, so the
  result matches the event engine's simulated time; the agreement
  tests assert exact equality, and consumers may rely on a documented
  tolerance of 1e-12 relative.
* :func:`naive_contention_summary` — why the naive schedule is slow,
  quantified with the static analyzers
  (:func:`~repro.hypercube.contention.analyze_contention` /
  :func:`~repro.hypercube.contention.count_edge_conflicts`): each
  rotation step is individually link-clean under e-cube, but the union
  of steps is heavily contended, and without pairwise synchronization
  nodes drift until circuits from different steps overlap.

The event engine stays authoritative for everything the closed form
does not model: fault injection, FORCED-drop semantics, byte-verified
data movement, and arbitrary node programs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core.programs import (
    BarrierStep,
    CommProgram,
    LocalShuffleStep,
    PairStep,
    SendStep,
)
from repro.core.schedule import (
    ExchangeStep,
    PhaseStart,
    ShuffleStep,
    Step,
    multiphase_schedule,
)
from repro.hypercube.contention import (
    ScheduleConflicts,
    analyze_contention,
    count_edge_conflicts,
)
from repro.hypercube.routing import ecube_path_edges
from repro.model.params import MachineParams
from repro.util.bitops import popcount
from repro.util.validation import check_dimension, check_partition

__all__ = [
    "CompiledProgram",
    "CompiledSchedule",
    "NaiveContentionSummary",
    "NaiveSend",
    "NaiveTimeline",
    "ProgramTimeline",
    "ScheduleTimeline",
    "batch_exchange_times",
    "batch_program_times",
    "compile_program",
    "compile_schedule",
    "exchange_time",
    "exchange_timeline",
    "exchange_times",
    "naive_contention_summary",
    "naive_exchange_time",
    "naive_step_circuits",
    "naive_timeline",
    "program_time",
    "program_timeline",
    "program_times",
]

#: step-kind codes of a compiled schedule / program
KIND_BARRIER, KIND_EXCHANGE, KIND_SHUFFLE, KIND_SEND = 0, 1, 2, 3


def _step_durations(
    d: int,
    kinds: np.ndarray,
    bytes_per_m: np.ndarray,
    hops: np.ndarray,
    ms: Sequence[float],
    params: MachineParams,
) -> np.ndarray:
    """Per-step durations for each block size: shape ``(S, M)``.

    The shared lowering kernel behind :class:`CompiledSchedule` and
    :class:`CompiledProgram`.  Arithmetic mirrors the event engine term
    for term and in the same order (latency + ``τ·nbytes`` first, hop
    term added last), so integral block sizes reproduce its float
    results exactly.  Pairwise rows use the §7.4 effective constants
    (``λ_x``, ``δ_x``); one-way FORCED rows the plain ones (``λ``,
    ``δ``); barriers cost ``γ·d``; shuffles ``ρ`` per byte.
    """
    ms_arr = np.asarray(ms, dtype=np.float64)
    if ms_arr.ndim != 1:
        raise ValueError(f"ms must be one-dimensional, got shape {ms_arr.shape}")
    if ms_arr.size and float(ms_arr.min()) < 0:
        raise ValueError("block sizes must be >= 0")
    out = np.zeros((len(kinds), ms_arr.size), dtype=np.float64)
    barrier = kinds == KIND_BARRIER
    out[barrier, :] = params.global_sync_time(d)
    exchange = kinds == KIND_EXCHANGE
    if exchange.any():
        nbytes = bytes_per_m[exchange][:, None] * ms_arr[None, :]
        hop_terms = params.exchange_hop_time * hops[exchange].astype(np.float64)
        out[exchange, :] = (
            params.exchange_latency + params.byte_time * nbytes + hop_terms[:, None]
        )
    send = kinds == KIND_SEND
    if send.any():
        nbytes = bytes_per_m[send][:, None] * ms_arr[None, :]
        hop_terms = params.hop_time * hops[send].astype(np.float64)
        out[send, :] = (
            params.latency + params.byte_time * nbytes + hop_terms[:, None]
        )
    shuffle = kinds == KIND_SHUFFLE
    if shuffle.any():
        full_buffer = bytes_per_m[shuffle][:, None] * ms_arr[None, :]
        out[shuffle, :] = params.permute_time * full_buffer
    return out


# ----------------------------------------------------------------------
# contention-free schedules: closed-form lockstep timing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledSchedule:
    """A schedule reduced to per-step timing coefficients.

    For every step the duration on the calibrated machine is an affine
    function of the block size ``m``:

    * ``PhaseStart``  — ``γ·d``  (the global synchronization);
    * ``ExchangeStep`` — ``λ_x + τ·(m·2**(d-d_i)) + δ_x·h`` with ``h``
      the step's hop count;
    * ``ShuffleStep`` — ``ρ·(m·2**d)``.

    ``bytes_per_m`` holds the per-step byte multiplier (effective
    block for exchanges, full buffer for shuffles, 0 for barriers) and
    ``hops`` the exchange hop counts, so :meth:`durations` evaluates a
    whole block-size batch in one vectorized pass.
    """

    d: int
    partition: tuple[int, ...]
    steps: tuple[Step, ...]
    kinds: np.ndarray
    bytes_per_m: np.ndarray
    hops: np.ndarray

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def durations(self, ms: Sequence[float], params: MachineParams) -> np.ndarray:
        """Per-step durations for each block size: shape ``(S, M)``.

        Arithmetic mirrors the event engine term for term and in the
        same order (``λ_x + τ·nbytes`` first, hop term added last), so
        integral block sizes reproduce its float results exactly.
        """
        return _step_durations(
            self.d, self.kinds, self.bytes_per_m, self.hops, ms, params
        )

    def totals(self, ms: Sequence[float], params: MachineParams) -> np.ndarray:
        """Total exchange time per block size (``cumsum`` accumulation,
        matching the engine's sequential clock advance)."""
        durations = self.durations(ms, params)
        if durations.shape[0] == 0:
            return np.zeros(durations.shape[1], dtype=np.float64)
        return durations.cumsum(axis=0)[-1]

    def timeline(self, m: float, params: MachineParams) -> "ScheduleTimeline":
        """Per-step start/finish times of one lockstep run."""
        durations = self.durations([m], params)[:, 0]
        finish = durations.cumsum()
        start = np.concatenate(([0.0], finish[:-1]))
        return ScheduleTimeline(
            d=self.d, m=float(m), partition=self.partition,
            steps=self.steps, start=start, finish=finish,
        )


@dataclass(frozen=True)
class ScheduleTimeline:
    """Start/finish instants of every step of one lockstep run.

    Because the schedule is lockstep, these arrays describe *every*
    node simultaneously; ``finish[-1]`` is the run's makespan.
    """

    d: int
    m: float
    partition: tuple[int, ...]
    steps: tuple[Step, ...]
    start: np.ndarray
    finish: np.ndarray

    @property
    def total(self) -> float:
        """The makespan (equals ``simulate_exchange(...).time_us``)."""
        return float(self.finish[-1]) if len(self.finish) else 0.0


@lru_cache(maxsize=512)
def _compile_schedule(d: int, partition: tuple[int, ...]) -> CompiledSchedule:
    steps = tuple(multiphase_schedule(d, partition))
    kinds = np.empty(len(steps), dtype=np.int8)
    bytes_per_m = np.zeros(len(steps), dtype=np.int64)
    hops = np.zeros(len(steps), dtype=np.int64)
    for i, step in enumerate(steps):
        if isinstance(step, PhaseStart):
            kinds[i] = KIND_BARRIER
        elif isinstance(step, ExchangeStep):
            kinds[i] = KIND_EXCHANGE
            bytes_per_m[i] = 1 << (d - step.group.width)
            hops[i] = step.hops
        elif isinstance(step, ShuffleStep):
            kinds[i] = KIND_SHUFFLE
            bytes_per_m[i] = 1 << d
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step type {type(step).__name__}")
    kinds.setflags(write=False)
    bytes_per_m.setflags(write=False)
    hops.setflags(write=False)
    return CompiledSchedule(
        d=d, partition=partition, steps=steps,
        kinds=kinds, bytes_per_m=bytes_per_m, hops=hops,
    )


def compile_schedule(d: int, partition: Sequence[int] | None = None) -> CompiledSchedule:
    """Compile (and memoize) the timing coefficients of a schedule.

    ``partition=None`` selects the single-phase ``(d,)`` schedule, like
    :func:`repro.comm.program.simulate_exchange` does.
    """
    check_dimension(d, minimum=1)
    parts = check_partition(partition if partition is not None else (d,), d)
    return _compile_schedule(d, parts)


def exchange_times(
    d: int,
    ms: Sequence[float],
    partition: Sequence[int] | None,
    params: MachineParams,
) -> np.ndarray:
    """Lockstep exchange times for a batch of block sizes on one schedule."""
    return compile_schedule(d, partition).totals(ms, params)


def exchange_time(
    d: int,
    m: float,
    partition: Sequence[int] | None,
    params: MachineParams,
) -> float:
    """Total time of one contention-free exchange, closed form.

    Equals the event engine's measured virtual time exactly:

    >>> from repro.model.params import ipsc860
    >>> from repro.comm.program import simulate_exchange
    >>> fast = exchange_time(4, 24, (2, 2), ipsc860())
    >>> fast == simulate_exchange(4, 24, (2, 2), ipsc860()).time_us
    True
    """
    return float(exchange_times(d, [m], partition, params)[0])


def exchange_timeline(
    d: int,
    m: float,
    partition: Sequence[int] | None,
    params: MachineParams,
) -> ScheduleTimeline:
    """Per-step start/finish timeline of one contention-free exchange."""
    return compile_schedule(d, partition).timeline(m, params)


def batch_exchange_times(
    configs: Sequence[tuple[int, float, Sequence[int] | None]],
    params: MachineParams,
) -> np.ndarray:
    """Exchange times for a heterogeneous batch of configurations.

    ``configs`` holds ``(d, m, partition)`` triples; ``partition`` of
    ``None`` selects the *naive rotation baseline* (priced with the
    contention-aware replay), anything else the lockstep closed form.
    Configurations sharing a ``(d, partition)`` schedule are evaluated
    in one vectorized pass; the result is aligned with ``configs``.
    """
    out = np.empty(len(configs), dtype=np.float64)
    groups: dict[tuple[int, tuple[int, ...]], list[int]] = {}
    for index, (d, m, partition) in enumerate(configs):
        if partition is None:
            out[index] = naive_exchange_time(d, m, params)
            continue
        check_dimension(d, minimum=1)
        parts = check_partition(partition, d)
        groups.setdefault((d, parts), []).append(index)
    for (d, parts), indices in groups.items():
        ms = [configs[i][1] for i in indices]
        out[indices] = compile_schedule(d, parts).totals(ms, params)
    return out


# ----------------------------------------------------------------------
# the general program compiler: any CommProgram, one numpy pass
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledProgram:
    """A :class:`~repro.core.programs.CommProgram` reduced to timing
    coefficients.

    The same affine-in-``m`` lowering as :class:`CompiledSchedule`,
    extended with one-way ``KIND_SEND`` rows (``λ + τ·nbytes + δ·h``,
    the plain constants — FORCED one-way traffic pays no pairwise
    handshake).  ``totals`` accumulates the rows with ``cumsum`` in
    program order, which is the event engine's dispatch order along the
    program's critical-path chain, so the result equals the engine's
    makespan to float equality.
    """

    program: CommProgram
    kinds: np.ndarray
    bytes_per_m: np.ndarray
    hops: np.ndarray

    @property
    def d(self) -> int:
        return self.program.d

    @property
    def n_steps(self) -> int:
        return len(self.program.steps)

    def durations(self, ms: Sequence[float], params: MachineParams) -> np.ndarray:
        """Per-step durations for each block size: shape ``(S, M)``."""
        return _step_durations(
            self.d, self.kinds, self.bytes_per_m, self.hops, ms, params
        )

    def totals(self, ms: Sequence[float], params: MachineParams) -> np.ndarray:
        """Total program time per block size (engine-order ``cumsum``)."""
        durations = self.durations(ms, params)
        if durations.shape[0] == 0:
            return np.zeros(durations.shape[1], dtype=np.float64)
        return durations.cumsum(axis=0)[-1]

    def timeline(self, m: float, params: MachineParams) -> "ProgramTimeline":
        """Per-step start/finish times along the critical-path chain."""
        durations = self.durations([m], params)[:, 0]
        finish = durations.cumsum()
        start = np.concatenate(([0.0], finish[:-1]))
        return ProgramTimeline(
            program=self.program, m=float(m), start=start, finish=finish
        )


@dataclass(frozen=True)
class ProgramTimeline:
    """Start/finish instants along a program's critical-path chain.

    For lockstep programs these describe every node; for rooted trees
    (broadcast/scatter) they describe the root's chain, whose last
    finish is still the run's exact makespan (forwarding chains end at
    the same float — see :mod:`repro.core.programs`).
    """

    program: CommProgram
    m: float
    start: np.ndarray
    finish: np.ndarray

    @property
    def total(self) -> float:
        """The makespan (equals the event engine's simulated time)."""
        return float(self.finish[-1]) if len(self.finish) else 0.0


@lru_cache(maxsize=512)
def _compile_program(program: CommProgram) -> CompiledProgram:
    n = 1 << program.d
    kinds = np.empty(program.n_steps, dtype=np.int8)
    bytes_per_m = np.zeros(program.n_steps, dtype=np.int64)
    hops = np.zeros(program.n_steps, dtype=np.int64)
    for i, step in enumerate(program.steps):
        if isinstance(step, BarrierStep):
            kinds[i] = KIND_BARRIER
        elif isinstance(step, SendStep):
            if not (0 <= step.src < n and 0 <= step.dst < n):
                raise ValueError(
                    f"step {i}: endpoints ({step.src}, {step.dst}) outside "
                    f"the {program.d}-cube"
                )
            if step.src == step.dst:
                raise ValueError(f"step {i}: send from node {step.src} to itself")
            if step.bytes_per_m < 0:
                raise ValueError(f"step {i}: negative byte multiplier")
            kinds[i] = KIND_SEND
            bytes_per_m[i] = step.bytes_per_m
            hops[i] = step.hops
        elif isinstance(step, PairStep):
            if not 1 <= step.shift < n:
                raise ValueError(
                    f"step {i}: pair shift {step.shift} outside 1..{n - 1}"
                )
            if step.bytes_per_m < 0:
                raise ValueError(f"step {i}: negative byte multiplier")
            kinds[i] = KIND_EXCHANGE
            bytes_per_m[i] = step.bytes_per_m
            hops[i] = step.hops
        elif isinstance(step, LocalShuffleStep):
            if step.bytes_per_m < 0:
                raise ValueError(f"step {i}: negative byte multiplier")
            kinds[i] = KIND_SHUFFLE
            bytes_per_m[i] = step.bytes_per_m
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown program step {type(step).__name__}")
    kinds.setflags(write=False)
    bytes_per_m.setflags(write=False)
    hops.setflags(write=False)
    return CompiledProgram(
        program=program, kinds=kinds, bytes_per_m=bytes_per_m, hops=hops
    )


def compile_program(program: CommProgram) -> CompiledProgram:
    """Compile (and memoize) the timing coefficients of a program.

    Accepts any contention-free :class:`~repro.core.programs.CommProgram`
    — the exchange, every §9 pattern program, or a hand-built chain —
    after validating each step structurally (endpoints inside the cube,
    no self-sends, shifts in range).  Contended programs (the naive
    rotation) have no lockstep closed form and are refused; price them
    with :func:`naive_exchange_time` / :func:`batch_program_times`.

    >>> from repro.core.programs import broadcast_binomial_steps
    >>> compile_program(broadcast_binomial_steps(3)).n_steps
    4
    """
    if program.contended:
        raise ValueError(
            f"program {program.name!r} is contended: its cost is link/port "
            f"serialization, not a lockstep chain; use batch_program_times "
            f"(or naive_exchange_time) instead"
        )
    check_dimension(program.d, minimum=1)
    return _compile_program(program)


def program_times(
    program: CommProgram, ms: Sequence[float], params: MachineParams
) -> np.ndarray:
    """Program times for a batch of block sizes, one numpy pass."""
    return compile_program(program).totals(ms, params)


def program_time(program: CommProgram, m: float, params: MachineParams) -> float:
    """Total time of one contention-free program, closed form.

    Equals the event engine's measured virtual time exactly:

    >>> from repro.core.programs import pattern_program
    >>> from repro.model.params import ipsc860
    >>> from repro.patterns import simulate_broadcast
    >>> fast = program_time(pattern_program("broadcast", "binomial", 4), 24, ipsc860())
    >>> fast == simulate_broadcast(4, 24, ipsc860(), algorithm="binomial")[0]
    True
    """
    return float(program_times(program, [m], params)[0])


def program_timeline(
    program: CommProgram, m: float, params: MachineParams
) -> ProgramTimeline:
    """Per-step start/finish timeline along the critical-path chain."""
    return compile_program(program).timeline(m, params)


def batch_program_times(
    configs: Sequence[tuple[CommProgram, float]],
    params: MachineParams,
) -> np.ndarray:
    """Program times for a heterogeneous batch of ``(program, m)`` pairs.

    Configurations sharing a program are evaluated in one vectorized
    pass over their block sizes; the result is aligned with
    ``configs``.  Contended programs named ``"naive"`` fall back to the
    reservation replay (:func:`naive_exchange_time`); any other
    contended program is refused — there is nothing exact to price it
    with.
    """
    out = np.empty(len(configs), dtype=np.float64)
    groups: dict[CommProgram, list[int]] = {}
    for index, (program, m) in enumerate(configs):
        if program.contended:
            if program.name != "naive":
                raise ValueError(
                    f"no contention model for contended program {program.name!r}"
                )
            out[index] = naive_exchange_time(program.d, m, params)
            continue
        groups.setdefault(program, []).append(index)
    for program, indices in groups.items():
        ms = [configs[i][1] for i in indices]
        out[indices] = compile_program(program).totals(ms, params)
    return out


# ----------------------------------------------------------------------
# the contended naive baseline: reservation replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NaiveSend:
    """One FORCED send of the naive rotation schedule, as granted.

    ``t_issue`` is when the node asked for the circuit, ``t_start``
    when every link and both endpoint ports were free (the difference
    is serialization wait — the §2 edge-contention penalty in action),
    ``t_end`` when the transfer left the wire.
    """

    src: int
    dst: int
    step: int
    hops: int
    t_issue: float
    t_start: float
    t_end: float

    @property
    def wait(self) -> float:
        """Serialization wait before the circuit was granted."""
        return self.t_start - self.t_issue


@dataclass(frozen=True)
class NaiveTimeline:
    """The naive rotation baseline, priced send by send."""

    d: int
    m: float
    total: float
    sends: tuple[NaiveSend, ...]

    @property
    def total_wait(self) -> float:
        """Aggregate serialization wait over all sends (µs)."""
        return sum(send.wait for send in self.sends)

    @property
    def contended_sends(self) -> int:
        """Sends that had to wait for a link or port to free up."""
        return sum(1 for send in self.sends if send.wait > 0.0)


@lru_cache(maxsize=64)
def _naive_resources(d: int) -> dict[tuple[int, int], tuple]:
    """Reservation resource sets per (src, dst): e-cube links plus both
    endpoint ports (the §7.2 serialization the naive schedule pays)."""
    n = 1 << d
    resources: dict[tuple[int, int], tuple] = {}
    for src in range(n):
        for step in range(1, n):
            dst = (src + step) % n
            links = tuple(ecube_path_edges(src, dst))
            resources[(src, dst)] = links + (("port", src), ("port", dst))
    return resources


def _naive_replay(
    d: int, m: float, params: MachineParams, *, collect: bool
) -> tuple[float, tuple[NaiveSend, ...]]:
    """Replay the naive rotation schedule's reservations.

    Mirrors the event engine exactly: after the initial barrier every
    node issues its ``n-1`` FORCED sends sequentially, each send
    greedily reserving its circuit links and both endpoint ports at
    issue time (``Network.reserve`` semantics), and ties at equal
    virtual times resolve in schedule order.  Receives consume no
    virtual time, so the makespan is the last grant's completion.
    """
    check_dimension(d, minimum=1)
    if m < 0:
        raise ValueError(f"block size must be >= 0, got {m}")
    n = 1 << d
    resources = _naive_resources(d)
    free_at: dict[object, float] = {}
    t0 = params.global_sync_time(d)
    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    for rank in range(n):
        seq += 1
        heap.append((t0, seq, rank, 1))
    heapq.heapify(heap)
    latency, byte_time, hop_time = params.latency, params.byte_time, params.hop_time
    transfer = latency + byte_time * m
    finish = 0.0
    sends: list[NaiveSend] = []
    while heap:
        t_issue, _, rank, step = heapq.heappop(heap)
        dst = (rank + step) % n
        duration = transfer + hop_time * popcount(rank ^ dst)
        t_start = t_issue
        held = resources[(rank, dst)]
        for resource in held:
            t_free = free_at.get(resource, 0.0)
            if t_free > t_start:
                t_start = t_free
        t_end = t_start + duration
        for resource in held:
            free_at[resource] = t_end
        # the engine schedules the completion relative to the current
        # clock; reproduce that exact float so ordering cannot drift
        fires_at = t_issue + (t_end - t_issue)
        if fires_at > finish:
            finish = fires_at
        if collect:
            sends.append(
                NaiveSend(
                    src=rank, dst=dst, step=step,
                    hops=popcount(rank ^ dst),
                    t_issue=t_issue, t_start=t_start, t_end=t_end,
                )
            )
        if step + 1 < n:
            seq += 1
            heapq.heappush(heap, (fires_at, seq, rank, step + 1))
    return finish, tuple(sends)


@lru_cache(maxsize=4096)
def naive_exchange_time(d: int, m: float, params: MachineParams) -> float:
    """Contention-priced time of the naive rotation baseline.

    Matches :func:`repro.comm.program.simulate_naive_exchange` exactly
    (asserted by the agreement tests; documented tolerance 1e-12
    relative), at a fraction of the cost: the replay prices the edge
    and port serialization without running coroutines or moving bytes.
    """
    total, _ = _naive_replay(d, m, params, collect=False)
    return total


def naive_timeline(d: int, m: float, params: MachineParams) -> NaiveTimeline:
    """The naive baseline with its full per-send grant timeline."""
    total, sends = _naive_replay(d, m, params, collect=True)
    return NaiveTimeline(d=d, m=float(m), total=total, sends=sends)


# ----------------------------------------------------------------------
# why naive is slow: static contention profile + measured serialization
# ----------------------------------------------------------------------
def naive_step_circuits(d: int, step: int) -> list[tuple[int, int]]:
    """The circuits rotation step ``step`` holds if nodes stay in step."""
    check_dimension(d, minimum=1)
    n = 1 << d
    if not 1 <= step < n:
        raise ValueError(f"rotation step {step} out of range 1..{n - 1}")
    return [(src, (src + step) % n) for src in range(n)]


@dataclass(frozen=True)
class NaiveContentionSummary:
    """Static and replayed contention diagnostics of the naive schedule.

    ``static_step_conflicts`` counts over-subscribed links when each
    rotation step runs in isolation — it is 0 for every ``d``: the
    rotation steps are individually link-clean under e-cube
    (``static_step_detail`` carries the per-step provenance backing
    that count: which steps, which links).  The harm comes from
    *drift*: unsynchronized nodes fall out of step until circuits from
    different steps coexist; ``overlap_conflict_links`` and
    ``overlap_max_edge_load`` analyze that envelope (the union of all
    steps' circuits), and ``serialization_wait_us`` /
    ``contended_sends`` report what the reservation replay actually
    measured for this ``(d, m)``.
    """

    d: int
    m: float
    total_us: float
    n_sends: int
    serialization_wait_us: float
    contended_sends: int
    static_step_conflicts: int
    overlap_conflict_links: int
    overlap_max_edge_load: int
    static_step_detail: ScheduleConflicts


def naive_contention_summary(
    d: int, m: float, params: MachineParams
) -> NaiveContentionSummary:
    """Price the naive baseline and explain where the time goes."""
    timeline = naive_timeline(d, m, params)
    n = 1 << d
    per_step = [naive_step_circuits(d, step) for step in range(1, n)]
    union_report = analyze_contention(
        circuit for circuits in per_step for circuit in circuits
    )
    step_detail = count_edge_conflicts(per_step)
    return NaiveContentionSummary(
        d=d,
        m=float(m),
        total_us=timeline.total,
        n_sends=len(timeline.sends),
        serialization_wait_us=timeline.total_wait,
        contended_sends=timeline.contended_sends,
        static_step_conflicts=step_detail.total,
        overlap_conflict_links=len(union_report.edge_conflicts),
        overlap_max_edge_load=union_report.max_edge_load,
        static_step_detail=step_detail,
    )
