"""Trace capture and statistics for simulated runs.

Every transmission, barrier, shuffle and message drop is recorded with
its virtual-time interval; the statistics layer turns the records into
the quantities the benchmarks report (makespan, contention wait, link
utilization, per-phase breakdowns).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = [
    "BarrierRecord",
    "PlanRecord",
    "RetryRecord",
    "ShuffleRecord",
    "Trace",
    "TransmissionRecord",
]


@dataclass(frozen=True)
class TransmissionRecord:
    """One message or pairwise exchange on the wire.

    ``t_request`` is when the sender asked for the circuit,
    ``t_start`` when every link of the path was granted (the difference
    is contention wait), ``t_end`` when the transfer completed.
    """

    src: int
    dst: int
    nbytes: int
    hops: int
    t_request: float
    t_start: float
    t_end: float
    kind: str  # "exchange", "forced", "unforced"
    tag: int = 0

    @property
    def wait(self) -> float:
        """Contention wait before the circuit was granted."""
        return self.t_start - self.t_request

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class BarrierRecord:
    """One global synchronization."""

    t_first_arrival: float
    t_release: float
    n_participants: int


@dataclass(frozen=True)
class ShuffleRecord:
    """One local permutation pass."""

    node: int
    nbytes: int
    t_start: float
    t_end: float


@dataclass(frozen=True)
class RetryRecord:
    """One blocked-and-retried transfer attempt under fault injection.

    A sender whose circuit crosses a link inside a scheduled outage
    window does not lose the block: it waits a deterministic capped
    backoff and tries again.  Each such wait is recorded here —
    ``attempt`` counts from 0, ``t_blocked`` is when the dead link was
    observed, ``t_retry`` when the sender will look again, ``link``
    names the gating dead link (as a ``"src->dst"`` string)."""

    src: int
    dst: int
    tag: int
    attempt: int
    t_blocked: float
    t_retry: float
    link: str

    @property
    def backoff(self) -> float:
        return self.t_retry - self.t_blocked


@dataclass(frozen=True)
class PlanRecord:
    """One collective-planning decision taken for this run.

    Recorded when a planner (rather than a hardcoded partition) chose
    the algorithm for a collective — the audit trail linking the
    optimizer's advice to what the machine actually executed.
    ``predicted_us`` is ``None`` for algorithms without an analytic
    model (the naive rotation baseline).
    """

    d: int
    m: float
    algorithm: str
    partition: tuple[int, ...] | None
    predicted_us: float | None
    policy: str
    t_decided: float = 0.0

    @classmethod
    def from_decision(cls, decision, t_decided: float = 0.0) -> "PlanRecord":
        """Snapshot a :class:`repro.plan.PlanDecision` (duck-typed, so
        the sim layer stays independent of the plan package)."""
        return cls(
            d=decision.d,
            m=float(decision.m),
            algorithm=decision.algorithm,
            partition=decision.partition,
            predicted_us=decision.predicted_us,
            policy=decision.policy,
            t_decided=t_decided,
        )


@dataclass
class Trace:
    """Accumulated records of one simulated run."""

    transmissions: list[TransmissionRecord] = field(default_factory=list)
    barriers: list[BarrierRecord] = field(default_factory=list)
    shuffles: list[ShuffleRecord] = field(default_factory=list)
    dropped_messages: list[tuple[int, int, int, float]] = field(default_factory=list)
    phase_marks: list[tuple[int, float]] = field(default_factory=list)
    plan_decisions: list[PlanRecord] = field(default_factory=list)
    retries: list[RetryRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_transmission(self, record: TransmissionRecord) -> None:
        self.transmissions.append(record)

    def record_barrier(self, record: BarrierRecord) -> None:
        self.barriers.append(record)

    def record_shuffle(self, record: ShuffleRecord) -> None:
        self.shuffles.append(record)

    def record_drop(self, src: int, dst: int, tag: int, time: float) -> None:
        self.dropped_messages.append((src, dst, tag, time))

    def mark_phase(self, phase_index: int, time: float) -> None:
        self.phase_marks.append((phase_index, time))

    def record_plan(self, record: PlanRecord) -> None:
        self.plan_decisions.append(record)

    def record_retry(self, record: RetryRecord) -> None:
        self.retries.append(record)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Last completion time over all recorded activity."""
        ends = [t.t_end for t in self.transmissions]
        ends += [b.t_release for b in self.barriers]
        ends += [s.t_end for s in self.shuffles]
        return max(ends, default=0.0)

    @property
    def total_contention_wait(self) -> float:
        """Summed circuit-grant delays; zero for contention-free
        schedules (asserted by the tests for all paper schedules)."""
        return sum(t.wait for t in self.transmissions)

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transmissions)

    @property
    def n_transmissions(self) -> int:
        return len(self.transmissions)

    def transmissions_per_node(self) -> Counter:
        """Transmission counts keyed by source node."""
        return Counter(t.src for t in self.transmissions)

    def per_phase_times(self) -> list[tuple[int, float, float]]:
        """(phase_index, t_begin, t_end) using the recorded phase marks.

        The end of phase ``i`` is the beginning of phase ``i+1`` (or
        the makespan for the last phase).
        """
        if not self.phase_marks:
            return []
        marks = sorted(set(self.phase_marks), key=lambda item: item[1])
        out = []
        for idx, (phase, begin) in enumerate(marks):
            end = marks[idx + 1][1] if idx + 1 < len(marks) else self.makespan
            out.append((phase, begin, end))
        return out

    def summary(self) -> dict[str, float]:
        """Headline statistics for bench output."""
        return {
            "makespan_us": self.makespan,
            "n_transmissions": float(self.n_transmissions),
            "total_bytes": float(self.total_bytes),
            "contention_wait_us": self.total_contention_wait,
            "n_barriers": float(len(self.barriers)),
            "n_shuffles": float(len(self.shuffles)),
            "n_drops": float(len(self.dropped_messages)),
            "n_plan_decisions": float(len(self.plan_decisions)),
            "n_retries": float(len(self.retries)),
        }
