"""Circuit-switched network: link reservation and transfer timing.

A transmission on a circuit-switched hypercube establishes a dedicated
path (every directed link of its e-cube route) and holds it for the
whole transfer.  The network model here grants link time by
*reservation*: a transfer ready at time ``t`` starts at the earliest
instant all its links are free — ``max(t, free_at(link) for link in
path)`` — and marks them busy until it completes.  Transfers that share
a link therefore serialize, reproducing the paper's "disastrous" edge
contention; transfers that share only nodes are unaffected, matching
the §2 measurement that node contention has no effect.

Timing follows the §4.3 model: a message of ``m`` bytes over ``h``
dimensions costs ``λ + τ·m + δ·h``; a pairwise synchronized exchange
costs ``λ_eff + τ·m + δ_eff·h`` (the zero-byte handshake folded in,
§7.2/§7.4); an UNFORCED message beyond the eager limit pays a
reserve–acknowledge round trip first (§7.1).

Endpoint serialization (§7.2): on the iPSC-860 a receive and a
transmit at the same processor proceed concurrently only when the two
transfers start simultaneously — which is exactly what the pairwise
synchronization buys.  Un-synchronized messages therefore also reserve
a *port* resource at each endpoint, so overlapping unsynchronized
traffic at a node serializes; synchronized exchanges bypass the ports.
This is what makes contention-oblivious schedules pay the full
penalty the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypercube.routing import ecube_hops, ecube_path_edges
from repro.hypercube.topology import Hypercube, Link
from repro.model.params import MachineParams
from repro.sim.faults import MAX_RETRY_ATTEMPTS, FaultPlan
from repro.sim.trace import RetryRecord, Trace, TransmissionRecord

__all__ = ["Network", "Grant"]


@dataclass(frozen=True)
class Grant:
    """Outcome of a link reservation: when the circuit starts/ends."""

    t_start: float
    t_end: float


class Network:
    """Link bookkeeping plus the transfer-time model."""

    def __init__(
        self,
        cube: Hypercube,
        params: MachineParams,
        trace: Trace,
        *,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.cube = cube
        self.params = params
        self.trace = trace
        if fault_plan is not None and fault_plan.d != cube.dimension:
            raise ValueError(
                f"fault plan is for a {fault_plan.d}-cube, machine is a "
                f"{cube.dimension}-cube"
            )
        #: fault-injection schedule; ``None`` keeps every code path
        #: byte-identical to the fault-free network (the zero-overhead
        #: benchmark pins this)
        self.fault_plan = fault_plan
        #: next-free times of reservable resources: directed links plus
        #: per-node ports (keyed ("port", node))
        self._free_at: dict[object, float] = {}
        #: failed directed links (fault injection): a circuit routed
        #: through one of these cannot be established
        self._failed: set[Link] = set()

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _validate_link(self, link: Link) -> None:
        """Reject links whose endpoints fall outside this cube.

        ``Link`` only checks adjacency, so e.g. ``Link(8, 9)`` is a
        perfectly valid link object — of some *larger* cube.  Accepting
        it here would silently no-op the injected fault."""
        if not (self.cube.contains(link.src) and self.cube.contains(link.dst)):
            raise ValueError(
                f"link {link} does not exist in a {self.cube.dimension}-cube "
                f"(nodes 0..{self.cube.n_nodes - 1})"
            )

    def fail_link(self, link: Link, *, both_directions: bool = True) -> None:
        """Mark a link as failed.  e-cube routing is fixed, so circuits
        through a failed link cannot be re-routed; attempting one raises
        :class:`~repro.sim.engine.SimulationError` (the run's failure
        is the observable — hypercubes of this era had no adaptive
        fallback).  Used by the failure-injection tests.

        Manual failures are *permanent* until :meth:`restore_link`;
        scheduled transient outages (a :class:`FaultPlan`'s
        ``LinkOutage`` windows) are instead survived by block-and-retry
        in :meth:`await_links_alive`."""
        self._validate_link(link)
        self._failed.add(link)
        if both_directions:
            self._failed.add(link.reverse)

    def restore_link(self, link: Link, *, both_directions: bool = True) -> None:
        """Clear a previously injected link failure."""
        self._validate_link(link)
        self._failed.discard(link)
        if both_directions:
            self._failed.discard(link.reverse)

    def check_links_alive(self, links: set) -> None:
        """Raise if any link of a prospective circuit has failed."""
        from repro.sim.engine import SimulationError

        dead = [link for link in links if isinstance(link, Link) and link in self._failed]
        if dead:
            raise SimulationError(
                "circuit requires failed link(s) "
                + ", ".join(sorted(map(str, dead)))
                + "; e-cube routing is fixed, no alternative path exists"
            )

    def await_links_alive(
        self, t_ready: float, links: set, *, src: int, dst: int, tag: int
    ) -> float:
        """Block-and-retry until no path link sits inside a scheduled
        outage window; returns the (possibly delayed) ready time.

        Unlike a manually failed link (which raises — no heal time is
        ever coming), a :class:`FaultPlan` outage is *transient*: the
        sender holds the block, waits a deterministic capped backoff,
        and looks again.  Every wait is recorded as a
        :class:`~repro.sim.trace.RetryRecord` so a chaos sweep can
        prove zero blocks were lost.  Aliveness is judged at the ready
        instant; a window opening *after* the circuit is granted does
        not tear it down (circuit establishment is the vulnerable step,
        not the streaming transfer).
        """
        plan = self.fault_plan
        if plan is None or not plan.outages:
            return t_ready
        t = t_ready
        for attempt in range(MAX_RETRY_ATTEMPTS):
            gating: Link | None = None
            for link in links:
                if isinstance(link, Link) and plan.down_until(link, t) is not None:
                    gating = link if gating is None else min(gating, link)
            if gating is None:
                return t
            t_retry = t + plan.backoff_us(attempt)
            self.trace.record_retry(
                RetryRecord(
                    src=src,
                    dst=dst,
                    tag=tag,
                    attempt=attempt,
                    t_blocked=t,
                    t_retry=t_retry,
                    link=str(gating),
                )
            )
            t = t_retry
        from repro.sim.engine import SimulationError

        raise SimulationError(
            f"transfer {src}->{dst} (tag {tag}) still blocked after "
            f"{MAX_RETRY_ATTEMPTS} retries; outage outlasts the retry budget"
        )

    # ------------------------------------------------------------------
    # link reservation
    # ------------------------------------------------------------------
    def link_free_at(self, link: Link) -> float:
        return self._free_at.get(link, 0.0)

    @staticmethod
    def port(node: int) -> tuple[str, int]:
        """The endpoint-serialization resource of ``node`` (§7.2)."""
        return ("port", node)

    def reserve(self, t_ready: float, links: set[object], duration: float) -> Grant:
        """Grant all ``links`` for ``duration`` starting no earlier than
        ``t_ready``; returns the granted interval.

        Contention-free schedules always get ``t_start == t_ready``
        (asserted by the tests for every paper schedule).
        """
        t_start = t_ready
        for link in links:
            t_start = max(t_start, self.link_free_at(link))
        t_end = t_start + duration
        for link in links:
            self._free_at[link] = t_end
        return Grant(t_start=t_start, t_end=t_end)

    # ------------------------------------------------------------------
    # path helpers
    # ------------------------------------------------------------------
    def circuit_links(self, src: int, dst: int) -> set[Link]:
        """Directed links held by the circuit ``src -> dst``."""
        self.cube.validate_node(src)
        self.cube.validate_node(dst)
        return set(ecube_path_edges(src, dst))

    def exchange_links(self, a: int, b: int) -> set[Link]:
        """Links held by a full-duplex pairwise exchange: both e-cube
        directions (their edge sets differ in general)."""
        return self.circuit_links(a, b) | self.circuit_links(b, a)

    # ------------------------------------------------------------------
    # timing model
    # ------------------------------------------------------------------
    def message_duration(
        self,
        nbytes: int,
        hops: int,
        *,
        forced: bool,
        lat_scale: float = 1.0,
        bw_scale: float = 1.0,
    ) -> float:
        """Wire time of one message (§4.3 model; §7.1 UNFORCED penalty).

        The reserve–acknowledge handshake of a large UNFORCED message
        is modelled as two zero-byte messages over the same distance,
        using the zero-byte startup λ₀ where the machine defines one.

        ``lat_scale``/``bw_scale`` degrade the startup (λ-like) and
        per-byte (τ) shares for circuits crossing degraded links (the
        per-hop switch time δ is internal to the router and not
        degraded).  Both default to 1.0, leaving the fault-free model
        bit-identical.
        """
        p = self.params
        base = p.latency * lat_scale + p.byte_time * bw_scale * nbytes + p.hop_time * hops
        if forced or nbytes <= p.unforced_eager_limit:
            return base
        handshake_latency = p.sync_latency if p.sync_latency > 0 else p.latency
        return base + 2.0 * (handshake_latency * lat_scale + p.hop_time * hops)

    def exchange_duration(
        self,
        nbytes: int,
        hops: int,
        *,
        lat_scale: float = 1.0,
        bw_scale: float = 1.0,
    ) -> float:
        """Wire time of a pairwise synchronized exchange (§7.2):
        ``λ_eff + τ·m + δ_eff·h`` with both directions concurrent.
        Scale factors degrade the λ_eff and τ shares as in
        :meth:`message_duration`."""
        p = self.params
        return (
            p.exchange_latency * lat_scale
            + p.byte_time * bw_scale * nbytes
            + p.exchange_hop_time * hops
        )

    def path_scales(self, links: set) -> tuple[float, float]:
        """Worst-case ``(lat_scale, bw_scale)`` along a circuit, from
        the active fault plan (``(1.0, 1.0)`` without one)."""
        plan = self.fault_plan
        if plan is None or not plan.degradations:
            return (1.0, 1.0)
        return plan.path_scales(links)

    # ------------------------------------------------------------------
    # transfers (reserve + record)
    # ------------------------------------------------------------------
    def start_message(
        self, t_ready: float, src: int, dst: int, nbytes: int, tag: int, *, forced: bool
    ) -> Grant:
        """Reserve the circuit for a one-way message and record it."""
        hops = ecube_hops(src, dst)
        circuit = self.circuit_links(src, dst)
        self.check_links_alive(circuit)
        t_ready = self.await_links_alive(t_ready, circuit, src=src, dst=dst, tag=tag)
        lat_scale, bw_scale = self.path_scales(circuit)
        duration = self.message_duration(
            nbytes, hops, forced=forced, lat_scale=lat_scale, bw_scale=bw_scale
        )
        resources: set[object] = set(circuit)
        # Un-synchronized messages serialize with other traffic at both
        # endpoints (§7.2); synchronized exchanges do not pay this.
        resources.add(self.port(src))
        resources.add(self.port(dst))
        grant = self.reserve(t_ready, resources, duration)
        self.trace.record_transmission(
            TransmissionRecord(
                src=src,
                dst=dst,
                nbytes=nbytes,
                hops=hops,
                t_request=t_ready,
                t_start=grant.t_start,
                t_end=grant.t_end,
                kind="forced" if forced else "unforced",
                tag=tag,
            )
        )
        return grant

    def start_cross_message(
        self, t_ready: float, src: int, dst: int, nbytes: int
    ) -> Grant:
        """Reserve the circuit for one background cross-traffic payload.

        Behaves like an un-synchronized FORCED message on the wire
        (links + endpoint ports, so it genuinely contends with the
        workload) but is recorded with ``kind="cross"`` / ``tag=-1`` so
        traces keep workload and background traffic separable."""
        hops = ecube_hops(src, dst)
        circuit = self.circuit_links(src, dst)
        self.check_links_alive(circuit)
        t_ready = self.await_links_alive(t_ready, circuit, src=src, dst=dst, tag=-1)
        lat_scale, bw_scale = self.path_scales(circuit)
        duration = self.message_duration(
            nbytes, hops, forced=True, lat_scale=lat_scale, bw_scale=bw_scale
        )
        resources: set[object] = set(circuit)
        resources.add(self.port(src))
        resources.add(self.port(dst))
        grant = self.reserve(t_ready, resources, duration)
        self.trace.record_transmission(
            TransmissionRecord(
                src=src,
                dst=dst,
                nbytes=nbytes,
                hops=hops,
                t_request=t_ready,
                t_start=grant.t_start,
                t_end=grant.t_end,
                kind="cross",
                tag=-1,
            )
        )
        return grant

    def start_exchange(
        self, t_ready: float, a: int, b: int, nbytes_a: int, nbytes_b: int, tag: int
    ) -> Grant:
        """Reserve both directions for a pairwise exchange and record it.

        ``t_ready`` is the rendezvous instant (both partners present).
        The concurrent bidirectional transfer completes when the larger
        payload does.
        """
        hops = ecube_hops(a, b)
        links = self.exchange_links(a, b)
        self.check_links_alive(links)
        t_ready = self.await_links_alive(t_ready, links, src=a, dst=b, tag=tag)
        lat_scale, bw_scale = self.path_scales(links)
        duration = self.exchange_duration(
            max(nbytes_a, nbytes_b), hops, lat_scale=lat_scale, bw_scale=bw_scale
        )
        grant = self.reserve(t_ready, links, duration)
        for src, dst, nbytes in ((a, b, nbytes_a), (b, a, nbytes_b)):
            self.trace.record_transmission(
                TransmissionRecord(
                    src=src,
                    dst=dst,
                    nbytes=nbytes,
                    hops=hops,
                    t_request=t_ready,
                    t_start=grant.t_start,
                    t_end=grant.t_end,
                    kind="exchange",
                    tag=tag,
                )
            )
        return grant
