"""The simulated circuit-switched hypercube.

:class:`SimulatedHypercube` assembles the event engine, network, and
synchronization services, boots one SPMD program per node, and resolves
the requests the programs yield.  The result of a run carries the
virtual makespan, every node's return value, and the full trace.

Example
-------
>>> from repro.model.params import ipsc860
>>> machine = SimulatedHypercube(2, ipsc860())
>>> def program(ctx):
...     other = ctx.rank ^ 1
...     data = yield ctx.exchange(other, payload=ctx.rank, nbytes=8)
...     return data
>>> result = machine.run(program)
>>> [result.node_results[r] for r in range(4)]
[1, 0, 3, 2]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.hypercube.topology import Hypercube
from repro.model.params import MachineParams
from repro.sim.engine import Engine, Process, Request, SimulationError
from repro.sim.node import (
    BarrierReq,
    ExchangeReq,
    NodeContext,
    PhaseMarkReq,
    PostRecvReq,
    RecvReq,
    SendReq,
    ShuffleReq,
    _Envelope,
)
from repro.sim.network import Network
from repro.sim.trace import BarrierRecord, ShuffleRecord, Trace

__all__ = ["RunResult", "SimulatedHypercube"]

ProgramFactory = Callable[[NodeContext], Generator]


@dataclass
class RunResult:
    """Outcome of one simulated SPMD run."""

    #: virtual time at which the last process finished (µs)
    time: float
    #: per-rank program return values
    node_results: list[Any]
    #: full event trace
    trace: Trace
    #: number of engine events dispatched
    n_events: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


class SimulatedHypercube:
    """A circuit-switched hypercube with calibrated timing.

    Parameters
    ----------
    d:
        Cube dimension.
    params:
        Machine constants (see :mod:`repro.model.params`).
    strict_forced:
        When True (default), a FORCED message arriving with no posted
        receive raises :class:`SimulationError` — the paper calls this
        situation "fatal".  When False the message is silently dropped
        and recorded in the trace (useful for demonstrating *why* the
        global synchronization is required).
    """

    def __init__(self, d: int, params: MachineParams, *, strict_forced: bool = True) -> None:
        self.cube = Hypercube(d)
        self.params = params
        self.strict_forced = strict_forced
        self.engine = Engine()
        self.trace = Trace()
        self.network = Network(self.cube, params, self.trace)
        self.contexts = [NodeContext(self, rank) for rank in self.cube.nodes()]
        # pairwise-exchange rendezvous: (a, b, tag) -> (request, process)
        self._rendezvous: dict[tuple[int, int, int], tuple[ExchangeReq, Process]] = {}
        # barrier bookkeeping
        self._barrier_waiters: list[Process] = []
        self._barrier_first_arrival: float = 0.0
        self._phase_marked: set[int] = set()

    # ------------------------------------------------------------------
    # running programs
    # ------------------------------------------------------------------
    def run(self, program: ProgramFactory, **kwargs: Any) -> RunResult:
        """Boot ``program(ctx, **kwargs)`` on every node and simulate to
        completion."""
        processes = []
        for ctx in self.contexts:
            generator = program(ctx, **kwargs) if kwargs else program(ctx)
            processes.append(self.engine.spawn(generator, name=f"node{ctx.rank}"))
        time = self.engine.run()
        return RunResult(
            time=time,
            node_results=[p.result for p in processes],
            trace=self.trace,
            n_events=self.engine.n_events,
        )

    # ------------------------------------------------------------------
    # request dispatch (called by _MachineRequest.activate)
    # ------------------------------------------------------------------
    def _activate(self, request: Request, process: Process) -> None:
        if isinstance(request, ExchangeReq):
            self._do_exchange(request, process)
        elif isinstance(request, SendReq):
            self._do_send(request, process)
        elif isinstance(request, RecvReq):
            self._do_recv(request, process)
        elif isinstance(request, PostRecvReq):
            request.ctx.state.post(request.src, request.tag)
            self.engine.schedule(0.0, lambda: process.resume(None))
        elif isinstance(request, BarrierReq):
            self._do_barrier(process)
        elif isinstance(request, ShuffleReq):
            self._do_shuffle(request, process)
        elif isinstance(request, PhaseMarkReq):
            if request.phase_index not in self._phase_marked:
                self._phase_marked.add(request.phase_index)
                self.trace.mark_phase(request.phase_index, self.engine.now)
            self.engine.schedule(0.0, lambda: process.resume(None))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown request type {type(request).__name__}")

    # ------------------------------------------------------------------
    def _do_exchange(self, request: ExchangeReq, process: Process) -> None:
        me = request.ctx.rank
        other = request.partner
        key = (min(me, other), max(me, other), request.tag)
        waiting = self._rendezvous.pop(key, None)
        if waiting is None:
            self._rendezvous[key] = (request, process)
            return
        other_req, other_proc = waiting
        if other_req.ctx.rank != other or other_req.partner != me:
            raise SimulationError(
                f"exchange mismatch: node {me} wants partner {other}, "
                f"node {other_req.ctx.rank} wants {other_req.partner} (tag {request.tag})"
            )
        grant = self.network.start_exchange(
            self.engine.now, me, other, request.nbytes, other_req.nbytes, request.tag
        )
        self.engine.at(grant.t_end, lambda: process.resume(other_req.payload))
        self.engine.at(grant.t_end, lambda: other_proc.resume(request.payload))

    def _do_send(self, request: SendReq, process: Process) -> None:
        src = request.ctx.rank
        grant = self.network.start_message(
            self.engine.now, src, request.dst, request.nbytes, request.tag,
            forced=request.forced,
        )
        envelope = _Envelope(src, request.dst, request.tag, request.payload, request.nbytes)
        self.engine.at(grant.t_end, lambda: self._deliver(envelope, request.forced))
        self.engine.at(grant.t_end, lambda: process.resume(None))

    def _deliver(self, envelope: _Envelope, forced: bool) -> None:
        state = self.contexts[envelope.dst].state
        blocked = state.match_blocked(envelope.src, envelope.tag)
        if blocked is not None:
            _, proc = blocked
            proc.resume(envelope.payload)
            return
        if forced:
            if state.consume_posted(envelope.src, envelope.tag):
                state.buffered.append(envelope)
                return
            self.trace.record_drop(envelope.src, envelope.dst, envelope.tag, self.engine.now)
            if self.strict_forced:
                raise SimulationError(
                    f"FORCED message {envelope.src}->{envelope.dst} (tag {envelope.tag}) "
                    f"arrived at t={self.engine.now:.1f} with no posted receive; "
                    f"on the real machine it would be discarded (paper §7.3: omitting "
                    f"the global synchronization is fatal)"
                )
            return
        state.buffered.append(envelope)

    def _do_recv(self, request: RecvReq, process: Process) -> None:
        state = request.ctx.state
        envelope = state.match_buffered(request.src, request.tag)
        if envelope is not None:
            self.engine.schedule(0.0, lambda: process.resume(envelope.payload))
            return
        state.blocked_recvs.append((request, process))

    def _do_barrier(self, process: Process) -> None:
        if not self._barrier_waiters:
            self._barrier_first_arrival = self.engine.now
        self._barrier_waiters.append(process)
        if len(self._barrier_waiters) < self.cube.n_nodes:
            return
        waiters = self._barrier_waiters
        self._barrier_waiters = []
        release = self.engine.now + self.params.global_sync_time(self.cube.dimension)
        self.trace.record_barrier(
            BarrierRecord(
                t_first_arrival=self._barrier_first_arrival,
                t_release=release,
                n_participants=len(waiters),
            )
        )
        for proc in waiters:
            self.engine.at(release, lambda p=proc: p.resume(None))

    def _do_shuffle(self, request: ShuffleReq, process: Process) -> None:
        duration = self.params.shuffle_time(request.nbytes)
        start = self.engine.now
        self.trace.record_shuffle(
            ShuffleRecord(
                node=request.ctx.rank,
                nbytes=request.nbytes,
                t_start=start,
                t_end=start + duration,
            )
        )
        self.engine.schedule(duration, lambda: process.resume(None))
