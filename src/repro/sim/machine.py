"""The simulated circuit-switched hypercube.

:class:`SimulatedHypercube` assembles the event engine, network, and
synchronization services, boots one SPMD program per node, and resolves
the requests the programs yield.  The result of a run carries the
virtual makespan, every node's return value, and the full trace.

Example
-------
>>> from repro.model.params import ipsc860
>>> machine = SimulatedHypercube(2, ipsc860())
>>> def program(ctx):
...     other = ctx.rank ^ 1
...     data = yield ctx.exchange(other, payload=ctx.rank, nbytes=8)
...     return data
>>> result = machine.run(program)
>>> [result.node_results[r] for r in range(4)]
[1, 0, 3, 2]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.hypercube.topology import Hypercube
from repro.model.params import MachineParams
from repro.sim.engine import Delay, Engine, Process, Request, SimulationError
from repro.sim.faults import CrossTraffic, FaultPlan
from repro.sim.node import (
    BarrierReq,
    ExchangeReq,
    NodeContext,
    PhaseMarkReq,
    PostRecvReq,
    RecvReq,
    SendReq,
    ShuffleReq,
    _Envelope,
)
from repro.sim.network import Network
from repro.sim.trace import BarrierRecord, ShuffleRecord, Trace

__all__ = ["RunResult", "SimulatedHypercube"]

ProgramFactory = Callable[[NodeContext], Generator]


@dataclass
class RunResult:
    """Outcome of one simulated SPMD run."""

    #: virtual time at which the last process finished (µs)
    time: float
    #: per-rank program return values
    node_results: list[Any]
    #: full event trace
    trace: Trace
    #: number of engine events dispatched
    n_events: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


class SimulatedHypercube:
    """A circuit-switched hypercube with calibrated timing.

    Parameters
    ----------
    d:
        Cube dimension.
    params:
        Machine constants (see :mod:`repro.model.params`).
    strict_forced:
        When True (default), a FORCED message arriving with no posted
        receive raises :class:`SimulationError` — the paper calls this
        situation "fatal".  When False the message is silently dropped
        and recorded in the trace (useful for demonstrating *why* the
        global synchronization is required).
    fault_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` the machine obeys
        natively: degraded links scale transfer times, stragglers scale
        local compute (delays and shuffles), scheduled outages make
        senders block-and-retry, and cross-traffic flows run as
        background processes stealing link time.  ``None`` (default)
        keeps every code path identical to the fault-free machine.
    """

    def __init__(
        self,
        d: int,
        params: MachineParams,
        *,
        strict_forced: bool = True,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.cube = Hypercube(d)
        self.params = params
        self.strict_forced = strict_forced
        self.fault_plan = fault_plan
        self.engine = Engine()
        self.trace = Trace()
        self.network = Network(self.cube, params, self.trace, fault_plan=fault_plan)
        self._cross_spawned = False
        self.contexts = [NodeContext(self, rank) for rank in self.cube.nodes()]
        # pairwise-exchange rendezvous: (a, b, tag) -> (request,
        # process, wait token at registration)
        self._rendezvous: dict[tuple[int, int, int], tuple[ExchangeReq, Process, int]] = {}
        # barrier bookkeeping
        # (process, wait token, arrival time) per barrier arrival
        self._barrier_waiters: list[tuple[Process, int, float]] = []
        self._phase_marked: set[int] = set()

    # ------------------------------------------------------------------
    # running programs
    # ------------------------------------------------------------------
    def run(self, program: ProgramFactory, **kwargs: Any) -> RunResult:
        """Boot ``program(ctx, **kwargs)`` on every node and simulate to
        completion."""
        processes = []
        for ctx in self.contexts:
            generator = program(ctx, **kwargs) if kwargs else program(ctx)
            processes.append(self.engine.spawn(generator, name=f"node{ctx.rank}"))
        self._spawn_cross_traffic()
        time = self.engine.run()
        extras: dict[str, Any] = {}
        if self.fault_plan is not None and self.fault_plan.cross_traffic:
            # background flows may drain after the workload; completion
            # is when the *node programs* finished, not when the last
            # cross-traffic message left the wire
            extras["engine_time"] = time
            time = max((p.end_time or 0.0) for p in processes)
        return RunResult(
            time=time,
            node_results=[p.result for p in processes],
            trace=self.trace,
            n_events=self.engine.n_events,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # fault-plan hooks
    # ------------------------------------------------------------------
    def compute_scale(self, rank: int) -> float:
        """Straggler compute-slowdown multiplier of ``rank`` (1.0
        without a fault plan)."""
        if self.fault_plan is None:
            return 1.0
        return self.fault_plan.compute_scale(rank)

    def _spawn_cross_traffic(self) -> None:
        """Boot one background process per declared cross-traffic flow
        (once per machine; flows use absolute emission times, so later
        ``run()`` calls on the same machine don't respawn them)."""
        plan = self.fault_plan
        if plan is None or self._cross_spawned or not plan.cross_traffic:
            return
        self._cross_spawned = True
        for index, flow in enumerate(plan.cross_traffic):
            self.engine.spawn(
                self._cross_traffic_program(flow), name=f"cross{index}"
            )

    def _cross_traffic_program(self, flow: CrossTraffic) -> Generator:
        """Fire-and-forget background sender: reserve the e-cube
        circuit for each scheduled payload, stealing link time from the
        workload without participating in it.  Emissions already in the
        past (machine booted late) fire immediately, keeping the flow
        bounded so the engine's deadlock check stays meaningful."""
        for t_emit in flow.emission_times():
            now = self.engine.now
            if t_emit > now:
                yield Delay(t_emit - now)
            self.network.start_cross_message(
                self.engine.now, flow.src, flow.dst, flow.nbytes
            )

    # ------------------------------------------------------------------
    # request dispatch (called by _MachineRequest.activate)
    # ------------------------------------------------------------------
    def _activate(self, request: Request, process: Process) -> None:
        if isinstance(request, ExchangeReq):
            self._do_exchange(request, process)
        elif isinstance(request, SendReq):
            self._do_send(request, process)
        elif isinstance(request, RecvReq):
            self._do_recv(request, process)
        elif isinstance(request, PostRecvReq):
            request.ctx.state.post(request.src, request.tag)
            self.engine.schedule(0.0, process.resume_callback(None))
        elif isinstance(request, BarrierReq):
            self._do_barrier(process)
        elif isinstance(request, ShuffleReq):
            self._do_shuffle(request, process)
        elif isinstance(request, PhaseMarkReq):
            if request.phase_index not in self._phase_marked:
                self._phase_marked.add(request.phase_index)
                self.trace.mark_phase(request.phase_index, self.engine.now)
            self.engine.schedule(0.0, process.resume_callback(None))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown request type {type(request).__name__}")

    # ------------------------------------------------------------------
    def _do_exchange(self, request: ExchangeReq, process: Process) -> None:
        me = request.ctx.rank
        other = request.partner
        key = (min(me, other), max(me, other), request.tag)
        waiting = self._rendezvous.pop(key, None)
        if waiting is not None and not waiting[1].wait_is_current(waiting[2]):
            waiting = None  # the parked partner was failed; entry is stale
        if waiting is None:
            self._rendezvous[key] = (request, process, process.wait_token())
            return
        other_req, other_proc, other_token = waiting
        if other_req.ctx.rank != other or other_req.partner != me:
            raise SimulationError(
                f"exchange mismatch: node {me} wants partner {other}, "
                f"node {other_req.ctx.rank} wants {other_req.partner} (tag {request.tag})"
            )
        grant = self.network.start_exchange(
            self.engine.now, me, other, request.nbytes, other_req.nbytes, request.tag
        )
        self.engine.at(grant.t_end, process.resume_callback(other_req.payload))
        self.engine.at(
            grant.t_end, other_proc.resume_callback(request.payload, token=other_token)
        )

    def _do_send(self, request: SendReq, process: Process) -> None:
        src = request.ctx.rank
        grant = self.network.start_message(
            self.engine.now, src, request.dst, request.nbytes, request.tag,
            forced=request.forced,
        )
        envelope = _Envelope(src, request.dst, request.tag, request.payload, request.nbytes)
        self.engine.at(grant.t_end, lambda: self._deliver(envelope, request.forced))
        self.engine.at(grant.t_end, process.resume_callback(None))

    def _deliver(self, envelope: _Envelope, forced: bool) -> None:
        state = self.contexts[envelope.dst].state
        blocked = state.match_blocked(envelope.src, envelope.tag)
        if blocked is not None:
            _, proc = blocked
            proc.resume(envelope.payload)
            return
        if forced:
            if state.consume_posted(envelope.src, envelope.tag):
                state.buffered.append(envelope)
                return
            self.trace.record_drop(envelope.src, envelope.dst, envelope.tag, self.engine.now)
            if self.strict_forced:
                raise SimulationError(
                    f"FORCED message {envelope.src}->{envelope.dst} (tag {envelope.tag}) "
                    f"arrived at t={self.engine.now:.1f} with no posted receive; "
                    f"on the real machine it would be discarded (paper §7.3: omitting "
                    f"the global synchronization is fatal)"
                )
            return
        state.buffered.append(envelope)

    def _do_recv(self, request: RecvReq, process: Process) -> None:
        state = request.ctx.state
        if state.has_buffered(request.src, request.tag):
            # pop at delivery time, not match time: if the wait is
            # superseded (fail) before the zero-delay event fires, the
            # message must stay buffered, not vanish
            token = process.wait_token()

            def deliver() -> None:
                if not process.wait_is_current(token):
                    return
                envelope = state.match_buffered(request.src, request.tag)
                if envelope is None:
                    # another receiver on this node won the race for
                    # the message: block like a recv that never matched
                    state.blocked_recvs.append((request, process, token))
                    return
                process.resume(envelope.payload)

            self.engine.schedule(0.0, deliver)
            return
        state.blocked_recvs.append((request, process, process.wait_token()))

    def _do_barrier(self, process: Process) -> None:
        # drop waiters that were failed while parked: they must count
        # neither toward the release threshold nor as participants
        live = [w for w in self._barrier_waiters if w[0].wait_is_current(w[1])]
        live.append((process, process.wait_token(), self.engine.now))
        self._barrier_waiters = live
        if len(self._barrier_waiters) < self.cube.n_nodes:
            return
        waiters = self._barrier_waiters
        self._barrier_waiters = []
        release = self.engine.now + self.params.global_sync_time(self.cube.dimension)
        self.trace.record_barrier(
            BarrierRecord(
                t_first_arrival=min(arrived for _, _, arrived in waiters),
                t_release=release,
                n_participants=len(waiters),
            )
        )
        for proc, token, _ in waiters:
            self.engine.at(release, proc.resume_callback(None, token=token))

    def _do_shuffle(self, request: ShuffleReq, process: Process) -> None:
        duration = self.params.shuffle_time(request.nbytes) * self.compute_scale(
            request.ctx.rank
        )
        start = self.engine.now
        self.trace.record_shuffle(
            ShuffleRecord(
                node=request.ctx.rank,
                nbytes=request.nbytes,
                t_start=start,
                t_end=start + duration,
            )
        )
        self.engine.schedule(duration, process.resume_callback(None))
