"""Discrete-event simulator of a circuit-switched hypercube.

The substrate substituting for the paper's Intel iPSC-860: coroutine
processes over a deterministic event engine, e-cube circuit reservation
with link-contention serialization, FORCED/UNFORCED message semantics,
pairwise synchronized exchanges, and global synchronization — all
calibrated by :class:`repro.model.params.MachineParams`.
"""

from repro.sim.engine import Delay, Engine, Process, Request, SimulationError
from repro.sim.fastpath import (
    CompiledProgram,
    CompiledSchedule,
    NaiveContentionSummary,
    NaiveSend,
    NaiveTimeline,
    ProgramTimeline,
    ScheduleTimeline,
    batch_exchange_times,
    batch_program_times,
    compile_program,
    compile_schedule,
    exchange_time,
    exchange_timeline,
    exchange_times,
    naive_contention_summary,
    naive_exchange_time,
    naive_step_circuits,
    naive_timeline,
    program_time,
    program_timeline,
    program_times,
)
from repro.sim.faults import (
    CrossTraffic,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    Straggler,
)
from repro.sim.machine import RunResult, SimulatedHypercube
from repro.sim.network import Grant, Network
from repro.sim.node import NodeContext
from repro.sim.trace import (
    BarrierRecord,
    RetryRecord,
    ShuffleRecord,
    Trace,
    TransmissionRecord,
)

__all__ = [
    "BarrierRecord",
    "CompiledProgram",
    "CompiledSchedule",
    "CrossTraffic",
    "Delay",
    "Engine",
    "FaultPlan",
    "Grant",
    "LinkDegradation",
    "LinkOutage",
    "NaiveContentionSummary",
    "NaiveSend",
    "NaiveTimeline",
    "Network",
    "NodeContext",
    "Process",
    "ProgramTimeline",
    "Request",
    "RetryRecord",
    "RunResult",
    "ScheduleTimeline",
    "ShuffleRecord",
    "SimulatedHypercube",
    "SimulationError",
    "Straggler",
    "Trace",
    "TransmissionRecord",
    "batch_exchange_times",
    "batch_program_times",
    "compile_program",
    "compile_schedule",
    "exchange_time",
    "exchange_timeline",
    "exchange_times",
    "naive_contention_summary",
    "naive_exchange_time",
    "naive_step_circuits",
    "naive_timeline",
    "program_time",
    "program_timeline",
    "program_times",
]
