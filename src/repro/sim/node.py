"""Simulated processors: message endpoints and the node-program API.

Each node runs one SPMD *program* — a generator yielding requests —
against a :class:`NodeContext`.  The context builds the request
objects; the machine (:mod:`repro.sim.machine`) wires them to the
network, rendezvous, and barrier services.

Message semantics follow the iPSC-860 (paper §7.1):

* **FORCED** messages are delivered only into a *posted* receive; a
  FORCED arrival with no matching posted receive is *discarded* (the
  trace records the drop; under ``strict_forced`` the simulation
  raises, mirroring the paper's observation that omitting the global
  synchronization "is fatal").
* **UNFORCED** messages are buffered by the system if no receive is
  posted, and pay a reserve–acknowledge handshake above the eager
  limit.
* **Pairwise exchange** is the §7.2 primitive: the two partners
  rendezvous (modelling the zero-byte synchronization messages) and
  the bidirectional transfer proceeds concurrently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.sim.engine import Delay, Engine, Process, Request, SimulationError

__all__ = [
    "BarrierReq",
    "ExchangeReq",
    "NodeContext",
    "NodeState",
    "PhaseMarkReq",
    "PostRecvReq",
    "RecvReq",
    "SendReq",
    "ShuffleReq",
]


@dataclass
class _Envelope:
    """A message in flight or buffered at the destination."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int


class NodeState:
    """Receive bookkeeping of one processor."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        #: receives posted and not yet consumed: (src, tag) keys; src
        #: of None matches any source (wildcard, for convenience APIs)
        self.posted: deque[tuple[int | None, int]] = deque()
        #: system-buffered UNFORCED messages awaiting a receive
        self.buffered: deque[_Envelope] = deque()
        #: blocked RecvReq requests awaiting a message, with the
        #: wait token snapshotted at registration (stale entries — the
        #: process was failed or moved on — are discarded on match)
        self.blocked_recvs: deque[tuple["RecvReq", Process, int]] = deque()

    def post(self, src: int | None, tag: int) -> None:
        self.posted.append((src, tag))

    def consume_posted(self, src: int, tag: int) -> bool:
        """Consume a matching posted receive if one exists."""
        for key in list(self.posted):
            psrc, ptag = key
            if (psrc is None or psrc == src) and ptag == tag:
                self.posted.remove(key)
                return True
        return False

    def has_buffered(self, src: int | None, tag: int) -> bool:
        """Whether a matching buffered message exists (non-destructive;
        the consumer pops with :meth:`match_buffered` when it actually
        delivers, so an abandoned delivery leaves the message queued)."""
        return any(
            (src is None or env.src == src) and env.tag == tag for env in self.buffered
        )

    def match_buffered(self, src: int | None, tag: int) -> _Envelope | None:
        for env in list(self.buffered):
            if (src is None or env.src == src) and env.tag == tag:
                self.buffered.remove(env)
                return env
        return None

    def match_blocked(self, src: int, tag: int) -> tuple["RecvReq", Process] | None:
        for item in list(self.blocked_recvs):
            req, proc, token = item
            if (req.src is None or req.src == src) and req.tag == tag:
                self.blocked_recvs.remove(item)
                if not proc.wait_is_current(token):
                    continue  # the waiter was failed while parked
                return req, proc
        return None


# ----------------------------------------------------------------------
# requests (activated by the machine through the context's services)
# ----------------------------------------------------------------------
class _MachineRequest(Request):
    """A request resolved by the owning machine's services."""

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx

    def activate(self, engine: Engine, process: Process) -> None:
        self.ctx.machine._activate(self, process)  # noqa: SLF001 - deliberate service hook


class SendReq(_MachineRequest):
    def __init__(self, ctx: "NodeContext", dst: int, payload: Any, nbytes: int,
                 tag: int, forced: bool) -> None:
        super().__init__(ctx)
        self.dst = dst
        self.payload = payload
        self.nbytes = int(nbytes)
        self.tag = tag
        self.forced = forced


class RecvReq(_MachineRequest):
    def __init__(self, ctx: "NodeContext", src: int | None, tag: int) -> None:
        super().__init__(ctx)
        self.src = src
        self.tag = tag


class PostRecvReq(_MachineRequest):
    def __init__(self, ctx: "NodeContext", src: int | None, tag: int) -> None:
        super().__init__(ctx)
        self.src = src
        self.tag = tag


class ExchangeReq(_MachineRequest):
    def __init__(self, ctx: "NodeContext", partner: int, payload: Any, nbytes: int,
                 tag: int) -> None:
        super().__init__(ctx)
        self.partner = partner
        self.payload = payload
        self.nbytes = int(nbytes)
        self.tag = tag


class BarrierReq(_MachineRequest):
    pass


class ShuffleReq(_MachineRequest):
    def __init__(self, ctx: "NodeContext", nbytes: int) -> None:
        super().__init__(ctx)
        self.nbytes = int(nbytes)


class PhaseMarkReq(_MachineRequest):
    def __init__(self, ctx: "NodeContext", phase_index: int) -> None:
        super().__init__(ctx)
        self.phase_index = phase_index


class NodeContext:
    """The API surface a node program codes against.

    Each method builds a request to ``yield``; the value of the yield
    expression is the request's result (received payload for
    ``recv``/``exchange``, ``None`` otherwise).
    """

    def __init__(self, machine, rank: int) -> None:
        self.machine = machine
        self.rank = rank
        self.state = NodeState(rank)

    # -- structure ------------------------------------------------------
    @property
    def d(self) -> int:
        """Cube dimension."""
        return self.machine.cube.dimension

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.machine.cube.n_nodes

    @property
    def now(self) -> float:
        """Current virtual time (µs)."""
        return self.machine.engine.now

    # -- request builders -------------------------------------------------
    def delay(self, duration_us: float) -> Delay:
        """Local computation for ``duration_us`` microseconds (a
        straggler node runs it ``compute_scale`` times slower)."""
        return Delay(duration_us * self.machine.compute_scale(self.rank))

    def send(self, dst: int, payload: Any, nbytes: int, *, tag: int = 0,
             forced: bool = True) -> SendReq:
        """Blocking one-way send (``csend``); completes when the
        message has left the wire."""
        self.machine.cube.validate_node(dst)
        if dst == self.rank:
            raise ValueError(f"node {self.rank}: cannot send to self")
        return SendReq(self, dst, payload, nbytes, tag, forced)

    def recv(self, src: int | None = None, *, tag: int = 0) -> RecvReq:
        """Blocking receive; yields the matching payload."""
        if src is not None:
            self.machine.cube.validate_node(src)
        return RecvReq(self, src, tag)

    def post_recv(self, src: int | None = None, *, tag: int = 0) -> PostRecvReq:
        """Post a receive without blocking (required before FORCED
        traffic arrives, §7.3)."""
        if src is not None:
            self.machine.cube.validate_node(src)
        return PostRecvReq(self, src, tag)

    def exchange(self, partner: int, payload: Any, nbytes: int, *, tag: int = 0) -> ExchangeReq:
        """Pairwise synchronized exchange (§7.2); yields the partner's
        payload when the concurrent bidirectional transfer completes."""
        self.machine.cube.validate_node(partner)
        if partner == self.rank:
            raise ValueError(f"node {self.rank}: cannot exchange with self")
        return ExchangeReq(self, partner, payload, nbytes, tag)

    def barrier(self) -> BarrierReq:
        """Global synchronization (cost γ·d, §7.3/§7.4)."""
        return BarrierReq(self)

    def shuffle(self, nbytes: int) -> ShuffleReq:
        """Local permutation pass over ``nbytes`` at ρ per byte; the
        caller performs the actual numpy permutation itself."""
        return ShuffleReq(self, nbytes)

    def mark_phase(self, phase_index: int) -> PhaseMarkReq:
        """Record a phase boundary in the trace (zero cost)."""
        return PhaseMarkReq(self, phase_index)


def require(condition: bool, message: str) -> None:
    """Internal invariant helper that fails the simulation loudly."""
    if not condition:
        raise SimulationError(message)
