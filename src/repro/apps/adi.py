"""Alternating Directions Implicit (ADI) iteration (paper §3, refs. [5, 10]).

The Peaceman–Rachford ADI scheme for the 2-D heat equation
``u_t = u_xx + u_yy`` advances each time step in two half-steps:
implicit in ``x`` (tridiagonal solves along every row) then implicit in
``y`` (solves along every column).  With the grid row-strip-distributed
the row solves are local, and the column solves are made local by a
distributed transpose — "necessitating the heavy use of a transpose
procedure", which is exactly the paper's Figure 2 scenario.

The per-step communication is two complete exchanges whose block size
is ``(N/n)**2`` elements; for strong-scaled production grids this falls
in the small-block regime where the multiphase algorithm pays off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.apps.transpose import distributed_transpose
from repro.util.bitops import log2_exact

__all__ = ["ADIProblem", "adi_reference_step", "adi_step", "run_adi", "thomas_solve"]


def thomas_solve(lower: float, diag: float, upper: float, rhs: np.ndarray) -> np.ndarray:
    """Vectorized Thomas algorithm for constant-coefficient tridiagonal
    systems, solving along the last axis of ``rhs`` (many independent
    systems at once).

    Solves ``lower * x[i-1] + diag * x[i] + upper * x[i+1] = rhs[i]``
    with implied zero boundary neighbours.
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    size = rhs.shape[-1]
    c_prime = np.empty(size)
    x = np.empty_like(rhs)
    # forward sweep (coefficients are scalars, so c' is shared by all
    # right-hand sides; d' must be carried per system)
    d_prime = np.empty_like(rhs)
    beta = diag
    if beta == 0:
        raise ZeroDivisionError("singular tridiagonal system (diag == 0)")
    c_prime[0] = upper / beta
    d_prime[..., 0] = rhs[..., 0] / beta
    for i in range(1, size):
        beta = diag - lower * c_prime[i - 1]
        if beta == 0:
            raise ZeroDivisionError(f"singular tridiagonal system at row {i}")
        c_prime[i] = upper / beta
        d_prime[..., i] = (rhs[..., i] - lower * d_prime[..., i - 1]) / beta
    # back substitution
    x[..., -1] = d_prime[..., -1]
    for i in range(size - 2, -1, -1):
        x[..., i] = d_prime[..., i] - c_prime[i] * x[..., i + 1]
    return x


@dataclass(frozen=True)
class ADIProblem:
    """A 2-D heat-equation setup on the unit square, Dirichlet-0
    boundary, uniform interior grid of ``size x size`` points."""

    size: int
    dt: float = 1e-3
    diffusivity: float = 1.0

    @property
    def h(self) -> float:
        return 1.0 / (self.size + 1)

    @property
    def r(self) -> float:
        """The scheme's mesh ratio ``a*dt / (2*h**2)``."""
        return self.diffusivity * self.dt / (2.0 * self.h ** 2)


def _half_step_rows(u: np.ndarray, r: float) -> np.ndarray:
    """Implicit in the row direction, explicit in the column direction:
    ``(I - r*Dxx) u' = (I + r*Dyy) u`` with rows along the last axis."""
    rhs = (1.0 - 2.0 * r) * u
    rhs[1:, :] += r * u[:-1, :]
    rhs[:-1, :] += r * u[1:, :]
    return thomas_solve(-r, 1.0 + 2.0 * r, -r, rhs)


def adi_reference_step(u: np.ndarray, problem: ADIProblem) -> np.ndarray:
    """One sequential Peaceman–Rachford step (the oracle)."""
    r = problem.r
    half = _half_step_rows(u, r)
    # second half step: implicit in columns == implicit in rows of the
    # transpose
    return _half_step_rows(half.T, r).T


def adi_step(
    u: np.ndarray,
    problem: ADIProblem,
    n_nodes: int,
    *,
    partition: Sequence[int] | None = None,
    planner=None,
) -> np.ndarray:
    """One distributed ADI step using transposes for the column sweep.

    Bit-identical to :func:`adi_reference_step` (same arithmetic, data
    moved by complete exchange), asserted by the tests.  With a
    ``planner`` (:class:`repro.plan.CollectivePlanner`), each
    transpose's exchange algorithm is selected per ``(d, m)`` at call
    time.
    """
    log2_exact(n_nodes)
    r = problem.r
    half = _half_step_rows(u, r)
    half_t = distributed_transpose(half, n_nodes, partition=partition, planner=planner)
    stepped_t = _half_step_rows(half_t, r)
    return distributed_transpose(stepped_t, n_nodes, partition=partition, planner=planner)


def run_adi(
    u0: np.ndarray,
    problem: ADIProblem,
    n_nodes: int,
    steps: int,
    *,
    partition: Sequence[int] | None = None,
    planner=None,
) -> np.ndarray:
    """Advance ``steps`` ADI steps; diffusion with zero boundaries must
    monotonically dissipate energy (checked by the tests)."""
    u = np.asarray(u0, dtype=np.float64).copy()
    if u.shape != (problem.size, problem.size):
        raise ValueError(f"grid shape {u.shape} != problem size {problem.size}")
    for _ in range(steps):
        u = adi_step(u, problem, n_nodes, partition=partition, planner=planner)
    return u
