"""Distributed table lookup via complete exchange (paper §3, ref. [12]).

A key-value table is sharded across the ``n`` processors by key range.
Every processor holds a batch of keys to resolve, scattered across all
shards.  Resolution is two complete exchanges:

1. **scatter queries** — each node routes its keys to the owning
   shards (fixed-size padded query blocks, one per destination);
2. **gather answers** — shard owners look the keys up locally and the
   answers travel back along the mirrored exchange.

The block sizes this produces are tiny (a handful of keys per
node-pair), squarely in the 0–160 byte regime where the paper's
multiphase algorithm wins — the reason distributed lookups are listed
among the motivating applications.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exchange import run_exchange_on_rows, run_planned_exchange_on_rows
from repro.util.bitops import log2_exact

__all__ = ["DistributedTable", "distributed_lookup"]

_KEY_DTYPE = np.int64
_VAL_DTYPE = np.float64
#: key slot value marking padding in a query block
_EMPTY = np.iinfo(_KEY_DTYPE).min


class DistributedTable:
    """A key-sharded lookup table over ``n = 2**d`` nodes.

    Keys are non-negative ints in ``[0, capacity)``; shard ``x`` owns
    the contiguous range ``[x * capacity/n, (x+1) * capacity/n)``.
    """

    def __init__(self, keys: np.ndarray, values: np.ndarray, n_nodes: int,
                 capacity: int) -> None:
        log2_exact(n_nodes)
        if capacity % n_nodes:
            raise ValueError(f"capacity {capacity} not divisible by {n_nodes} shards")
        keys = np.asarray(keys, dtype=_KEY_DTYPE)
        values = np.asarray(values, dtype=_VAL_DTYPE)
        if keys.shape != values.shape:
            raise ValueError("keys and values must align")
        if keys.size and (keys.min() < 0 or keys.max() >= capacity):
            raise ValueError(f"keys must lie in [0, {capacity})")
        if len(np.unique(keys)) != len(keys):
            raise ValueError("duplicate keys")
        self.n_nodes = n_nodes
        self.capacity = capacity
        self.range_per_shard = capacity // n_nodes
        self._shards: list[dict[int, float]] = [dict() for _ in range(n_nodes)]
        for k, v in zip(keys.tolist(), values.tolist()):
            self._shards[self.owner(k)][k] = v

    def owner(self, key: int) -> int:
        """The shard owning ``key``."""
        return int(key) // self.range_per_shard

    def local_lookup(self, shard: int, keys: np.ndarray) -> np.ndarray:
        """Resolve keys against one shard; missing keys yield NaN."""
        table = self._shards[shard]
        return np.array([table.get(int(k), np.nan) for k in keys], dtype=_VAL_DTYPE)


def distributed_lookup(
    table: DistributedTable,
    queries: Sequence[np.ndarray],
    *,
    partition: Sequence[int] | None = None,
    planner=None,
) -> list[np.ndarray]:
    """Resolve each node's query batch against the sharded table.

    ``queries[x]`` is node ``x``'s 1-D array of keys; the result list
    gives the values in the same order (NaN for absent keys).  Uses two
    complete exchanges with blocks padded to the largest per-pair query
    count, mirroring a fixed-block implementation on the real machine.
    With a ``planner`` (:class:`repro.plan.CollectivePlanner`), each
    exchange's algorithm is selected per ``(d, m)`` at call time.
    """
    if planner is not None and partition is not None:
        raise ValueError("pass either a planner or an explicit partition, not both")

    def exchange(rows):
        if planner is not None:
            return run_planned_exchange_on_rows(rows, planner)
        return run_exchange_on_rows(rows, partition)

    n = table.n_nodes
    if len(queries) != n:
        raise ValueError(f"need one query batch per node, got {len(queries)} for {n}")
    batches = [np.asarray(q, dtype=_KEY_DTYPE) for q in queries]

    # route queries: per (source, owner) key lists + position bookkeeping
    routed: list[list[np.ndarray]] = []
    positions: list[list[np.ndarray]] = []
    for x in range(n):
        owners = np.array([table.owner(k) for k in batches[x]], dtype=np.int64)
        routed.append([batches[x][owners == j] for j in range(n)])
        positions.append([np.nonzero(owners == j)[0] for j in range(n)])

    slots = max((len(r) for per_node in routed for r in per_node), default=0)
    slots = max(slots, 1)
    key_block = slots * np.dtype(_KEY_DTYPE).itemsize

    # exchange 1: queries to shard owners
    send_rows = []
    for x in range(n):
        rows = np.empty((n, key_block), dtype=np.uint8)
        for j in range(n):
            padded = np.full(slots, _EMPTY, dtype=_KEY_DTYPE)
            padded[: len(routed[x][j])] = routed[x][j]
            rows[j] = padded.view(np.uint8)
        send_rows.append(rows)
    recv_rows = exchange(send_rows)

    # local lookups at each shard
    answer_rows = []
    val_block = slots * np.dtype(_VAL_DTYPE).itemsize
    for shard in range(n):
        rows = np.empty((n, val_block), dtype=np.uint8)
        for src in range(n):
            keys = recv_rows[shard][src].view(_KEY_DTYPE)
            answers = np.full(slots, np.nan, dtype=_VAL_DTYPE)
            valid = keys != _EMPTY
            answers[valid] = table.local_lookup(shard, keys[valid])
            rows[src] = answers.view(np.uint8)
        answer_rows.append(rows)

    # exchange 2: answers back to the querying nodes
    returned = exchange(answer_rows)

    # unpad and restore original query order
    results = []
    for x in range(n):
        out = np.full(len(batches[x]), np.nan, dtype=_VAL_DTYPE)
        for j in range(n):
            values = returned[x][j].view(_VAL_DTYPE)[: len(positions[x][j])]
            out[positions[x][j]] = values
        results.append(out)
    return results
