"""Distributed 2-D FFT via transpose (paper §3, ref. [11]).

The parallel Fourier pseudospectral pattern the paper cites: with the
grid row-strip-distributed, a 2-D FFT is

1. FFT along rows (local to each strip),
2. distributed transpose (the complete exchange),
3. FFT along rows again (formerly columns),
4. optional transpose back to the original layout.

The complete exchange dominates communication, which is why transpose
throughput bounds pseudospectral solvers — the paper's motivation for
optimizing it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.transpose import distributed_transpose, gather_strips, split_into_strips
from repro.util.bitops import log2_exact

__all__ = ["distributed_fft2", "distributed_ifft2"]


def _rowwise_fft(strips: list[np.ndarray], inverse: bool) -> list[np.ndarray]:
    op = np.fft.ifft if inverse else np.fft.fft
    return [op(strip, axis=1) for strip in strips]


def distributed_fft2(
    grid: np.ndarray,
    n_nodes: int,
    *,
    partition: Sequence[int] | None = None,
    planner=None,
    restore_layout: bool = True,
) -> np.ndarray:
    """2-D FFT of a square grid using the distributed transpose.

    Matches ``np.fft.fft2`` to floating-point accuracy (asserted by the
    tests for random grids and every partition).

    Parameters
    ----------
    grid:
        ``N x N`` real or complex array, ``N`` divisible by ``n_nodes``.
    n_nodes:
        Processor count ``2**d``.
    partition:
        Multiphase partition used for both transposes.
    planner:
        A :class:`repro.plan.CollectivePlanner`; when given, each
        transpose's exchange algorithm is selected per ``(d, m)`` at
        call time.
    restore_layout:
        Transpose back at the end so the result has the standard
        orientation.  With ``False`` the (cheaper) transposed spectrum
        is returned, as pseudospectral codes usually keep it.

    >>> import numpy as np
    >>> g = np.arange(16.0).reshape(4, 4)
    >>> np.allclose(distributed_fft2(g, 4), np.fft.fft2(g))
    True
    """
    log2_exact(n_nodes)
    work = np.asarray(grid, dtype=np.complex128)

    # 1. row FFTs within strips
    strips = _rowwise_fft(split_into_strips(work, n_nodes), inverse=False)
    # 2. distributed transpose (complete exchange)
    transposed = distributed_transpose(
        gather_strips(strips), n_nodes, partition=partition, planner=planner
    )
    # 3. row FFTs again (former columns)
    strips = _rowwise_fft(split_into_strips(transposed, n_nodes), inverse=False)
    spectrum_t = gather_strips(strips)
    if not restore_layout:
        return spectrum_t
    # 4. transpose back
    return distributed_transpose(spectrum_t, n_nodes, partition=partition, planner=planner)


def distributed_ifft2(
    spectrum: np.ndarray,
    n_nodes: int,
    *,
    partition: Sequence[int] | None = None,
    planner=None,
) -> np.ndarray:
    """Inverse 2-D FFT (same transpose structure as the forward
    transform); matches ``np.fft.ifft2``."""
    log2_exact(n_nodes)
    work = np.asarray(spectrum, dtype=np.complex128)
    strips = _rowwise_fft(split_into_strips(work, n_nodes), inverse=True)
    transposed = distributed_transpose(
        gather_strips(strips), n_nodes, partition=partition, planner=planner
    )
    strips = _rowwise_fft(split_into_strips(transposed, n_nodes), inverse=True)
    return distributed_transpose(gather_strips(strips), n_nodes, partition=partition, planner=planner)
