"""Distributed matrix transpose via complete exchange (paper §3, Fig. 2).

An ``N x N`` matrix mapped row-strip-wise onto ``n = 2**d`` processors
is transposed by exchanging ``n**2`` sub-blocks: processor ``x`` sends
the sub-block at (row-strip ``x``, column-strip ``j``) to processor
``j`` — one block per destination, the defining complete exchange.
After the exchange each processor locally transposes the received
sub-blocks and owns the row-strip of the transposed matrix.

This is the paper's headline application ("at the heart of many
important algorithms, most notably the matrix transpose") and the
substrate for the ADI and FFT kernels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exchange import run_exchange_on_rows, run_planned_exchange_on_rows
from repro.util.bitops import log2_exact

__all__ = [
    "distributed_transpose",
    "gather_strips",
    "split_into_strips",
    "transpose_block_size",
]


def split_into_strips(matrix: np.ndarray, n_nodes: int) -> list[np.ndarray]:
    """Row-strip decomposition: strip ``x`` is rows
    ``[x * N/n, (x+1) * N/n)`` (the Figure 2 mapping)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    size = matrix.shape[0]
    if size % n_nodes:
        raise ValueError(f"matrix size {size} not divisible by {n_nodes} nodes")
    rows_per = size // n_nodes
    return [matrix[x * rows_per : (x + 1) * rows_per].copy() for x in range(n_nodes)]


def gather_strips(strips: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`split_into_strips`."""
    return np.vstack(list(strips))


def transpose_block_size(size: int, n_nodes: int, dtype=np.float64) -> int:
    """Bytes per exchanged block: ``(N/n)**2`` elements.

    The paper's observation that multiphase wins for 0–160 byte blocks
    corresponds to strip blocks of up to ~40 float32s — i.e. *small*
    matrices per node, the common case for strong scaling.
    """
    per = size // n_nodes
    return per * per * np.dtype(dtype).itemsize


def distributed_transpose(
    matrix: np.ndarray,
    n_nodes: int,
    *,
    partition: Sequence[int] | None = None,
    planner=None,
) -> np.ndarray:
    """Transpose ``matrix`` using a multiphase complete exchange.

    Parameters
    ----------
    matrix:
        Square ``N x N`` array, any dtype; ``N`` divisible by
        ``n_nodes`` (a power of two).
    n_nodes:
        Number of processors ``n = 2**d``.
    partition:
        Multiphase partition (default single phase).
    planner:
        A :class:`repro.plan.CollectivePlanner`; when given, the
        exchange algorithm (standard / multiphase / naive) is selected
        per ``(d, m)`` at call time instead of via ``partition``.

    Returns the transposed matrix, reassembled from the strips.  The
    result equals ``matrix.T`` exactly (asserted by the tests for all
    partitions).

    >>> import numpy as np
    >>> a = np.arange(64.0).reshape(8, 8)
    >>> np.array_equal(distributed_transpose(a, 4, partition=(1, 1)), a.T)
    True
    """
    if planner is not None and partition is not None:
        raise ValueError("pass either a planner or an explicit partition, not both")
    matrix = np.asarray(matrix)
    log2_exact(n_nodes)
    strips = split_into_strips(matrix, n_nodes)
    size = matrix.shape[0]
    per = size // n_nodes
    itemsize = matrix.dtype.itemsize
    block_bytes = per * per * itemsize

    # Build each node's send rows: block j is the (x, j) sub-block,
    # flattened to bytes.
    send_rows = []
    for x in range(n_nodes):
        rows = np.empty((n_nodes, block_bytes), dtype=np.uint8)
        for j in range(n_nodes):
            sub = strips[x][:, j * per : (j + 1) * per]
            rows[j] = np.ascontiguousarray(sub).view(np.uint8).reshape(-1)
        send_rows.append(rows)

    if planner is not None:
        recv_rows = run_planned_exchange_on_rows(send_rows, planner)
    else:
        recv_rows = run_exchange_on_rows(send_rows, partition)

    # Node x now holds sub-block (j, x) from every j; transpose each
    # sub-block locally and lay them out as the x-th strip of A^T.
    out_strips = []
    for x in range(n_nodes):
        strip = np.empty((per, size), dtype=matrix.dtype)
        for j in range(n_nodes):
            sub = recv_rows[x][j].view(matrix.dtype).reshape(per, per)
            strip[:, j * per : (j + 1) * per] = sub.T
        out_strips.append(strip)
    return gather_strips(out_strips)
