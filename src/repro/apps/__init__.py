"""Application kernels built on the complete exchange (paper §3).

Matrix transpose, 2-D FFT, distributed table lookup, and the ADI
solver — the workloads the paper cites as motivation, each implemented
on the library's exchange primitives and verified against numpy
references.
"""

from repro.apps.adi import ADIProblem, adi_reference_step, adi_step, run_adi, thomas_solve
from repro.apps.fft2d import distributed_fft2, distributed_ifft2
from repro.apps.lookup import DistributedTable, distributed_lookup
from repro.apps.matvec import matvec_allgather, matvec_transpose
from repro.apps.transpose import (
    distributed_transpose,
    gather_strips,
    split_into_strips,
    transpose_block_size,
)

__all__ = [
    "ADIProblem",
    "DistributedTable",
    "adi_reference_step",
    "adi_step",
    "distributed_fft2",
    "distributed_ifft2",
    "distributed_lookup",
    "distributed_transpose",
    "gather_strips",
    "matvec_allgather",
    "matvec_transpose",
    "run_adi",
    "split_into_strips",
    "thomas_solve",
    "transpose_block_size",
]
