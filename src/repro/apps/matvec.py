"""Distributed matrix–vector multiply (paper §3).

The paper lists matrix–vector multiplication among the complete
exchange's motivating applications when the matrix is mapped by the
Figure 2 block decomposition.  Two communication realizations are
provided:

* :func:`matvec_allgather` — each node holds a row strip of ``A`` and
  its slice of ``x``; an allgather assembles the full vector and the
  product is a local GEMV (the mpi4py tutorial's classic pattern, on
  our own collective);
* :func:`matvec_transpose` — computes ``A.T @ x`` without forming the
  transpose locally: the distributed transpose (a complete exchange)
  re-maps ``A`` and the allgather pattern then applies.  This is the
  row/column access alternation that makes ADI-style codes
  transpose-bound.

Both are verified against ``A @ x`` / ``A.T @ x`` to floating-point
accuracy for every partition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.transpose import distributed_transpose, split_into_strips
from repro.patterns.allgather import allgather
from repro.util.bitops import log2_exact

__all__ = ["matvec_allgather", "matvec_transpose"]


def matvec_allgather(matrix: np.ndarray, x: np.ndarray, n_nodes: int) -> np.ndarray:
    """``A @ x`` with row-strip ``A`` and block-distributed ``x``.

    Each node contributes its slice of ``x`` to an allgather, then
    multiplies its strip locally; results are concatenated in strip
    order.

    >>> import numpy as np
    >>> a = np.arange(16.0).reshape(4, 4)
    >>> np.allclose(matvec_allgather(a, np.ones(4), 4), a @ np.ones(4))
    True
    """
    d = log2_exact(n_nodes)
    matrix = np.asarray(matrix, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: A {matrix.shape} vs x {x.shape}")
    if x.shape[0] % n_nodes:
        raise ValueError(f"vector length {x.shape[0]} not divisible by {n_nodes} nodes")
    strips = split_into_strips(matrix, n_nodes) if matrix.shape[0] == matrix.shape[1] else None
    if strips is None:
        # non-square: strip by rows without the square check
        rows_per = matrix.shape[0] // n_nodes
        if matrix.shape[0] % n_nodes:
            raise ValueError(f"row count {matrix.shape[0]} not divisible by {n_nodes}")
        strips = [matrix[i * rows_per : (i + 1) * rows_per] for i in range(n_nodes)]

    # each node's x-slice rides the real allgather collective as bytes
    per = x.shape[0] // n_nodes
    byte_rows = np.ascontiguousarray(x).view(np.uint8).reshape(n_nodes, per * 8)
    gathered = allgather(byte_rows, d)
    results = []
    for node in range(n_nodes):
        full_x = gathered[node].reshape(-1).view(np.float64)
        results.append(strips[node] @ full_x)
    return np.concatenate(results)


def matvec_transpose(
    matrix: np.ndarray,
    x: np.ndarray,
    n_nodes: int,
    *,
    partition: Sequence[int] | None = None,
) -> np.ndarray:
    """``A.T @ x`` via a distributed transpose followed by the
    allgather product — the column-access phase of an ADI-style sweep.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"transpose matvec needs a square matrix, got {matrix.shape}")
    transposed = distributed_transpose(matrix, n_nodes, partition=partition)
    return matvec_allgather(transposed, x, n_nodes)
