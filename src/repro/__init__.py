"""repro — Multiphase Complete Exchange on a Circuit Switched Hypercube.

A full reproduction of Bokhari's ICPP 1991 paper: the unified
multiphase complete-exchange (all-to-all personalized) algorithm for
circuit-switched hypercubes, its two classical special cases, the
analytic cost model and partition optimizer, and a calibrated
discrete-event simulator standing in for the Intel iPSC-860.

Quickstart
----------
>>> import repro
>>> # a verified, byte-moving multiphase exchange (d=4 cube, 32 B blocks)
>>> outcome = repro.multiphase_exchange(4, 32, (2, 2))
>>> outcome.verify()
>>> # the best partition for 40-byte blocks on a 128-node iPSC-860
>>> repro.best_partition(40, 7, repro.ipsc860()).partition
(4, 3)
>>> # a timed run on the simulated machine
>>> result = repro.simulate_exchange(5, 40, (3, 2), repro.ipsc860())
>>> round(result.time_us, 1)
5806.5

Package map
-----------
:mod:`repro.core`
    Algorithms, schedules, block engines, partitions.
:mod:`repro.model`
    Cost model (eqs. 1–3), calibration presets, optimizer.
:mod:`repro.hypercube`
    Topology, e-cube routing, contention analysis.
:mod:`repro.sim`
    Discrete-event circuit-switched machine, plus the vectorized
    lockstep fast path (:mod:`repro.sim.fastpath`) that prices
    schedules — contention-free and the contended naive baseline —
    without booting coroutine processes.
:mod:`repro.comm`
    Communicator facade and schedule replay on the simulator.
:mod:`repro.analysis`
    Figure/table reproduction and paper-vs-measured reports.
:mod:`repro.apps`
    Transpose, 2-D FFT, table lookup, ADI solver.
:mod:`repro.service`
    Long-lived optimizer query service: sharded table registry,
    batched query resolution, JSON-lines serving over stdio and async
    TCP/Unix sockets with cross-client micro-batching, client library,
    memo warm-up from query logs.
:mod:`repro.plan`
    Optimizer-guided collective planning: pluggable policies
    (fixed / model / service) selecting the exchange algorithm per
    ``(d, m)`` for the comm layer, the apps, and the §9 patterns.
:mod:`repro.fabric`
    Shard fabric: a coordinator-backed optimizer *cluster* —
    consistent-hash shard placement with N-way replication, node
    registration + heartbeat liveness, epoch-versioned routing tables,
    and cluster-routing clients behind :func:`repro.service.connect`.
"""

from repro.apps import (
    ADIProblem,
    DistributedTable,
    adi_step,
    distributed_fft2,
    distributed_ifft2,
    distributed_lookup,
    distributed_transpose,
    run_adi,
)
from repro.comm import Communicator, simulate_exchange
from repro.core import (
    ExchangeOutcome,
    multiphase_exchange,
    multiphase_schedule,
    optimal_exchange,
    partition_count,
    partitions,
    run_exchange,
    run_exchange_on_rows,
    standard_exchange,
)
from repro.hypercube import Hypercube, analyze_contention, ecube_path
from repro.model import (
    MachineParams,
    best_partition,
    crossover_block_size,
    hull_of_optimality,
    hypothetical,
    ipsc860,
    multiphase_time,
    optimal_time,
    standard_time,
)
from repro.plan import (
    CollectivePlanner,
    ContentionPolicy,
    FixedPolicy,
    ModelPolicy,
    PlanDecision,
    ServicePolicy,
    plan_pattern,
)
from repro.service import (
    AsyncServiceClient,
    OptimizerClient,
    OptimizerRegistry,
    Query,
    QueryBatch,
    QueryResult,
    ServerConfig,
    ServiceClient,
    aconnect,
    connect,
)
from repro.sim import (
    SimulatedHypercube,
    batch_exchange_times,
    exchange_time,
    exchange_timeline,
    exchange_times,
    naive_contention_summary,
    naive_exchange_time,
)

__version__ = "1.0.0"

__all__ = [
    "ADIProblem",
    "AsyncServiceClient",
    "CollectivePlanner",
    "Communicator",
    "ContentionPolicy",
    "DistributedTable",
    "ExchangeOutcome",
    "FixedPolicy",
    "Hypercube",
    "MachineParams",
    "ModelPolicy",
    "OptimizerClient",
    "OptimizerRegistry",
    "PlanDecision",
    "Query",
    "QueryBatch",
    "QueryResult",
    "ServerConfig",
    "ServiceClient",
    "ServicePolicy",
    "SimulatedHypercube",
    "__version__",
    "aconnect",
    "adi_step",
    "analyze_contention",
    "batch_exchange_times",
    "best_partition",
    "connect",
    "crossover_block_size",
    "distributed_fft2",
    "distributed_ifft2",
    "distributed_lookup",
    "distributed_transpose",
    "ecube_path",
    "exchange_time",
    "exchange_timeline",
    "exchange_times",
    "hull_of_optimality",
    "hypothetical",
    "ipsc860",
    "multiphase_exchange",
    "multiphase_schedule",
    "multiphase_time",
    "naive_contention_summary",
    "naive_exchange_time",
    "optimal_exchange",
    "optimal_time",
    "partition_count",
    "partitions",
    "plan_pattern",
    "run_adi",
    "run_exchange",
    "run_exchange_on_rows",
    "simulate_exchange",
    "standard_exchange",
    "standard_time",
]
