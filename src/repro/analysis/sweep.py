"""Dimension × block-size sweeps of the optimal partition.

Generalizes the per-figure hulls into the full design-space view the
paper's §6 and §9 projections gesture at: for every cube dimension and
block size, which partition should a library call, and how much does
it save over the classical algorithms?  The sweep output drives the
`repro` CLI's guidance tables and the projection benchmark.

Each dimension's row is scored by one vectorized grid evaluation
(:func:`repro.model.optimizer.best_partitions`); the classical
reference times — Standard Exchange ``(1,)*d`` and the single-phase
``(d,)`` — are read straight from the returned ranking instead of
being re-modelled (for ``d == 1`` the two classics are the same
partition ``(1,)``).  ``batch=False`` keeps the scalar
one-cell-at-a-time path as a benchmark baseline; both paths produce
identical cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.model.optimizer import OptimalChoice, best_partition, best_partitions
from repro.model.params import MachineParams

__all__ = ["SweepCell", "partition_sweep", "render_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One (d, m) point of the sweep."""

    d: int
    m: float
    partition: tuple[int, ...]
    time_us: float
    #: best classical time / best multiphase time (>= 1; 1.0 means a
    #: classical algorithm is itself optimal)
    gain_over_classics: float


def _cell_from_choice(d: int, choice: OptimalChoice) -> SweepCell:
    # d == 1 degenerates SE and OCS to the same partition (1,)
    gain = min(choice.speedup_over((1,) * d), choice.speedup_over((d,)))
    return SweepCell(
        d=d,
        m=choice.m,
        partition=choice.partition,
        time_us=choice.time,
        gain_over_classics=gain,
    )


def partition_sweep(
    dims: Sequence[int],
    block_sizes: Sequence[float],
    params: MachineParams,
    *,
    batch: bool = True,
) -> list[SweepCell]:
    """Optimal partition and classical-algorithm gain for every cell."""
    cells: list[SweepCell] = []
    for d in dims:
        if batch:
            choices = best_partitions([float(m) for m in block_sizes], d, params)
        else:
            choices = [
                best_partition(float(m), d, params, method="scalar")
                for m in block_sizes
            ]
        cells.extend(_cell_from_choice(d, choice) for choice in choices)
    return cells


def render_sweep(cells: Sequence[SweepCell]) -> str:
    """Fixed-width (d rows) × (m columns) table of winners and gains."""
    dims = sorted({c.d for c in cells})
    sizes = sorted({c.m for c in cells})
    by_key = {(c.d, c.m): c for c in cells}

    def fmt(cell: SweepCell) -> str:
        label = "{" + ",".join(map(str, sorted(cell.partition))) + "}"
        return f"{label} {cell.gain_over_classics:4.2f}x"

    col_width = max(
        len(fmt(by_key[(d, m)])) for d in dims for m in sizes
    ) + 2
    header = "d\\m(B)" + "".join(f"{m:>{col_width}.0f}" for m in sizes)
    lines = [header, "-" * len(header)]
    for d in dims:
        row = f"{d:<6d}"
        for m in sizes:
            row += f"{fmt(by_key[(d, m)]):>{col_width}}"
        lines.append(row)
    lines.append("")
    lines.append("cell: optimal partition and its gain over the better classical")
    lines.append("algorithm (Standard Exchange or single-phase) at that point")
    return "\n".join(lines)
