"""Paper-vs-reproduced reporting.

Collects every comparison row the benchmarks print — tables, worked
examples, figure hulls, prediction/measurement agreement — into one
report, which is also the machine-readable source for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.hull import hull_agreements
from repro.analysis.tables import (
    Row,
    figure6_headline,
    format_rows,
    parameter_table,
    partition_table,
    section43_crossover,
    section51_example,
)
from repro.comm.program import simulate_exchange
from repro.model.cost import multiphase_time
from repro.model.params import MachineParams, ipsc860

__all__ = ["Report", "agreement_rows", "full_report", "hull_rows"]


@dataclass
class Report:
    """An ordered collection of comparison rows."""

    rows: list[Row] = field(default_factory=list)

    def extend(self, rows: list[Row]) -> None:
        self.rows.extend(rows)

    @property
    def n_agreeing(self) -> int:
        return sum(1 for r in self.rows if r.agrees)

    @property
    def all_agree(self) -> bool:
        return self.n_agreeing == len(self.rows)

    def render(self) -> str:
        body = format_rows(self.rows)
        footer = f"\n{self.n_agreeing}/{len(self.rows)} comparisons agree with the paper"
        return body + footer


def hull_rows(dims: tuple[int, ...] = (5, 6, 7),
              params: MachineParams | None = None) -> list[Row]:
    """Hull membership and switch-point rows for Figures 4-6."""
    rows: list[Row] = []
    for d, agreement in hull_agreements(dims, params).items():
        paper = " ".join("{" + ",".join(map(str, sorted(h))) + "}" for h in agreement.paper_hull)
        got = " ".join(
            "{" + ",".join(map(str, sorted(h))) + "}" for h in agreement.table.hull_partitions
        )
        rows.append(
            Row(
                experiment=f"Fig.{d - 1} hull",
                quantity=f"optimal partitions, d={d}",
                paper_value=paper,
                reproduced_value=got,
                agrees=agreement.hull_matches,
            )
        )
        rows.append(
            Row(
                experiment=f"Fig.{d - 1} hull",
                quantity=f"switch to single phase (bytes), d={d}",
                paper_value=f"~{agreement.paper_last_boundary:.0f}",
                reproduced_value=f"{agreement.reproduced_last_boundary:.1f}",
                agrees=agreement.boundary_relative_error < 0.25,
                note="within 25% of the paper's eyeballed switch point",
            )
        )
    return rows


def agreement_rows(
    cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
        (5, 40, (3, 2)),
        (5, 200, (5,)),
        (6, 24, (3, 3)),
        (7, 40, (4, 3)),
    ),
    params: MachineParams | None = None,
    *,
    tolerance: float = 0.01,
) -> list[Row]:
    """Prediction-vs-simulation agreement (the dashed-vs-solid check).

    The paper reports "good agreement" between its model and the real
    machine; our substrate *is* the model plus contention dynamics, so
    for contention-free schedules the two must agree to within the
    stated tolerance (they agree exactly; the tolerance guards float
    noise).
    """
    p = params if params is not None else ipsc860()
    rows = []
    for d, m, partition in cases:
        predicted = multiphase_time(m, d, partition, p)
        measured = simulate_exchange(d, m, partition, p).time_us
        rel = abs(measured - predicted) / predicted if predicted else 0.0
        rows.append(
            Row(
                experiment="model vs sim",
                quantity=f"d={d} m={m} {{{','.join(map(str, sorted(partition)))}}}",
                paper_value=f"{predicted:.1f}us (predicted)",
                reproduced_value=f"{measured:.1f}us (simulated)",
                agrees=rel <= tolerance,
                note=f"rel. diff {rel * 100:.3f}%",
            )
        )
    return rows


def full_report(*, include_simulation: bool = True,
                params: MachineParams | None = None) -> Report:
    """Every comparison in one report (EXPERIMENTS.md source)."""
    report = Report()
    report.extend(partition_table())
    report.extend(parameter_table(params))
    report.extend(section43_crossover())
    report.extend(section51_example())
    report.extend(figure6_headline(params))
    report.extend(hull_rows(params=params))
    if include_simulation:
        report.extend(agreement_rows(params=params))
    return report
