"""Planner validation: predicted vs. simulated time per decision.

Runs the four application workloads (transpose, 2-D FFT, table lookup,
ADI) end-to-end under a chosen planning policy, payload-checking every
result against its numpy reference, then replays each *distinct*
planning decision on the simulated machine and compares the policy's
predicted time against the measured virtual time.  For contention-free
schedules the two must agree almost exactly (the simulator shares the
model's constants); the naive baseline has no analytic model, so its
rows report the simulated time alone.

This closes the loop the planner opens: the optimizer chooses, the
apps run the choice, and this report shows the choice was priced
correctly.  ``repro apps`` / ``repro validate`` render it.

Decisions are replayed on the vectorized fast path by default
(``engine="fast"``, :mod:`repro.sim.fastpath`): float-identical to
the event engine on contention-free schedules, reservation-replay
pricing for the naive baseline, and cheap enough to validate at
sweep scale.  Pass ``engine="event"`` to spot-check against the
coroutine discrete-event engine (authoritative for data movement,
faults, and FORCED semantics).

Beyond the app-driven exchanges the report also covers the other two
decision surfaces a planner owns: the §9 *pattern* selections
(broadcast/scatter/allgather via
:func:`~repro.plan.patterns.plan_pattern`, priced by the compiled
program fast path) and *non-uniform traffic* partition choices
(:class:`~repro.plan.policies.TrafficPolicy` over hotspot matrices).
On ``engine="fast"`` every one of those rows is closed-form; the
report's ``engine_boots`` counts how many times the event engine was
booted while validating — **zero** on the default path, which the apps
benchmark and tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.comm.program import simulate_planned_exchange
from repro.model.params import MachineParams, PRESETS
from repro.plan import (
    CollectivePlanner,
    FixedPolicy,
    PlanDecision,
    PlanningPolicy,
    TrafficPolicy,
    plan_pattern,
)
from repro.plan.decision import format_partition
from repro.plan.patterns import PATTERNS

__all__ = [
    "APP_WORKLOADS",
    "DEFAULT_PATTERN_CONFIGS",
    "DEFAULT_TRAFFIC_CONFIGS",
    "ENGINES",
    "PlanValidationReport",
    "ValidationRow",
    "rel_drift",
    "validate_policy",
]


def rel_drift(predicted: float | None, simulated: float) -> float | None:
    """Relative drift ``|simulated - predicted| / predicted``.

    The single definition of "how far did reality stray from the
    model": validation rows report it as ``rel_error``, and
    :class:`~repro.plan.policies.AdaptivePolicy` thresholds on it to
    decide when to re-plan.  ``None`` when the decision has no positive
    analytic prediction to drift from.
    """
    if predicted is None or predicted <= 0:
        return None
    return abs(simulated - predicted) / predicted


# ----------------------------------------------------------------------
# app workloads (small, payload-checked against numpy references)
# ----------------------------------------------------------------------
def _workload_transpose(planner: CollectivePlanner) -> None:
    from repro.apps.transpose import distributed_transpose

    rng = np.random.default_rng(101)
    matrix = rng.standard_normal((16, 16))
    got = distributed_transpose(matrix, 8, planner=planner)
    if not np.array_equal(got, matrix.T):
        raise AssertionError("transpose payload check failed")


def _workload_fft2d(planner: CollectivePlanner) -> None:
    from repro.apps.fft2d import distributed_fft2

    rng = np.random.default_rng(202)
    grid = rng.standard_normal((8, 8))
    got = distributed_fft2(grid, 4, planner=planner)
    if not np.allclose(got, np.fft.fft2(grid)):
        raise AssertionError("fft2d payload check failed")


def _workload_lookup(planner: CollectivePlanner) -> None:
    from repro.apps.lookup import DistributedTable, distributed_lookup

    rng = np.random.default_rng(303)
    keys = np.arange(0, 64, 3)
    table = DistributedTable(keys, keys * 1.5, 16, 64)
    queries = [rng.choice(keys, size=4) for _ in range(16)]
    answers = distributed_lookup(table, queries, planner=planner)
    for q, a in zip(queries, answers):
        if not np.array_equal(a, q * 1.5):
            raise AssertionError("lookup payload check failed")


def _workload_adi(planner: CollectivePlanner) -> None:
    from repro.apps.adi import ADIProblem, adi_reference_step, run_adi

    problem = ADIProblem(size=16, dt=2e-4)
    u0 = np.zeros((16, 16))
    u0[6:10, 6:10] = 100.0
    got = run_adi(u0, problem, 8, 2, planner=planner)
    ref = adi_reference_step(adi_reference_step(u0, problem), problem)
    if not np.allclose(got, ref, atol=1e-12):
        raise AssertionError("adi payload check failed")


#: the validated workloads, in report order
APP_WORKLOADS: dict[str, Callable[[CollectivePlanner], None]] = {
    "transpose": _workload_transpose,
    "fft2d": _workload_fft2d,
    "lookup": _workload_lookup,
    "adi": _workload_adi,
}


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValidationRow:
    """One planning decision, priced and measured."""

    app: str
    d: int
    m: float
    algorithm: str
    partition: tuple[int, ...] | None
    predicted_us: float | None
    simulated_us: float
    #: ``|simulated - predicted| / predicted`` (``None`` when the
    #: algorithm has no analytic prediction)
    rel_error: float | None


#: the decision-replay engines ``validate_policy`` accepts
ENGINES = ("fast", "event")

#: default ``(d, m)`` grid for the §9 pattern validation rows
DEFAULT_PATTERN_CONFIGS: tuple[tuple[int, float], ...] = ((3, 16.0), (4, 40.0))

#: default ``(d, m, skew)`` grid for the non-uniform traffic rows
DEFAULT_TRAFFIC_CONFIGS: tuple[tuple[int, float, float], ...] = (
    (3, 16.0, 4.0),
    (4, 40.0, 4.0),
)


@dataclass
class PlanValidationReport:
    """Payload-verified app runs plus per-decision timing agreement."""

    policy: str
    params_name: str
    #: which simulator replayed the decisions ("fast" or "event")
    engine: str = "fast"
    rows: list[ValidationRow] = field(default_factory=list)
    verified_apps: list[str] = field(default_factory=list)
    #: plan records observed in the simulator traces of the replayed
    #: decisions (one per exchange-replay row — the audit trail the
    #: trace keeps; pattern rows are priced closed-form, no trace)
    n_trace_decisions: int = 0
    #: event-engine boots observed while validating (``Engine.boot_count``
    #: delta) — 0 on ``engine="fast"``: the whole report is closed-form
    engine_boots: int = 0

    @property
    def max_rel_error(self) -> float:
        """Worst relative error over rows that have a prediction."""
        errors = [r.rel_error for r in self.rows if r.rel_error is not None]
        return max(errors, default=0.0)

    def render(self) -> str:
        lines = [
            f"planner validation under policy '{self.policy}' on "
            f"{self.params_name} [{self.engine} engine]:",
            f"  apps verified (payload-checked): {', '.join(self.verified_apps)}",
            "  app        d  m(B)    algorithm     partition  "
            "predicted(us)  simulated(us)  rel.err",
        ]
        for r in self.rows:
            part = format_partition(r.partition) if r.partition is not None else "-"
            predicted = f"{r.predicted_us:13.1f}" if r.predicted_us is not None else " " * 9 + "n/a "
            rel = f"{r.rel_error * 100:6.3f}%" if r.rel_error is not None else "    n/a"
            lines.append(
                f"  {r.app:9s} {r.d:2d} {r.m:5.0f}  {r.algorithm:13s} {part:10s} "
                f"{predicted}  {r.simulated_us:13.1f}  {rel}"
            )
        lines.append(
            f"  {len(self.rows)} decisions replayed on the simulator "
            f"({self.n_trace_decisions} plan records in traces); "
            f"max rel. error {self.max_rel_error * 100:.3f}%; "
            f"event-engine boots: {self.engine_boots}"
        )
        return "\n".join(lines)


class _ReplayPolicy:
    """Re-issue one already-taken decision (for simulation replay)."""

    def __init__(self, decision: PlanDecision) -> None:
        self.decision = decision
        self.name = decision.policy

    def decide(self, d: int, m: float) -> PlanDecision:
        if (d, float(m)) != (self.decision.d, self.decision.m):
            raise ValueError(
                f"replay policy holds a decision for (d={self.decision.d}, "
                f"m={self.decision.m}), asked for (d={d}, m={m})"
            )
        return self.decision


def _simulate_pattern_event(
    pattern: str,
    algorithm: str,
    d: int,
    m: float,
    partition: tuple[int, ...] | None,
    params: MachineParams,
) -> float:
    """Run one pattern selection on the event engine (spot-check mode)."""
    if pattern == "broadcast":
        from repro.patterns.broadcast import simulate_broadcast

        return simulate_broadcast(d, int(m), params, algorithm=algorithm)[0]
    if pattern == "scatter":
        from repro.patterns.scatter import simulate_scatter

        return simulate_scatter(d, int(m), params, algorithm=algorithm)[0]
    if pattern == "allgather":
        from repro.patterns.allgather import simulate_allgather

        return simulate_allgather(
            d, int(m), params, algorithm=algorithm, partition=partition
        )[0]
    raise ValueError(f"unknown pattern {pattern!r}")  # pragma: no cover


def _append_row(
    report: PlanValidationReport,
    app: str,
    d: int,
    m: float,
    algorithm: str,
    partition: tuple[int, ...] | None,
    predicted: float | None,
    simulated: float,
) -> None:
    rel = rel_drift(predicted, simulated)
    report.rows.append(
        ValidationRow(
            app=app, d=d, m=m, algorithm=algorithm, partition=partition,
            predicted_us=predicted, simulated_us=simulated, rel_error=rel,
        )
    )


def validate_policy(
    policy: PlanningPolicy | None = None,
    *,
    params: MachineParams | None = None,
    apps: Sequence[str] | None = None,
    engine: str = "fast",
    pattern_configs: Sequence[tuple[int, float]] | None = None,
    traffic_configs: Sequence[tuple[int, float, float]] | None = None,
    fault_plan=None,
) -> PlanValidationReport:
    """Run the app workloads under ``policy`` and price every decision.

    ``policy`` defaults to the fixed single-phase policy; ``params``
    (used to *simulate* the decisions) defaults to the iPSC-860
    calibration.  Each app gets a fresh
    :class:`~repro.plan.planner.CollectivePlanner` over the shared
    policy — per-run plan caches, one audit log per app.

    ``engine`` selects the decision-replay simulator: ``"fast"`` (the
    default) prices every decision with the vectorized fast path —
    float-identical to the event engine on contention-free schedules —
    while ``"event"`` replays each decision on the coroutine
    discrete-event machine (the spot-check mode).

    ``pattern_configs`` is a ``(d, m)`` grid of §9 pattern selections
    to validate (each expands to one row per pattern in
    :data:`~repro.plan.patterns.PATTERNS`); ``traffic_configs`` a
    ``(d, m, skew)`` grid of non-uniform traffic partition choices
    (one :class:`~repro.plan.policies.TrafficPolicy` decision each,
    replayed like an app decision).  Both default to small built-in
    grids; pass ``()`` to validate apps only.  The report's
    ``engine_boots`` records how many event engines were booted — 0 on
    ``engine="fast"``.

    A ``fault_plan`` (:class:`repro.sim.faults.FaultPlan`) degrades the
    machine the exchange decisions replay on, producing the drift rows
    (``rel_error``) the adaptive policy thresholds on.  Only the event
    engine understands faults, so a non-empty plan requires
    ``engine="event"`` and an empty pattern grid (pattern replays have
    no fault path).
    """
    from repro.sim.engine import Engine

    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if fault_plan is not None and not fault_plan.is_empty:
        if engine != "event":
            raise ValueError(
                "fault plans require engine='event'; the fast path models "
                "the uniform machine only"
            )
        if pattern_configs is None or len(tuple(pattern_configs)) > 0:
            raise ValueError(
                "fault plans require pattern_configs=(); pattern replays "
                "have no degraded-machine path"
            )
    p = params if params is not None else PRESETS["ipsc860"]()
    pol = policy if policy is not None else FixedPolicy(params=p)
    names = list(apps) if apps is not None else list(APP_WORKLOADS)
    patterns_grid = (
        list(pattern_configs) if pattern_configs is not None
        else list(DEFAULT_PATTERN_CONFIGS)
    )
    traffic_grid = (
        list(traffic_configs) if traffic_configs is not None
        else list(DEFAULT_TRAFFIC_CONFIGS)
    )
    report = PlanValidationReport(policy=pol.name, params_name=p.name, engine=engine)
    boots_before = Engine.boot_count

    def replay_exchange(app: str, decision: PlanDecision) -> None:
        result = simulate_planned_exchange(
            decision.d, int(decision.m), CollectivePlanner(_ReplayPolicy(decision)), p,
            fast=(engine == "fast"), fault_plan=fault_plan,
        )
        report.n_trace_decisions += len(result.trace.plan_decisions)
        _append_row(
            report, app, decision.d, decision.m, decision.algorithm,
            decision.partition, decision.predicted_us, result.time_us,
        )

    for name in names:
        try:
            workload = APP_WORKLOADS[name]
        except KeyError:
            raise ValueError(
                f"unknown app {name!r}; have {sorted(APP_WORKLOADS)}"
            ) from None
        planner = CollectivePlanner(pol)
        workload(planner)
        report.verified_apps.append(name)
        for decision in planner.unique_decisions():
            replay_exchange(name, decision)
    for d, m in patterns_grid:
        for pattern in PATTERNS:
            selection = plan_pattern(pattern, m, d, p)
            if engine == "fast":
                from repro.core.programs import pattern_program
                from repro.sim.fastpath import program_time

                simulated = program_time(
                    pattern_program(
                        pattern, selection.algorithm, d,
                        partition=selection.partition,
                    ),
                    m, p,
                )
            else:
                simulated = _simulate_pattern_event(
                    pattern, selection.algorithm, d, m, selection.partition, p
                )
            _append_row(
                report, f"pattern:{pattern}", d, float(m), selection.algorithm,
                selection.partition, selection.predicted_us, simulated,
            )
    for d, m, skew in traffic_grid:
        decision = TrafficPolicy(p, skew=skew).decide(d, m)
        replay_exchange(f"traffic:hot{skew:g}", decision)
    report.engine_boots = Engine.boot_count - boots_before
    return report
