"""Hull-of-optimality analysis and agreement with the paper's figures.

The paper plots only "the hull of optimality (i.e. only the best
combination for every blocksize)".  This module compares the
model-derived hull with the hulls the paper reports for dimensions
5–7, and provides a simulated spot-check: at sampled block sizes the
*simulated* winner must be the hull's partition (measured and
predicted rankings agree).

Hull construction rides the vectorized grid path of
:mod:`repro.model.optimizer`; :func:`hull_agreements` gathers the
agreements for the paper's figure dimensions in one call (the report's
hull rows are built from it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.comm.program import simulate_exchange
from repro.core.partitions import canonical
from repro.model.optimizer import OptimizerTable, hull_of_optimality
from repro.model.params import MachineParams, ipsc860

__all__ = [
    "HullAgreement",
    "PAPER_HULLS",
    "hull_agreement",
    "hull_agreements",
    "simulated_winner",
]

#: The hull members stated in the paper, smallest-block partition first.
PAPER_HULLS: dict[int, tuple[tuple[int, ...], ...]] = {
    5: ((3, 2), (5,)),
    6: ((2, 2, 2), (3, 3), (6,)),
    7: ((3, 2, 2), (4, 3), (7,)),
}

#: Paper's stated switch points (bytes) to the single-phase algorithm.
PAPER_LAST_BOUNDARY = {5: 100.0, 6: 140.0, 7: 160.0}


@dataclass(frozen=True)
class HullAgreement:
    """Comparison of the reproduced hull with the paper's."""

    d: int
    table: OptimizerTable
    paper_hull: tuple[tuple[int, ...], ...]
    hull_matches: bool
    paper_last_boundary: float
    reproduced_last_boundary: float

    @property
    def boundary_relative_error(self) -> float:
        if self.paper_last_boundary == 0:
            return 0.0
        return abs(self.reproduced_last_boundary - self.paper_last_boundary) / (
            self.paper_last_boundary
        )


def hull_agreement(d: int, params: MachineParams | None = None,
                   *, m_max: float = 400.0) -> HullAgreement:
    """Compute the model hull for dimension ``d`` and compare with the
    paper's stated hull and switch point.

    >>> agreement = hull_agreement(5)
    >>> agreement.hull_matches
    True
    """
    if d not in PAPER_HULLS:
        raise ValueError(f"the paper reports hulls for d in {sorted(PAPER_HULLS)}, not {d}")
    p = params if params is not None else ipsc860()
    table = hull_of_optimality(d, p, m_max=m_max)
    reproduced = tuple(canonical(h) for h in table.hull_partitions)
    paper = tuple(canonical(h) for h in PAPER_HULLS[d])
    last_boundary = table.boundaries[-1] if table.boundaries else 0.0
    return HullAgreement(
        d=d,
        table=table,
        paper_hull=paper,
        hull_matches=(reproduced == paper),
        paper_last_boundary=PAPER_LAST_BOUNDARY[d],
        reproduced_last_boundary=last_boundary,
    )


def hull_agreements(
    dims: Sequence[int] | None = None,
    params: MachineParams | None = None,
    *,
    m_max: float = 400.0,
) -> dict[int, HullAgreement]:
    """Hull agreement for several dimensions at once (default: every
    dimension the paper plots), keyed by ``d``.  Each dimension's hull
    is one vectorized sweep; :func:`repro.analysis.report.hull_rows`
    renders this mapping.
    """
    targets = tuple(dims) if dims is not None else tuple(sorted(PAPER_HULLS))
    return {d: hull_agreement(d, params, m_max=m_max) for d in targets}


def simulated_winner(
    d: int,
    m: int,
    candidates: Sequence[tuple[int, ...]],
    params: MachineParams | None = None,
) -> tuple[tuple[int, ...], dict[tuple[int, ...], float]]:
    """Run full simulations for every candidate partition at block size
    ``m`` and return the measured winner plus all timings."""
    p = params if params is not None else ipsc860()
    times: dict[tuple[int, ...], float] = {}
    for partition in candidates:
        result = simulate_exchange(d, m, partition, p)
        times[tuple(partition)] = result.time_us
    winner = min(times, key=lambda k: times[k])
    return winner, times
