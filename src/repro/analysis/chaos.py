"""Chaos sweeps: policies racing across degraded machines.

The question this module answers is the one the clean reproduction
cannot: *how do the paper's partition choices hold up when the machine
misbehaves?*  A sweep fixes a multi-step exchange workload, degrades
the machine along two axes — transient link-failure rate and straggler
severity — and races planning policies over every cell:

* ``fixed`` freezes the clean model optimum (what every pre-chaos call
  site effectively does);
* ``adaptive`` starts from the same optimum but re-plans when observed
  step times drift past its threshold
  (:class:`repro.plan.policies.AdaptivePolicy`);
* ``model`` re-decides each step without calibration (control).

Each cell's :class:`~repro.sim.faults.FaultPlan` is generated from
``(seed, cell indices)`` — independent of policy, so every policy in a
cell faces the *identical* machine — and each step is byte-verified,
so a completion time is only reported for a workload whose every block
arrived intact (transient outages survived via block-and-retry, never
by dropping data).

``repro chaos`` renders the sweep (text or ``--json``); the same seed
always yields the identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.comm.program import exchange_program
from repro.core.schedule import multiphase_schedule
from repro.model.optimizer import best_partition
from repro.model.params import MachineParams, PRESETS
from repro.plan.decision import format_partition
from repro.plan.policies import AdaptivePolicy, FixedPolicy, ModelPolicy, PlanningPolicy
from repro.sim.faults import FaultPlan
from repro.sim.machine import SimulatedHypercube
from repro.sim.trace import Trace
from repro.util.validation import check_block_size, check_dimension

__all__ = [
    "ChaosCell",
    "ChaosReport",
    "SWEEP_POLICIES",
    "WorkloadResult",
    "chaos_sweep",
    "run_degraded_workload",
]

#: policy names a sweep accepts
SWEEP_POLICIES = ("fixed", "adaptive", "model")

#: documented fault-free tolerance: on cells without injected faults
#: the adaptive policy must never complete later than the fixed policy
#: by more than this fraction (it plans the same optimum and observes
#: no drift, so in practice the two are identical; the tolerance
#: absorbs nothing more than float noise)
FAULT_FREE_TOLERANCE = 0.05


@dataclass
class WorkloadResult:
    """One policy's run over the multi-step workload on one machine."""

    policy: str
    step_times_us: list[float]
    partitions: list[tuple[int, ...]]
    n_switches: int
    n_replans: int
    trace: Trace

    @property
    def completion_us(self) -> float:
        return sum(self.step_times_us)

    @property
    def n_retries(self) -> int:
        return len(self.trace.retries)

    @property
    def n_drops(self) -> int:
        return len(self.trace.dropped_messages)


def _sweep_policy(
    name: str,
    params: MachineParams,
    *,
    threshold: float,
    fixed_partition: tuple[int, ...],
) -> PlanningPolicy:
    if name == "fixed":
        return FixedPolicy(fixed_partition, params=params)
    if name == "adaptive":
        return AdaptivePolicy(params, threshold=threshold)
    if name == "model":
        return ModelPolicy(params)
    raise ValueError(f"unknown sweep policy {name!r}; expected one of {SWEEP_POLICIES}")


def run_degraded_workload(
    d: int,
    m: int,
    policy: PlanningPolicy,
    params: MachineParams,
    *,
    n_steps: int,
    fault_plan: FaultPlan | None = None,
    verify: bool = True,
) -> WorkloadResult:
    """Run ``n_steps`` sequential complete exchanges under ``policy``
    on one persistent degraded machine.

    One :class:`~repro.sim.machine.SimulatedHypercube` carries the
    whole workload, so virtual time accumulates across steps and the
    fault plan's absolute outage windows land mid-workload.  Before
    each step the policy decides; after each step the observed time
    feeds back via ``policy.observe`` when the policy supports it
    (drift-triggered re-planning).  With ``verify`` every node's final
    buffer is byte-checked — a lost block fails loudly instead of
    flattering the completion time.
    """
    check_dimension(d, minimum=1)
    m = int(check_block_size(m))
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    machine = SimulatedHypercube(d, params, fault_plan=fault_plan)
    step_times: list[float] = []
    partitions: list[tuple[int, ...]] = []
    n_switches = 0
    n_replans = 0
    for _ in range(n_steps):
        decision = policy.decide(d, float(m))
        if decision.partition is None:
            raise ValueError(
                f"policy {policy.name!r} chose the naive baseline; chaos "
                f"workloads race partition schedules only"
            )
        partition = decision.partition
        steps = multiphase_schedule(d, partition)
        t_begin = machine.engine.now
        run = machine.run(exchange_program, steps=steps, m=m, engine="tags")
        observed = run.time - t_begin
        if verify:
            for buf in run.node_results:
                buf.verify_complete_exchange_result()
        if partitions and partition != partitions[-1]:
            n_switches += 1
        partitions.append(partition)
        step_times.append(observed)
        observe = getattr(policy, "observe", None)
        if observe is not None and observe(decision, observed):
            n_replans += 1
    return WorkloadResult(
        policy=policy.name,
        step_times_us=step_times,
        partitions=partitions,
        n_switches=n_switches,
        n_replans=n_replans,
        trace=machine.trace,
    )


@dataclass(frozen=True)
class ChaosCell:
    """One (failure rate × straggler severity × policy) measurement."""

    failure_rate: float
    straggler_scale: float
    policy: str
    completion_us: float
    n_steps: int
    n_retries: int
    n_switches: int
    n_replans: int
    n_drops: int
    partitions: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "failure_rate": self.failure_rate,
            "straggler_scale": self.straggler_scale,
            "policy": self.policy,
            "completion_us": self.completion_us,
            "n_steps": self.n_steps,
            "n_retries": self.n_retries,
            "n_switches": self.n_switches,
            "n_replans": self.n_replans,
            "n_drops": self.n_drops,
            "partitions": list(self.partitions),
        }


@dataclass
class ChaosReport:
    """A full failure-rate × straggler-severity × policy sweep."""

    d: int
    m: int
    n_steps: int
    seed: int
    threshold: float
    params_name: str
    clean_partition: tuple[int, ...]
    cells: list[ChaosCell] = field(default_factory=list)

    def cell(self, failure_rate: float, straggler_scale: float, policy: str) -> ChaosCell:
        for c in self.cells:
            if (
                c.policy == policy
                and c.failure_rate == failure_rate
                and c.straggler_scale == straggler_scale
            ):
                return c
        raise KeyError(
            f"no cell ({failure_rate}, {straggler_scale}, {policy!r}) in this sweep"
        )

    def as_dict(self) -> dict:
        return {
            "d": self.d,
            "m": self.m,
            "n_steps": self.n_steps,
            "seed": self.seed,
            "threshold": self.threshold,
            "params": self.params_name,
            "clean_partition": list(self.clean_partition),
            "fault_free_tolerance": FAULT_FREE_TOLERANCE,
            "cells": [c.as_dict() for c in self.cells],
        }

    def render(self) -> str:
        lines = [
            f"chaos sweep on {self.params_name}: d={self.d}, m={self.m}, "
            f"{self.n_steps} exchanges/cell, seed={self.seed}, "
            f"clean optimum {format_partition(self.clean_partition)}, "
            f"drift threshold {self.threshold:g}",
            "  fail-rate  straggler  policy    completion(us)  retries  "
            "switches  replans  drops  partitions",
        ]
        for c in self.cells:
            parts = ">".join(dict.fromkeys(c.partitions))
            lines.append(
                f"  {c.failure_rate:9.2f}  {c.straggler_scale:9.2f}  "
                f"{c.policy:8s}  {c.completion_us:14.1f}  {c.n_retries:7d}  "
                f"{c.n_switches:8d}  {c.n_replans:7d}  {c.n_drops:5d}  {parts}"
            )
        lines.append(
            f"  {len(self.cells)} cells; every cell byte-verified "
            f"(zero lost blocks); fault-free adaptive-vs-fixed tolerance "
            f"{FAULT_FREE_TOLERANCE * 100:.0f}%"
        )
        return "\n".join(lines)


def chaos_sweep(
    d: int,
    m: int,
    *,
    n_steps: int = 6,
    seed: int = 0,
    failure_rates: Sequence[float] = (0.0, 0.25),
    straggler_scales: Sequence[float] = (1.0, 4.0),
    policies: Sequence[str] = ("fixed", "adaptive"),
    threshold: float = 0.25,
    straggler_fraction: float = 0.25,
    params: MachineParams | None = None,
    verify: bool = True,
) -> ChaosReport:
    """Sweep failure rate × straggler severity × policy.

    Every cell draws its :class:`~repro.sim.faults.FaultPlan` from
    ``default_rng([seed, rate_index, scale_index])`` — deterministic,
    and independent of which policies run on it, so the race inside a
    cell is on identical machines.  Outage windows are sized from the
    clean model optimum so they land while traffic is actually flowing.
    A straggler scale of 1.0 (or a failure rate of 0.0) injects nothing
    on that axis; the (0.0, 1.0) cell is the fault-free control.
    """
    check_dimension(d, minimum=1)
    m = int(check_block_size(m))
    p = params if params is not None else PRESETS["ipsc860"]()
    for name in policies:
        if name not in SWEEP_POLICIES:
            raise ValueError(
                f"unknown sweep policy {name!r}; expected one of {SWEEP_POLICIES}"
            )
    clean = best_partition(float(m), d, p)
    # the workload's rough clean extent, used to size outage windows so
    # they overlap live traffic rather than landing after completion
    clean_span = clean.time * n_steps
    report = ChaosReport(
        d=d,
        m=m,
        n_steps=n_steps,
        seed=seed,
        threshold=threshold,
        params_name=p.name,
        clean_partition=clean.partition,
    )
    for i, rate in enumerate(failure_rates):
        for j, scale in enumerate(straggler_scales):
            plan = FaultPlan.generate(
                d,
                [seed, i, j],
                link_failure_rate=float(rate),
                horizon_us=clean_span,
                outage_duration_range_us=(0.25 * clean.time, 1.5 * clean.time),
                straggler_fraction=straggler_fraction if scale > 1.0 else 0.0,
                straggler_scale_range=(float(scale), float(scale)),
            )
            for name in policies:
                policy = _sweep_policy(
                    name, p, threshold=threshold, fixed_partition=clean.partition
                )
                result = run_degraded_workload(
                    d, m, policy, p,
                    n_steps=n_steps, fault_plan=plan, verify=verify,
                )
                report.cells.append(
                    ChaosCell(
                        failure_rate=float(rate),
                        straggler_scale=float(scale),
                        policy=name,
                        completion_us=result.completion_us,
                        n_steps=n_steps,
                        n_retries=result.n_retries,
                        n_switches=result.n_switches,
                        n_replans=result.n_replans,
                        n_drops=result.n_drops,
                        partitions=tuple(
                            format_partition(part) for part in result.partitions
                        ),
                    )
                )
    return report
