"""Reproduction of the paper's evaluation figures (Figures 4, 5, 6).

Each figure plots complete-exchange time against block size for an
iPSC-860 of dimension 5, 6, or 7, showing the partitions that form the
*hull of optimality* plus the Standard Exchange reference, with
predicted (model) and measured (simulated) values.

The module produces the underlying data; rendering (ASCII) and the
paper-vs-reproduced comparison live in :mod:`repro.analysis.plotting`
and :mod:`repro.analysis.report`.  Predicted curves come from one
vectorized grid evaluation per figure
(:func:`repro.model.vectorized.multiphase_time_grid`), bitwise
identical to the scalar model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.plotting import Series, ascii_plot
from repro.comm.program import simulate_exchange
from repro.model.optimizer import hull_of_optimality
from repro.model.vectorized import multiphase_time_grid
from repro.model.params import MachineParams, ipsc860
from repro.util.validation import check_dimension

__all__ = [
    "FIGURE_SPECS",
    "FigureData",
    "FigureSpec",
    "PartitionCurve",
    "figure_data",
    "render_figure",
]


@dataclass(frozen=True)
class FigureSpec:
    """Static description of one paper figure."""

    figure_number: int
    d: int
    #: partitions the paper shows (hull members + SE reference)
    partitions: tuple[tuple[int, ...], ...]
    #: paper's stated hull (for the agreement checks)
    paper_hull: tuple[tuple[int, ...], ...]
    #: x-axis range in bytes
    m_max: int = 400
    notes: str = ""


#: The three evaluation figures.  Partition lists follow the plots: the
#: hull members plus the Standard Exchange curve shown "only for
#: comparison".
FIGURE_SPECS: dict[int, FigureSpec] = {
    4: FigureSpec(
        figure_number=4,
        d=5,
        partitions=((1, 1, 1, 1, 1), (3, 2), (5,)),
        paper_hull=((3, 2), (5,)),
        notes="hull {2,3} then {5}; {2,3} optimal below ~100 bytes",
    ),
    5: FigureSpec(
        figure_number=5,
        d=6,
        partitions=((1, 1, 1, 1, 1, 1), (2, 2, 2), (3, 3), (6,)),
        paper_hull=((2, 2, 2), (3, 3), (6,)),
        notes="{6} optimal beyond ~140 bytes; {2,2,2} only for very small blocks",
    ),
    6: FigureSpec(
        figure_number=6,
        d=7,
        partitions=((1, 1, 1, 1, 1, 1, 1), (3, 2, 2), (4, 3), (7,)),
        paper_hull=((3, 2, 2), (4, 3), (7,)),
        notes="{7} optimal beyond ~160 bytes; {2,2,3} for 0-12 bytes; "
        "{3,4} 2x faster than both classics at 40 bytes",
    ),
}


@dataclass
class PartitionCurve:
    """Predicted and measured series for one partition."""

    partition: tuple[int, ...]
    block_sizes: list[float]
    predicted_us: list[float]
    measured_block_sizes: list[float] = field(default_factory=list)
    measured_us: list[float] = field(default_factory=list)

    @property
    def label(self) -> str:
        inner = ",".join(str(p) for p in sorted(self.partition))
        return "{" + inner + "}"


@dataclass
class FigureData:
    """All series of one reproduced figure."""

    spec: FigureSpec
    params_name: str
    curves: list[PartitionCurve]
    hull_partitions: tuple[tuple[int, ...], ...]
    hull_boundaries: tuple[float, ...]

    def curve(self, partition: Sequence[int]) -> PartitionCurve:
        key = tuple(sorted(partition, reverse=True))
        for c in self.curves:
            if tuple(sorted(c.partition, reverse=True)) == key:
                return c
        raise KeyError(f"no curve for partition {partition}")

    def winner_at(self, m: float) -> tuple[int, ...]:
        """Figure-local winner (among plotted partitions) at ``m``."""
        best = min(self.curves, key=lambda c: multiphase_interp(c, m))
        return best.partition


def multiphase_interp(curve: PartitionCurve, m: float) -> float:
    """Linear interpolation on a curve's predicted series."""
    xs, ys = curve.block_sizes, curve.predicted_us
    if m <= xs[0]:
        return ys[0]
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        if x0 <= m <= x1:
            f = (m - x0) / (x1 - x0) if x1 > x0 else 0.0
            return y0 + f * (y1 - y0)
    return ys[-1]


def figure_data(
    figure_number: int,
    *,
    params: MachineParams | None = None,
    prediction_points: int = 41,
    simulate: bool = True,
    sim_block_sizes: Sequence[int] | None = None,
    sim_engine: str = "tags",
) -> FigureData:
    """Generate the data behind Figure 4, 5, or 6.

    Predictions come from the analytic model on a dense grid; measured
    points are full data-moving simulations at ``sim_block_sizes``
    (default: 9 sizes across the 0–400 byte axis).
    """
    if figure_number not in FIGURE_SPECS:
        raise ValueError(f"no such figure: {figure_number}; have {sorted(FIGURE_SPECS)}")
    spec = FIGURE_SPECS[figure_number]
    p = params if params is not None else ipsc860()
    check_dimension(spec.d, minimum=1)
    if sim_block_sizes is None:
        sim_block_sizes = (0, 8, 24, 40, 80, 160, 240, 320, 400)

    grid = [spec.m_max * i / (prediction_points - 1) for i in range(prediction_points)]
    predicted_grid = multiphase_time_grid(grid, spec.d, spec.partitions, p)
    curves: list[PartitionCurve] = []
    for row, partition in enumerate(spec.partitions):
        curve = PartitionCurve(
            partition=partition,
            block_sizes=list(grid),
            predicted_us=predicted_grid[row].tolist(),
        )
        if simulate:
            for m in sim_block_sizes:
                result = simulate_exchange(
                    spec.d, int(m), partition, p, engine=sim_engine
                )
                curve.measured_block_sizes.append(float(m))
                curve.measured_us.append(result.time_us)
        curves.append(curve)

    table = hull_of_optimality(spec.d, p, m_max=float(spec.m_max))
    return FigureData(
        spec=spec,
        params_name=p.name,
        curves=curves,
        hull_partitions=table.hull_partitions,
        hull_boundaries=table.boundaries,
    )


def render_figure(data: FigureData, *, width: int = 72, height: int = 22) -> str:
    """ASCII rendering of a reproduced figure (predicted curves)."""
    series = [
        Series(label=c.label, x=c.block_sizes, y=[v * 1e-6 for v in c.predicted_us])
        for c in data.curves
    ]
    spec = data.spec
    return ascii_plot(
        series,
        width=width,
        height=height,
        title=(
            f"Figure {spec.figure_number}: multiphase exchange on a "
            f"{1 << spec.d}-node (d={spec.d}) {data.params_name}"
        ),
        xlabel="block size (bytes)",
        ylabel="time, s",
    )
