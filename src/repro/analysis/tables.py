"""Reproduction of the paper's tables and worked numeric examples.

Covers everything in the paper that is numbers-in-text rather than a
plotted figure:

* the §6 partition-count table (p(5), p(10), p(15), p(20));
* the §7.4 measured-parameter table (λ, τ, δ, λ₀, λ_eff, δ_eff, ρ, γ);
* the §4.3 hypothetical-machine crossover ("less than 30 bytes");
* the §5.1 worked example (SE = 15144 µs; phases 1832/5080 µs;
  shuffles 3072 µs — with the paper's phase-2 slip documented);
* the Figure 6 caption headline (at d=7, m=40: SE ≈ {7} ≈ 0.037 s,
  {3,4} ≈ 0.016 s, "more than twice as fast").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitions import partition_count
from repro.model.cost import multiphase_time, phase_breakdown, standard_time
from repro.model.crossover import crossover_block_size
from repro.model.params import MachineParams, hypothetical, ipsc860
from repro.model.vectorized import multiphase_time_grid

__all__ = [
    "Row",
    "figure6_headline",
    "parameter_table",
    "partition_table",
    "section43_crossover",
    "section51_example",
    "format_rows",
]


@dataclass(frozen=True)
class Row:
    """One paper-vs-reproduced comparison row."""

    experiment: str
    quantity: str
    paper_value: str
    reproduced_value: str
    agrees: bool
    note: str = ""


def format_rows(rows: list[Row]) -> str:
    """Fixed-width table rendering for bench output."""
    headers = ("experiment", "quantity", "paper", "reproduced", "ok", "note")
    cells = [headers] + [
        (r.experiment, r.quantity, r.paper_value, r.reproduced_value,
         "yes" if r.agrees else "NO", r.note)
        for r in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# §6: the partition-count table
# ----------------------------------------------------------------------
#: (d, p(d)) exactly as printed in the paper.
PAPER_PARTITION_TABLE = ((5, 7), (10, 42), (15, 176), (20, 627))


def partition_table() -> list[Row]:
    """p(d) for the paper's table dimensions, plus the in-text values
    p(7) = 15 and a million-node cube's p(20) = 627."""
    rows = []
    for d, expected in PAPER_PARTITION_TABLE:
        got = partition_count(d)
        rows.append(
            Row(
                experiment="§6 table",
                quantity=f"p({d})",
                paper_value=str(expected),
                reproduced_value=str(got),
                agrees=(got == expected),
            )
        )
    got7 = partition_count(7)
    rows.append(
        Row(
            experiment="§1 text",
            quantity="p(7)",
            paper_value="15",
            reproduced_value=str(got7),
            agrees=(got7 == 15),
        )
    )
    return rows


# ----------------------------------------------------------------------
# §7.4: measured machine parameters
# ----------------------------------------------------------------------
#: (quantity, paper value) pairs from §7.4.
PAPER_PARAMETERS = (
    ("lambda (us)", 95.0),
    ("tau (us/byte)", 0.394),
    ("delta (us/dim)", 10.3),
    ("lambda_0 (us)", 82.5),
    ("lambda_eff (us)", 177.5),
    ("delta_eff (us/dim)", 20.6),
    ("rho (us/byte)", 0.54),
    ("global sync (us/dim)", 150.0),
)


def parameter_table(params: MachineParams | None = None) -> list[Row]:
    """The calibration constants vs the paper's §7.4 measurements."""
    p = params if params is not None else ipsc860()
    values = {
        "lambda (us)": p.latency,
        "tau (us/byte)": p.byte_time,
        "delta (us/dim)": p.hop_time,
        "lambda_0 (us)": p.sync_latency,
        "lambda_eff (us)": p.exchange_latency,
        "delta_eff (us/dim)": p.exchange_hop_time,
        "rho (us/byte)": p.permute_time,
        "global sync (us/dim)": p.global_sync_per_dim,
    }
    rows = []
    for quantity, expected in PAPER_PARAMETERS:
        got = values[quantity]
        rows.append(
            Row(
                experiment="§7.4 params",
                quantity=quantity,
                paper_value=f"{expected:g}",
                reproduced_value=f"{got:g}",
                agrees=abs(got - expected) < 1e-9,
            )
        )
    return rows


# ----------------------------------------------------------------------
# §4.3: crossover on the hypothetical machine
# ----------------------------------------------------------------------
def section43_crossover() -> list[Row]:
    """SE/OCS crossover on the §4.3 machine: paper quotes "less than
    30" bytes for d = 6."""
    h = hypothetical()
    m_star = crossover_block_size(6, h)
    return [
        Row(
            experiment="§4.3 crossover",
            quantity="SE beats OCS below (bytes), d=6",
            paper_value="~30",
            reproduced_value=f"{m_star:.2f}",
            agrees=29.0 < m_star < 30.0,
        )
    ]


# ----------------------------------------------------------------------
# §5.1: the two-phase worked example
# ----------------------------------------------------------------------
def section51_example() -> list[Row]:
    """The d=6, m=24 worked example of §5.1 on the hypothetical machine.

    The paper's phase-2 number (6040 µs, total 10944 µs) uses a 160-byte
    effective block where its own formula gives 24 * 2**(6-4) = 96
    bytes (5080 µs, total 9984 µs); see DESIGN.md §3.  Both totals beat
    the Standard Exchange's 15144 µs, which is the claim under test.
    """
    h = hypothetical()
    d, m = 6, 24
    rows = [
        Row(
            experiment="§5.1 example",
            quantity="Standard Exchange total (us)",
            paper_value="15144",
            reproduced_value=f"{standard_time(m, d, h):.0f}",
            agrees=abs(standard_time(m, d, h) - 15144) < 0.5,
        )
    ]
    phases = phase_breakdown(m, d, (2, 4), h)
    phase1 = phases[0].transmission + phases[0].distance
    phase2 = phases[1].transmission + phases[1].distance
    shuffles = phases[0].shuffle + phases[1].shuffle
    total = multiphase_time(m, d, (2, 4), h)
    rows.append(
        Row(
            experiment="§5.1 example",
            quantity="phase {2} (us), eff. block 384B",
            paper_value="1832",
            reproduced_value=f"{phase1:.0f}",
            agrees=abs(phase1 - 1832) < 0.5,
        )
    )
    rows.append(
        Row(
            experiment="§5.1 example",
            quantity="phase {4} (us)",
            paper_value="6040 (paper, 160B slip)",
            reproduced_value=f"{phase2:.0f} (formula, 96B)",
            agrees=abs(phase2 - 5080) < 0.5,
            note="paper's own m_i formula gives 96B -> 5080us; see DESIGN.md",
        )
    )
    rows.append(
        Row(
            experiment="§5.1 example",
            quantity="shuffle overhead (us)",
            paper_value="3072",
            reproduced_value=f"{shuffles:.0f}",
            agrees=abs(shuffles - 3072) < 0.5,
        )
    )
    rows.append(
        Row(
            experiment="§5.1 example",
            quantity="two-phase total (us)",
            paper_value="10944 (9984 per formula)",
            reproduced_value=f"{total:.0f}",
            agrees=abs(total - 9984) < 0.5,
            note="two-phase < SE either way",
        )
    )
    rows.append(
        Row(
            experiment="§5.1 example",
            quantity="two-phase beats Standard Exchange",
            paper_value="yes",
            reproduced_value="yes" if total < standard_time(m, d, h) else "no",
            agrees=total < standard_time(m, d, h),
        )
    )
    return rows


# ----------------------------------------------------------------------
# Figure 6 caption headline
# ----------------------------------------------------------------------
def figure6_headline(params: MachineParams | None = None) -> list[Row]:
    """At d=7, m=40: SE and {7} both ~0.037 s; {3,4} ~0.016 s
    ("more than twice as fast")."""
    p = params if params is not None else ipsc860()
    d, m = 7, 40
    times = multiphase_time_grid([float(m)], d, ((1,) * 7, (7,), (4, 3)), p)
    t_se, t_ocs, t_34 = (t * 1e-6 for t in times[:, 0].tolist())
    rows = [
        Row(
            experiment="Fig.6 caption",
            quantity="SE {1^7} at 40B (s)",
            paper_value="0.037",
            reproduced_value=f"{t_se:.4f}",
            agrees=abs(t_se - 0.037) < 0.004,
        ),
        Row(
            experiment="Fig.6 caption",
            quantity="OCS {7} at 40B (s)",
            paper_value="0.037",
            reproduced_value=f"{t_ocs:.4f}",
            agrees=abs(t_ocs - 0.037) < 0.004,
        ),
        Row(
            experiment="Fig.6 caption",
            quantity="{3,4} at 40B (s)",
            paper_value="0.016",
            reproduced_value=f"{t_34:.4f}",
            agrees=abs(t_34 - 0.016) < 0.002,
        ),
        Row(
            experiment="Fig.6 caption",
            quantity="{3,4} speedup over classics",
            paper_value=">2x",
            reproduced_value=f"{min(t_se, t_ocs) / t_34:.2f}x",
            agrees=min(t_se, t_ocs) / t_34 > 2.0,
        ),
    ]
    return rows
