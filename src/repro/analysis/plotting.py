"""Terminal line plots for the figure reproductions.

The benchmarks render each reproduced figure as ASCII art so the
curves (and who-wins-where structure) are inspectable without a
display or plotting dependency.  Multiple series share one canvas;
each gets a distinct glyph and a legend entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "ascii_plot"]

_GLYPHS = "ox+*#@%&"


@dataclass
class Series:
    """One plotted curve: sample points plus a label."""

    label: str
    x: Sequence[float]
    y: Sequence[float]
    glyph: str | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )


def ascii_plot(
    series: Sequence[Series],
    *,
    width: int = 72,
    height: int = 22,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render series on a shared-axis character canvas.

    Points are nearest-cell rasterized; later series overwrite earlier
    ones where they collide (make the most important series last).
    """
    if not series:
        raise ValueError("nothing to plot")
    xs = [v for s in series for v in s.x]
    ys = [v for s in series for v in s.y]
    if not xs:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(xv: float, yv: float) -> tuple[int, int]:
        col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
        return height - 1 - row, col

    for idx, s in enumerate(series):
        glyph = s.glyph or _GLYPHS[idx % len(_GLYPHS)]
        # connect consecutive samples with linear interpolation so the
        # curve reads as a line, not a scatter
        pts = sorted(zip(s.x, s.y))
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(2, int(abs(cell(x1, y1)[1] - cell(x0, y0)[1])) + 1)
            for t in range(steps + 1):
                f = t / steps
                r, c = cell(x0 + f * (x1 - x0), y0 + f * (y1 - y0))
                grid[r][c] = glyph
        if len(pts) == 1:
            r, c = cell(*pts[0])
            grid[r][c] = glyph

    lines: list[str] = []
    if title:
        lines.append(title.center(width + 12))
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    label_width = max(len(top_label), len(bottom_label), len(ylabel)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif r == height // 2 and ylabel:
            prefix = ylabel[: label_width - 1].rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * label_width + " +" + "-" * width + "+")
    x_axis = f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(width // 2)
    lines.append(" " * (label_width + 2) + x_axis)
    if xlabel:
        lines.append(" " * (label_width + 2) + xlabel.center(width))
    legend = "   ".join(
        f"{s.glyph or _GLYPHS[i % len(_GLYPHS)]} = {s.label}" for i, s in enumerate(series)
    )
    lines.append("")
    lines.append("  legend: " + legend)
    return "\n".join(lines)
