"""Evaluation reproduction: figures, tables, hulls, and reports."""

from repro.analysis.figures import (
    FIGURE_SPECS,
    FigureData,
    FigureSpec,
    PartitionCurve,
    figure_data,
    render_figure,
)
from repro.analysis.hull import (
    PAPER_HULLS,
    HullAgreement,
    hull_agreement,
    hull_agreements,
    simulated_winner,
)
from repro.analysis.plotting import Series, ascii_plot
from repro.analysis.report import Report, agreement_rows, full_report, hull_rows
from repro.analysis.sweep import SweepCell, partition_sweep, render_sweep
from repro.analysis.tables import (
    Row,
    figure6_headline,
    format_rows,
    parameter_table,
    partition_table,
    section43_crossover,
    section51_example,
)
from repro.analysis.validation import (
    APP_WORKLOADS,
    ENGINES,
    PlanValidationReport,
    ValidationRow,
    validate_policy,
)

__all__ = [
    "APP_WORKLOADS",
    "ENGINES",
    "FIGURE_SPECS",
    "FigureData",
    "FigureSpec",
    "HullAgreement",
    "PAPER_HULLS",
    "PartitionCurve",
    "PlanValidationReport",
    "Report",
    "Row",
    "Series",
    "SweepCell",
    "ValidationRow",
    "validate_policy",
    "partition_sweep",
    "render_sweep",
    "agreement_rows",
    "ascii_plot",
    "figure6_headline",
    "figure_data",
    "format_rows",
    "full_report",
    "hull_agreement",
    "hull_agreements",
    "hull_rows",
    "parameter_table",
    "partition_table",
    "render_figure",
    "section43_crossover",
    "section51_example",
    "simulated_winner",
]
