"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report``
    Print the full paper-vs-reproduced comparison (optionally with the
    simulated agreement rows).
``figure N``
    Regenerate Figure 4, 5, or 6 as an ASCII plot (model curves).
``hull D``
    Print the hull of optimality for cube dimension ``D``.
``simulate D M [PARTS...]``
    Run one verified exchange on the simulated machine and print its
    measured time, transmission count, and per-phase breakdown.
``sweep``
    Optimal-partition guidance table across dimensions and block
    sizes; ``--batch`` (the default) scores each dimension in one
    vectorized grid evaluation, ``--no-batch`` uses the scalar path.
``shards DIR``
    Precompute optimizer tables and write one shard file per machine
    preset — the §6 "done only once" step, persisted for serving.
``serve``
    Long-lived JSON-lines query loop on stdin/stdout (one request per
    line; see :mod:`repro.service.server` for the protocol).  With
    ``--shards DIR`` tables come from the prebuilt directory
    (dimensions missing from a shard are swept on demand).  With
    ``--socket HOST:PORT`` (or ``unix:PATH``) the same protocol is
    served to many concurrent clients by the asyncio transport of
    :mod:`repro.service.async_server`, with per-connection pipelining
    and cross-client micro-batching; ``--warm LOG`` replays a
    JSON-lines query log into the result memo before the first
    request (both transports).
``query D M``
    One-shot optimizer query through the same service path; with
    ``--connect ADDR`` the query is answered by a running socket
    server instead of an in-process registry.
``plan D M``
    Show the collective planner's decision for a ``(d, m)`` exchange
    (or a §9 pattern with ``--pattern``) under a chosen policy, with
    every scored candidate.
``apps``
    Run the application workloads end-to-end under a planning policy
    (``--policy {fixed,model,service,contention}``), payload-check
    them, and print the predicted-vs-simulated validation report.
``validate``
    The validation report alone, replaying every planner decision on
    the chosen simulator: ``--engine fast`` (default) uses the
    vectorized lockstep fast path of :mod:`repro.sim.fastpath`,
    ``--engine event`` spot-checks on the coroutine discrete-event
    engine.  ``apps`` accepts the same ``--engine`` switch.
``check``
    Static verification, no simulator: ``--schedules`` certifies every
    ``(d, partition)`` schedule, §9 pattern program, and
    planner-emitted collective (edge/port-disjoint circuits, legal
    e-cube routes, block conservation, fast-path coefficient
    fidelity); ``--code`` runs the AST lint rules of
    :mod:`repro.check.rules` over the source tree.  With neither flag,
    both run.  Exit status 1 on any violation; ``--json`` emits the
    machine-readable report.
``chaos``
    Sweep failure rate × straggler severity × planning policy over a
    multi-step exchange workload on seeded degraded machines
    (:mod:`repro.analysis.chaos`): per-cell completion time, retry
    counts, and plan-switch counts, byte-verified.  ``--json`` emits
    the machine-readable report; the same seed always reproduces it.
``demo``
    A one-minute tour: three algorithms, optimizer, simulation.

``hull`` accepts ``--save FILE`` / ``--load FILE`` for the §6 "store
the optimal combination for repeated future use" workflow.  ``hull``,
``sweep``, and ``query`` accept ``--json`` for machine-readable
output (the default text output is unchanged).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.figures import figure_data, render_figure
from repro.analysis.report import full_report
from repro.comm.program import simulate_exchange
from repro.model.cost import multiphase_time, phase_breakdown
from repro.model.optimizer import best_partition, hull_of_optimality
from repro.model.params import PRESETS
from repro.service import DEFAULT_DIMS, OptimizerRegistry, serve

__all__ = ["build_parser", "main"]


def _params(name: str):
    try:
        return PRESETS[name]()
    except KeyError:
        raise SystemExit(f"unknown machine preset {name!r}; have {sorted(PRESETS)}")


def _fmt(partition) -> str:
    from repro.plan.decision import format_partition

    return format_partition(partition)


def _add_server_flags(parser: argparse.ArgumentParser) -> None:
    """The shared socket-server tunables — one flag set, one
    :class:`~repro.service.config.ServerConfig`, consumed identically
    by ``repro serve --socket`` and ``repro cluster join``."""
    parser.add_argument(
        "--max-batch", type=int, default=None, metavar="N",
        help="flush the cross-client micro-batch at N pending queries "
        "(socket mode; default: 64)",
    )
    parser.add_argument(
        "--hold-us", type=float, default=None, metavar="US",
        help="hold the micro-batch up to US microseconds to gather "
        "occupancy (socket mode; default: 0 — flush at the end of "
        "the event-loop turn)",
    )
    parser.add_argument(
        "--auth-token", metavar="TOKEN", default=None,
        help="require this shared secret at connection negotiation "
        "(socket mode; binary HELLO token / JSON {\"op\": \"auth\"})",
    )
    parser.add_argument(
        "--shed-queries", type=int, default=None, metavar="N",
        help="shed query requests with RETRY_LATER once N queries are "
        "pending in the micro-batcher (socket mode; default: off)",
    )
    parser.add_argument(
        "--shed-bytes", type=int, default=None, metavar="BYTES",
        help="shed query requests with RETRY_LATER once BYTES of "
        "requests are admitted but unanswered (socket mode; default: off)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiphase complete exchange on a circuit-switched hypercube "
        "(Bokhari, ICPP 1991) — reproduction toolkit",
    )
    parser.add_argument(
        "--machine", default="ipsc860", choices=sorted(PRESETS),
        help="machine parameter preset (default: ipsc860)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="paper-vs-reproduced comparison table")
    p_report.add_argument(
        "--simulate", action="store_true",
        help="include the simulated agreement rows (slower)",
    )

    p_figure = sub.add_parser("figure", help="render Figure 4, 5, or 6 (ASCII)")
    p_figure.add_argument("number", type=int, choices=(4, 5, 6))

    p_hull = sub.add_parser("hull", help="hull of optimality for a cube dimension")
    p_hull.add_argument("d", type=int)
    p_hull.add_argument("--m-max", type=float, default=400.0)
    p_hull.add_argument("--save", metavar="FILE", help="persist the table as JSON")
    p_hull.add_argument("--load", metavar="FILE", help="read a stored table instead of rebuilding")
    p_hull.add_argument(
        "--json", action="store_true",
        help="print the table as JSON instead of the text listing",
    )

    p_sweep = sub.add_parser("sweep", help="optimal-partition table over (d, m)")
    p_sweep.add_argument("--dims", type=int, nargs="+", default=[4, 5, 6, 7])
    p_sweep.add_argument("--sizes", type=float, nargs="+",
                         default=[0.0, 8.0, 24.0, 40.0, 80.0, 160.0, 320.0])
    p_sweep.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="score each dimension's whole block-size row in one "
        "vectorized grid evaluation (--no-batch: scalar reference path; "
        "identical output)",
    )
    p_sweep.add_argument(
        "--json", action="store_true",
        help="print the sweep cells as JSON instead of the text table",
    )

    p_shards = sub.add_parser(
        "shards", help="precompute optimizer tables into a shard directory"
    )
    p_shards.add_argument("dir", help="directory to write <preset>.shard files into")
    p_shards.add_argument(
        "--dims", type=int, nargs="+", default=None,
        help="cube dimensions to precompute (default: 2..8)",
    )
    p_shards.add_argument(
        "--all-machines", action="store_true",
        help="build shards for every preset, not just --machine",
    )

    p_serve = sub.add_parser(
        "serve", help="serve optimizer queries as JSON lines (stdio or socket)"
    )
    p_serve.add_argument(
        "--shards", metavar="DIR",
        help="serve from a prebuilt shard directory (see 'repro shards')",
    )
    p_serve.add_argument(
        "--socket", metavar="ADDR",
        help="serve many concurrent clients on HOST:PORT or unix:PATH "
        "(async transport with cross-client batching; default: stdio)",
    )
    p_serve.add_argument(
        "--warm", metavar="LOG",
        help="replay a JSON-lines query log into the result memo on startup",
    )
    _add_server_flags(p_serve)

    p_cluster = sub.add_parser(
        "cluster", help="run and administer a coordinator-backed optimizer cluster"
    )
    csub = p_cluster.add_subparsers(dest="cluster_command", required=True)
    p_coord = csub.add_parser(
        "coordinator", help="run the cluster control plane (routing + liveness)"
    )
    p_coord.add_argument(
        "address", metavar="ADDR", help="bind HOST:PORT or unix:PATH"
    )
    p_coord.add_argument(
        "--replication", type=int, default=2, metavar="N",
        help="replicas per (preset, d) shard key (default: 2)",
    )
    p_coord.add_argument(
        "--heartbeat-s", type=float, default=2.0, metavar="S",
        help="node heartbeat cadence in seconds (default: 2.0)",
    )
    p_coord.add_argument(
        "--miss-limit", type=int, default=3, metavar="K",
        help="consecutive missed heartbeats before a node is dead "
        "(default: 3)",
    )
    p_join = csub.add_parser(
        "join", help="serve optimizer queries as a member of a cluster"
    )
    p_join.add_argument(
        "coordinator", metavar="COORD", help="coordinator HOST:PORT or unix:PATH"
    )
    p_join.add_argument(
        "--listen", metavar="ADDR", required=True,
        help="data-plane bind address (HOST:PORT or unix:PATH; port 0 "
        "picks an ephemeral port)",
    )
    p_join.add_argument(
        "--shards", metavar="DIR",
        help="serve from a prebuilt shard directory (see 'repro shards')",
    )
    p_join.add_argument(
        "--warm", metavar="LOG",
        help="replay a JSON-lines query log into the result memo on startup",
    )
    p_join.add_argument(
        "--node-id", metavar="ID", default=None,
        help="stable node name (default: the advertised address)",
    )
    p_join.add_argument(
        "--advertise", metavar="ADDR", default=None,
        help="address clients should dial (default: the bound address)",
    )
    _add_server_flags(p_join)
    p_status = csub.add_parser(
        "status", help="print the coordinator's membership and routing state"
    )
    p_status.add_argument(
        "coordinator", metavar="COORD", help="coordinator HOST:PORT or unix:PATH"
    )
    p_status.add_argument(
        "--json", action="store_true", help="print the raw status document"
    )
    p_drain = csub.add_parser(
        "drain", help="gracefully drain one node out of the cluster"
    )
    p_drain.add_argument(
        "coordinator", metavar="COORD", help="coordinator HOST:PORT or unix:PATH"
    )
    p_drain.add_argument("node", metavar="NODE", help="node id to drain")

    p_query = sub.add_parser(
        "query", help="one-shot optimizer query through the service path"
    )
    p_query.add_argument("d", type=int, help="cube dimension")
    p_query.add_argument("m", type=float, help="block size in bytes")
    p_query.add_argument(
        "--shards", metavar="DIR",
        help="answer from a prebuilt shard directory (see 'repro shards')",
    )
    p_query.add_argument(
        "--connect", metavar="ADDR",
        help="ask a running socket server (HOST:PORT or unix:PATH) or a "
        "whole cluster (cluster:COORD_ADDR) instead of building an "
        "in-process registry",
    )
    p_query.add_argument(
        "--wire", choices=("json", "binary"), default="json",
        help="transport for --connect: JSON lines or the negotiated "
        "length-prefixed binary protocol (default: json)",
    )
    p_query.add_argument(
        "--auth-token", metavar="TOKEN", default=None,
        help="shared secret for a server started with --auth-token "
        "(requires --connect)",
    )
    p_query.add_argument(
        "--json", action="store_true", help="print the answer as JSON"
    )

    p_plan = sub.add_parser(
        "plan", help="show the collective planner's decision for (d, m)"
    )
    p_plan.add_argument("d", type=int, help="cube dimension")
    p_plan.add_argument("m", type=float, help="block size in bytes")
    p_plan.add_argument(
        "--policy", default="model",
        choices=("fixed", "model", "service", "contention", "traffic"),
        help="planning policy (default: model)",
    )
    p_plan.add_argument(
        "--pattern", default="exchange",
        choices=("exchange", "broadcast", "scatter", "allgather"),
        help="collective to plan (default: the complete exchange)",
    )
    p_plan.add_argument(
        "--shards", metavar="DIR",
        help="back the service policy with a prebuilt shard directory",
    )
    p_plan.add_argument(
        "--json", action="store_true", help="print the decision as JSON"
    )

    p_apps = sub.add_parser(
        "apps", help="run the app workloads under a planning policy"
    )
    p_validate = sub.add_parser(
        "validate",
        help="replay planner decisions: predicted vs simulated, per app",
    )
    for p_sub in (p_apps, p_validate):
        p_sub.add_argument(
            "--policy", default="model",
            choices=("fixed", "model", "service", "contention", "traffic"),
            help="planning policy (default: model)",
        )
        p_sub.add_argument(
            "--apps", nargs="+", metavar="APP", default=None,
            help="subset of workloads (default: transpose fft2d lookup adi)",
        )
        p_sub.add_argument(
            "--shards", metavar="DIR",
            help="back the service policy with a prebuilt shard directory",
        )
        p_sub.add_argument(
            "--engine", default="fast", choices=("fast", "event"),
            help="decision-replay simulator: the vectorized lockstep fast "
            "path (default) or the coroutine event engine (spot-check)",
        )

    p_sim = sub.add_parser("simulate", help="run one verified simulated exchange")
    p_sim.add_argument("d", type=int, help="cube dimension")
    p_sim.add_argument("m", type=int, help="block size in bytes")
    p_sim.add_argument(
        "parts", type=int, nargs="*",
        help="partition parts (default: the optimizer's choice)",
    )

    p_check = sub.add_parser(
        "check",
        help="static verification: certify schedules and lint the source tree",
    )
    p_check.add_argument(
        "--schedules", action="store_true",
        help="statically certify every (d, partition) schedule, pattern "
        "program, and planner-emitted collective",
    )
    p_check.add_argument(
        "--code", action="store_true",
        help="run the AST lint rules over the source tree",
    )
    p_check.add_argument(
        "--dims", type=int, nargs="+", metavar="D", default=None,
        help="cube dimensions to certify (default: 2..8)",
    )
    p_check.add_argument(
        "--root", default=None, metavar="DIR",
        help="source root for --code (default: the installed repro "
        "package's src/ tree)",
    )
    p_check.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable CheckReport document",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep failure rate x straggler severity x policy on "
        "seeded degraded machines",
    )
    p_chaos.add_argument("--d", type=int, default=3, help="cube dimension (default: 3)")
    p_chaos.add_argument(
        "--m", type=int, default=8, help="block size in bytes (default: 8)"
    )
    p_chaos.add_argument(
        "--steps", type=int, default=6,
        help="exchanges per cell workload (default: 6)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed; identical seeds reproduce the sweep exactly",
    )
    p_chaos.add_argument(
        "--failure-rates", type=float, nargs="+", metavar="RATE",
        default=(0.0, 0.25), help="per-wire outage probabilities (default: 0 0.25)",
    )
    p_chaos.add_argument(
        "--stragglers", type=float, nargs="+", metavar="SCALE",
        default=(1.0, 8.0),
        help="straggler compute-slowdown severities; 1.0 = none "
        "(default: 1 8)",
    )
    p_chaos.add_argument(
        "--policies", nargs="+", metavar="POLICY",
        default=("fixed", "adaptive"), choices=("fixed", "adaptive", "model"),
        help="planning policies to race (default: fixed adaptive)",
    )
    p_chaos.add_argument(
        "--threshold", type=float, default=0.25,
        help="adaptive policy's re-plan drift threshold (default: 0.25)",
    )
    p_chaos.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )

    sub.add_parser("demo", help="one-minute guided tour")
    return parser


def cmd_report(args) -> int:
    report = full_report(include_simulation=args.simulate, params=_params(args.machine))
    print(report.render())
    return 0 if report.all_agree else 1


def cmd_figure(args) -> int:
    data = figure_data(args.number, params=_params(args.machine), simulate=False)
    print(render_figure(data))
    hull = " -> ".join(_fmt(h) for h in data.hull_partitions)
    print(f"\nhull of optimality: {hull}")
    print(f"switch points: {[round(b, 1) for b in data.hull_boundaries]} bytes")
    return 0


def cmd_hull(args) -> int:
    params = _params(args.machine)
    if args.load:
        from repro.model.store import load_table

        table, params = load_table(args.load, expected_params=params)
    else:
        table = hull_of_optimality(args.d, params, m_max=args.m_max)
    if args.save:
        from repro.model.store import save_table

        save_table(table, params, args.save)
        print(f"stored optimizer table in {args.save}")
    if table.d != args.d:
        raise SystemExit(
            f"stored table is for d={table.d}, not the requested d={args.d}"
        )
    # walk the raw segments (not the deduplicated hull) so stored
    # tables with adjacent equal segments keep correct boundaries; the
    # final segment is open-ended (hi None) until rendered per mode
    ranges: list[dict] = []
    lo = 0.0
    for idx, segment in enumerate(table.segments):
        hi = table.boundaries[idx] if idx < len(table.boundaries) else None
        if ranges and ranges[-1]["partition"] == list(segment):
            ranges[-1]["hi"] = hi
        else:
            ranges.append({"partition": list(segment), "lo": lo, "hi": hi})
        if hi is not None:
            lo = hi
    if args.json:
        # stored documents do not record the sweep bound, so a loaded
        # table's coverage beyond its last switch point is unknown —
        # emit null rather than fabricating a validity range
        m_max = None if args.load else args.m_max
        for entry in ranges:
            if entry["hi"] is None:
                entry["hi"] = m_max
        print(json.dumps({
            "d": args.d,
            "machine": params.name,
            "m_max": m_max,
            "boundaries": list(table.boundaries),
            "segments": [list(segment) for segment in table.segments],
            "hull": [list(segment) for segment in table.hull_partitions],
            "ranges": ranges,
        }))
        return 0
    if args.load:
        # stored documents do not record the sweep bound they were
        # built with — show the exact switch points and leave the last
        # segment open-ended rather than fabricate a validity cap (the
        # JSON path emits null for the same reason)
        print(f"hull of optimality, d={args.d}, {params.name}, stored table:")
    else:
        print(f"hull of optimality, d={args.d}, {params.name}, 0-{args.m_max:.0f} B:")
    for entry in ranges:
        if entry["hi"] is None and args.load:
            print(f"  {_fmt(entry['partition']):14s} {entry['lo']:7.1f} .. {'?':>7s} bytes")
            continue
        hi = entry["hi"] if entry["hi"] is not None else args.m_max
        print(f"  {_fmt(entry['partition']):14s} {entry['lo']:7.1f} .. {hi:7.1f} bytes")
    return 0


def cmd_simulate(args) -> int:
    params = _params(args.machine)
    partition = tuple(args.parts) if args.parts else best_partition(
        float(args.m), args.d, params
    ).partition
    result = simulate_exchange(args.d, args.m, partition, params)
    predicted = multiphase_time(args.m, args.d, partition, params)
    print(f"complete exchange, d={args.d} ({1 << args.d} nodes), m={args.m} B, "
          f"partition {_fmt(partition)} on {params.name}")
    print(f"  simulated: {result.time_us:12.1f} us   (byte-verified)")
    print(f"  predicted: {predicted:12.1f} us   (eq. 3)")
    print(f"  transmissions per node: {sum((1 << di) - 1 for di in partition)}")
    print(f"  queueing wait: {result.trace.total_contention_wait:.1f} us")
    for cost in phase_breakdown(args.m, args.d, partition, params):
        print(
            f"  phase d_i={cost.phase_dim}: effective block {cost.effective_block:.0f} B, "
            f"{cost.total:.1f} us"
        )
    return 0


def cmd_sweep(args) -> int:
    from repro.analysis.sweep import partition_sweep, render_sweep

    params = _params(args.machine)
    cells = partition_sweep(tuple(args.dims), tuple(args.sizes), params, batch=args.batch)
    if args.json:
        print(json.dumps({
            "machine": params.name,
            "cells": [
                {
                    "d": cell.d,
                    "m": cell.m,
                    "partition": list(cell.partition),
                    "time_us": cell.time_us,
                    "gain_over_classics": cell.gain_over_classics,
                }
                for cell in cells
            ],
        }))
        return 0
    print(f"optimal partitions on {params.name}:")
    print(render_sweep(cells))
    return 0


def _registry(shards: str | None):
    if shards:
        try:
            return OptimizerRegistry.from_shards(shards)
        except ValueError as exc:
            raise SystemExit(str(exc))
    return OptimizerRegistry()


def cmd_shards(args) -> int:
    dims = tuple(args.dims) if args.dims else DEFAULT_DIMS
    names = sorted(PRESETS) if args.all_machines else [args.machine]
    registry = OptimizerRegistry()
    written = registry.save_shards(args.dir, presets=names, dims=dims)
    for path in written:
        print(f"wrote {path} (dims {', '.join(map(str, dims))})")
    return 0


def _serving_registry(args):
    """The registry plus effective default preset behind every serving
    entry point (``serve`` and ``cluster join``), warm-up included."""
    registry = _registry(args.shards)
    default_preset: str | None = args.machine
    if args.machine not in registry.preset_names:
        # a shard directory need not include the CLI's default preset;
        # serve anyway and require every request to name its own
        default_preset = None
        print(
            f"note: preset {args.machine!r} is not served by this registry "
            f"(have {list(registry.preset_names)}); requests must name a preset",
            file=sys.stderr,
        )
    if args.warm:
        from repro.service.warmup import warm_registry

        try:
            report = warm_registry(registry, args.warm, default_preset=default_preset)
        except OSError as exc:
            raise SystemExit(f"cannot read warm-up log: {exc}")
        print(f"warm-up: {report.describe()}", file=sys.stderr)
    return registry, default_preset


def cmd_serve(args) -> int:
    socket_only = (
        ("--max-batch", args.max_batch),
        ("--hold-us", args.hold_us),
        ("--auth-token", args.auth_token),
        ("--shed-queries", args.shed_queries),
        ("--shed-bytes", args.shed_bytes),
    )
    misused = [flag for flag, value in socket_only if value is not None]
    if args.socket is None and misused:
        raise SystemExit(f"{'/'.join(misused)} only apply to --socket serving")
    registry, default_preset = _serving_registry(args)
    # the summary reports *served* traffic: whatever warm-up resolved
    # into the memo is a baseline, not a query some client asked
    base = registry.stats.as_dict()
    if args.socket:
        from repro.service.async_server import run_server
        from repro.service.client import parse_address
        from repro.service.config import ServerConfig

        try:
            address = parse_address(args.socket)
            config = ServerConfig.from_flags(args, default_preset=default_preset)
        except ValueError as exc:
            # bad --max-batch / --hold-us / --shed-* values surface here
            raise SystemExit(str(exc))

        def announce(server) -> None:
            print(
                f"serving optimizer queries on {server.address}",
                file=sys.stderr, flush=True,
            )

        try:
            server_stats = run_server(registry, address, config=config, ready=announce)
        except OSError as exc:
            raise SystemExit(f"cannot serve on {address}: {exc}")
        stats = registry.stats
        served = stats.queries - base["queries"]
        hits = stats.memo_hits - base["memo_hits"]
        print(
            f"served {served} queries over "
            f"{server_stats.connections_opened} connections: "
            f"{hits} memo hits ({hits / served if served else 0.0:.1%}), "
            f"{server_stats.batches} batches "
            f"(mean occupancy {server_stats.mean_batch_queries:.1f}, "
            f"peak {server_stats.peak_batch_queries}), "
            f"{stats.grid_calls - base['grid_calls']} grid calls, "
            f"{server_stats.binary_connections} binary connections, "
            f"{server_stats.shed} shed, "
            f"p99 {server_stats.p99_us:.0f} us",
            file=sys.stderr,
        )
        return 0
    stats = serve(registry, sys.stdin, sys.stdout, default_preset=default_preset)
    served = stats.queries - base["queries"]
    hits = stats.memo_hits - base["memo_hits"]
    print(
        f"served {served} queries: {hits} memo hits "
        f"({hits / served if served else 0.0:.1%}), "
        f"{stats.grid_calls - base['grid_calls']} grid calls, "
        f"{stats.tables_loaded - base['tables_loaded']} tables loaded, "
        f"{stats.tables_built - base['tables_built']} built",
        file=sys.stderr,
    )
    return 0


def cmd_cluster(args) -> int:
    handler = {
        "coordinator": _cmd_cluster_coordinator,
        "join": _cmd_cluster_join,
        "status": _cmd_cluster_status,
        "drain": _cmd_cluster_drain,
    }[args.cluster_command]
    return handler(args)


def _cmd_cluster_coordinator(args) -> int:
    from repro.fabric.coordinator import run_coordinator

    def announce(coordinator) -> None:
        print(
            f"cluster coordinator serving on {coordinator.address} "
            f"(replication {args.replication}, heartbeat {args.heartbeat_s:g}s "
            f"x{args.miss_limit})",
            file=sys.stderr, flush=True,
        )

    try:
        status = run_coordinator(
            args.address,
            replication=args.replication,
            heartbeat_s=args.heartbeat_s,
            miss_limit=args.miss_limit,
            ready=announce,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot serve coordinator on {args.address}: {exc}")
    nodes = status["nodes"]
    alive = sum(1 for node in nodes if node["state"] == "alive")
    print(
        f"coordinator stopped at epoch {status['epoch']}: "
        f"{len(nodes)} nodes seen, {alive} alive",
        file=sys.stderr,
    )
    return 0


def _cmd_cluster_join(args) -> int:
    from repro.fabric.node import run_node
    from repro.service.config import ServerConfig

    registry, default_preset = _serving_registry(args)

    def announce(node) -> None:
        print(
            f"cluster node {node.node_id} serving optimizer queries on "
            f"{node.address} (coordinator {args.coordinator})",
            file=sys.stderr, flush=True,
        )

    try:
        config = ServerConfig.from_flags(args, default_preset=default_preset)
    except ValueError as exc:
        raise SystemExit(str(exc))
    try:
        stats = run_node(
            registry,
            args.coordinator,
            args.listen,
            config=config,
            node_id=args.node_id,
            advertise=args.advertise,
            ready=announce,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot serve cluster node on {args.listen}: {exc}")
    print(
        f"node stopped: served {stats.responses} responses over "
        f"{stats.connections_opened} connections, {stats.shed} shed, "
        f"p99 {stats.p99_us:.0f} us",
        file=sys.stderr,
    )
    return 0


def _cmd_cluster_status(args) -> int:
    from repro.fabric.cluster import fetch_status

    try:
        status = fetch_status(args.coordinator)
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach cluster coordinator at {args.coordinator}: {exc} "
            f"(is it running? start one with "
            f"'repro cluster coordinator {args.coordinator}')"
        )
    if args.json:
        print(json.dumps(status))
        return 0
    nodes = status["nodes"]
    alive = sum(1 for node in nodes if node["state"] == "alive")
    print(
        f"cluster at {args.coordinator}: epoch {status['epoch']}, "
        f"replication {status['replication']}, heartbeat "
        f"{status['heartbeat_s']:g}s x{status['miss_limit']}, "
        f"{alive}/{len(nodes)} nodes alive"
    )
    for node in nodes:
        stats = node.get("stats", {})
        print(
            f"  {node['node']:24s} {node['address']:22s} {node['state']:8s} "
            f"age {node['age_s']:6.1f}s  shed {stats.get('shed', 0):>4}  "
            f"p99 {stats.get('p99_us', 0.0):8.0f} us  "
            f"{stats.get('connections_active', 0)} conns"
        )
    return 0


def _cmd_cluster_drain(args) -> int:
    from repro.fabric.cluster import RouteError, request_drain

    try:
        answer = request_drain(args.coordinator, args.node)
    except RouteError as exc:
        raise SystemExit(f"drain refused: {exc}")
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach cluster coordinator at {args.coordinator}: {exc}"
        )
    print(
        f"node {answer['node']} is {answer['state']} "
        f"(epoch {answer['epoch']}); it leaves the routing table now and "
        f"shuts down on its next heartbeat"
    )
    return 0


def cmd_query(args) -> int:
    if args.connect:
        return _cmd_query_connect(args)
    if args.wire != "json":
        raise SystemExit("--wire only applies to --connect queries")
    if args.auth_token is not None:
        raise SystemExit("--auth-token only applies to --connect queries")
    registry = _registry(args.shards)
    try:
        result = registry.resolve([(args.machine, args.d, args.m)])[0]
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps({
            "preset": result.preset,
            "d": result.d,
            "m": result.m,
            "partition": list(result.partition),
            "time_us": result.time_us,
            "source": result.source,
        }))
        return 0
    params = registry.params(args.machine)
    print(
        f"optimal partition for d={args.d}, m={args.m:g} B on {params.name}: "
        f"{_fmt(result.partition)}"
    )
    print(f"  predicted time: {result.time_us:.1f} us")
    # a shard directory may lack the requested dimension or the block
    # size may exceed its sweep bound — report what actually happened
    if result.source == "pool":
        served = "exact full-pool scoring (block size beyond the table's sweep bound)"
    elif args.shards and registry.has_shard(args.machine, args.d):
        served = "prebuilt shard directory"
    elif args.shards:
        served = "in-process sweep (dimension not in the shard directory)"
    else:
        served = "in-process table"
    print(f"  served from: {served} ({result.source})")
    return 0


def _cmd_query_connect(args) -> int:
    """Answer ``repro query --connect`` from a running socket server
    (or, with a ``cluster:`` target, from a whole cluster)."""
    from repro.fabric.cluster import RouteError
    from repro.service import ServiceError, connect

    if args.shards:
        raise SystemExit("--connect and --shards are mutually exclusive")
    try:
        with connect(
            args.connect, wire=args.wire, auth_token=args.auth_token
        ) as client:
            response = client.query(args.d, args.m, preset=args.machine)
    except ValueError as exc:
        raise SystemExit(str(exc))
    except ServiceError as exc:
        raise SystemExit(f"server error: {exc}")
    except RouteError as exc:
        raise SystemExit(f"cluster at {args.connect} could not answer: {exc}")
    except (ConnectionError, OSError) as exc:
        if args.connect.startswith("cluster:"):
            hint = (
                "is the coordinator running? start one with "
                f"'repro cluster coordinator {args.connect.removeprefix('cluster:')}'"
            )
        else:
            hint = (
                "is the server running? start one with "
                f"'repro serve --socket {args.connect}'"
            )
        raise SystemExit(
            f"cannot reach optimizer server at {args.connect}: {exc} ({hint})"
        )
    if args.json:
        print(json.dumps({
            key: response[key]
            for key in ("preset", "d", "m", "partition", "time_us", "source")
        }))
        return 0
    print(
        f"optimal partition for d={args.d}, m={args.m:g} B on "
        f"{response['preset']}: {_fmt(response['partition'])}"
    )
    print(f"  predicted time: {response['time_us']:.1f} us")
    print(f"  served from: optimizer server at {args.connect} ({response['source']})")
    return 0


def _policy(args):
    """Build the requested planning policy (shared by plan/apps)."""
    from repro.plan import make_policy

    params = _params(args.machine)
    registry = None
    if getattr(args, "shards", None):
        # only the service policy answers from a registry; accepting
        # --shards elsewhere would pay the load and silently ignore it
        if args.policy != "service":
            raise SystemExit(
                f"--shards only applies to --policy service "
                f"(got --policy {args.policy})"
            )
        registry = _registry(args.shards)
    try:
        return make_policy(
            args.policy, params, preset=args.machine, registry=registry
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_plan(args) -> int:
    from repro.model.cost import multiphase_time
    from repro.plan import CollectivePlanner, plan_pattern

    params = _params(args.machine)
    planner = CollectivePlanner(_policy(args))
    if args.pattern != "exchange":
        decision = plan_pattern(args.pattern, args.m, args.d, params, planner=planner)
        if args.json:
            print(json.dumps({
                "pattern": decision.pattern,
                "d": decision.d,
                "m": decision.m,
                "machine": params.name,
                "policy": planner.policy_name,
                "algorithm": decision.algorithm,
                "partition": list(decision.partition) if decision.partition else None,
                "predicted_us": decision.predicted_us,
                "candidates": [
                    {"algorithm": name, "predicted_us": t}
                    for name, t in decision.candidates
                ],
            }))
            return 0
        print(f"plan for {args.pattern}, d={args.d}, m={args.m:g} B on "
              f"{params.name} (policy: {planner.policy_name})")
        print(f"  chosen: {decision.algorithm}   predicted {decision.predicted_us:.1f} us")
        print("  candidates:")
        for name, t in decision.candidates:
            marker = "  <-- chosen" if name == decision.algorithm else ""
            print(f"    {name:10s} {t:12.1f} us{marker}")
        return 0

    decision = planner.decide(args.d, args.m)
    # the fixed alternatives the paper compares against, always scored
    candidates: list[tuple[str, tuple[int, ...] | None, float | None]] = [
        ("standard", (1,) * args.d,
         multiphase_time(args.m, args.d, (1,) * args.d, params)),
        ("single-phase", (args.d,),
         multiphase_time(args.m, args.d, (args.d,), params)),
    ]
    if decision.algorithm == "multiphase":
        candidates.append(("multiphase", decision.partition, decision.predicted_us))
    # the contention policy prices the naive baseline from the fast
    # path's reservation replay; other policies leave it unpriced
    naive_us = decision.naive_us
    if naive_us is None and decision.algorithm == "naive":
        naive_us = decision.predicted_us
    candidates.append(("naive", None, naive_us))
    if args.json:
        print(json.dumps({
            "pattern": "exchange",
            "d": args.d,
            "m": args.m,
            "machine": params.name,
            "policy": planner.policy_name,
            "algorithm": decision.algorithm,
            "partition": list(decision.partition) if decision.partition else None,
            "predicted_us": decision.predicted_us,
            "source": decision.source,
            "candidates": [
                {
                    "algorithm": name,
                    "partition": list(part) if part is not None else None,
                    "predicted_us": t,
                }
                for name, part, t in candidates
            ],
        }))
        return 0
    print(f"plan for complete exchange, d={args.d}, m={args.m:g} B on "
          f"{params.name} (policy: {planner.policy_name})")
    print(f"  chosen: {decision.describe()}   [{decision.source}]")
    print("  candidates:")
    for name, part, t in candidates:
        label = _fmt(part) if part is not None else "rotation"
        time_str = f"{t:12.1f} us" if t is not None else "  (no analytic model)"
        marker = "  <-- chosen" if name == decision.algorithm else ""
        print(f"    {name:12s} {label:16s}{time_str}{marker}")
    return 0


def cmd_apps(args) -> int:
    from repro.analysis.validation import validate_policy

    params = _params(args.machine)
    policy = _policy(args)
    try:
        report = validate_policy(
            policy, params=params, apps=args.apps, engine=args.engine
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    return 0


def cmd_chaos(args) -> int:
    from repro.analysis.chaos import chaos_sweep

    params = _params(args.machine)
    try:
        report = chaos_sweep(
            args.d,
            args.m,
            n_steps=args.steps,
            seed=args.seed,
            failure_rates=tuple(args.failure_rates),
            straggler_scales=tuple(args.stragglers),
            policies=tuple(args.policies),
            threshold=args.threshold,
            params=params,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report.as_dict()))
    else:
        print(report.render())
    return 0


def cmd_demo(args) -> int:
    params = _params(args.machine)
    d, m = 7, 40
    print("Bokhari (1991): multiphase complete exchange — demo")
    print("=" * 56)
    choice = best_partition(float(m), d, params)
    print(f"best partition for d={d}, m={m} B: {_fmt(choice.partition)}")
    for partition in [(1,) * d, (d,), choice.partition]:
        t = multiphase_time(m, d, partition, params) * 1e-6
        print(f"  {_fmt(partition):16s} predicted {t:.4f} s")
    result = simulate_exchange(5, m, (3, 2), params)
    print(f"simulated d=5 multiphase {{2,3}}: {result.time_s:.4f} s, "
          f"byte-verified, zero contention")
    return 0


def cmd_check(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.check import CheckReport, check_schedules, run_rules
    from repro.check.schedule import CHECK_DIMS

    run_schedules = args.schedules or not (args.schedules or args.code)
    run_code = args.code or not (args.schedules or args.code)
    report = CheckReport()
    if run_schedules:
        dims = tuple(args.dims) if args.dims else CHECK_DIMS
        report.extend(check_schedules(dims))
    if run_code:
        if args.root is not None:
            root = Path(args.root)
        else:
            import repro

            root = Path(repro.__file__).resolve().parent.parent
        report.extend(run_rules(root=root))
    if args.as_json:
        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "report": cmd_report,
        "figure": cmd_figure,
        "hull": cmd_hull,
        "simulate": cmd_simulate,
        "sweep": cmd_sweep,
        "shards": cmd_shards,
        "serve": cmd_serve,
        "cluster": cmd_cluster,
        "query": cmd_query,
        "plan": cmd_plan,
        "apps": cmd_apps,
        "validate": cmd_apps,
        "chaos": cmd_chaos,
        "check": cmd_check,
        "demo": cmd_demo,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
