#!/usr/bin/env python
"""Walk through the paper's Figure 3 block-by-block.

Shows the complete data movement of a multiphase exchange on a d=3
cube with partition {2,1}: the initial tableau, the partial exchange
on bits 2-1 (superblocks of 2), the 2-shuffle, the partial exchange on
bit 0 (superblocks of 4), and the final 1-shuffle — printing each
node's (origin:dest) column exactly as the figure draws them.

Usage::

    python examples/figure3_walkthrough.py
"""

from __future__ import annotations

from repro.core.exchange import ExchangeOutcome, _apply_exchange
from repro.core.schedule import ExchangeStep, PhaseStart, ShuffleStep, multiphase_schedule
from repro.core.shuffle import LayoutBuffer

D, PARTITION = 3, (2, 1)


def tableau(buffers) -> str:
    n = len(buffers)
    header = "  ".join(f"n{node}  " for node in range(n))
    lines = [header]
    for row in range(n):
        cells = [
            f"{int(buf.origins[row])}:{int(buf.dests[row])} "
            for buf in buffers
        ]
        lines.append("  ".join(cells))
    return "\n".join("    " + line for line in lines)


def main() -> None:
    buffers = [LayoutBuffer(node, D, 1) for node in range(1 << D)]
    outcome = ExchangeOutcome(buffers=buffers)

    print("Figure 3: multiphase exchange, d=3, partition {2,1}")
    print("columns are nodes; each cell is origin:dest of the block held there")
    print()
    print("initial state (block index == destination):")
    print(tableau(buffers))

    for step in multiphase_schedule(D, PARTITION):
        if isinstance(step, PhaseStart):
            print(
                f"\n=> partial exchange, bits {step.group.hi}..{step.group.lo} "
                f"(superblocks of {1 << (D - step.group.width)} block(s), "
                f"{step.n_exchanges} pairwise exchanges)"
            )
        elif isinstance(step, ExchangeStep):
            _apply_exchange(step, buffers, 1 << D, "layout", outcome)
        elif isinstance(step, ShuffleStep):
            print("after the partial exchange:")
            print(tableau(buffers))
            for buf in buffers:
                buf.shuffle(step.times)
            print(f"\n=> {step.times}-shuffle (rotate block-index bits left {step.times})")
            print(tableau(buffers))

    for buf in buffers:
        buf.verify_final()
    print("\nfinal state verified: every node holds blocks sorted by origin,")
    print("every payload byte intact — exactly the figure's last tableau.")


if __name__ == "__main__":
    main()
