#!/usr/bin/env python
"""ADI solver scenario: transpose-dominated PDE stepping (paper §3).

The Alternating Directions Implicit method solves the 2-D heat
equation with tridiagonal sweeps along rows, then columns.  Row sweeps
are local under a row-strip decomposition; the column sweeps are made
local by *transposing the grid* — two complete exchanges per time
step.  This example steps a hot-spot diffusion problem distributed
over 16 nodes, verifies against the sequential reference, and shows
what the exchange costs on the calibrated iPSC-860 for a range of grid
sizes — including the small strong-scaled grids where the multiphase
algorithm earns its keep.

Usage::

    python examples/adi_transpose.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.adi import ADIProblem, adi_reference_step, run_adi
from repro.apps.transpose import transpose_block_size
from repro.model.cost import multiphase_time
from repro.model.params import ipsc860
from repro.plan import CollectivePlanner, ModelPolicy


def main() -> None:
    n_nodes, d = 16, 4
    size = 32
    problem = ADIProblem(size=size, dt=2e-4)

    # hot spot in the middle of the plate
    u0 = np.zeros((size, size))
    u0[size // 2 - 2 : size // 2 + 2, size // 2 - 2 : size // 2 + 2] = 100.0

    print(f"ADI heat equation, {size}x{size} grid on {n_nodes} nodes")
    print("=" * 60)

    u = u0.copy()
    u_ref = u0.copy()
    for step in range(1, 6):
        u = run_adi(u, problem, n_nodes, steps=1, partition=(2, 2))
        u_ref = adi_reference_step(u_ref, problem)
        peak = float(u.max())
        energy = float(np.sum(u ** 2))
        assert np.allclose(u, u_ref, atol=1e-12), "distributed ADI diverged from reference"
        print(f"step {step}: peak {peak:8.3f}   energy {energy:12.2f}   (matches reference)")

    # what the two transposes per step cost on the iPSC-860 model,
    # asked through the collective planner (model policy = §6 optimizer)
    params = ipsc860()
    planner = CollectivePlanner(ModelPolicy(params))
    print("\nper-step exchange cost on the calibrated iPSC-860 (2 transposes):")
    print("grid     block(B)   best partition   t_multiphase   t_singlephase")
    for grid in (16, 32, 64, 128):
        m = transpose_block_size(grid, n_nodes, dtype=np.float64)
        decision = planner.decide(d, float(m))
        label = "{" + ",".join(map(str, sorted(decision.partition))) + "}"
        t_best = 2 * decision.predicted_us * 1e-6
        t_single = 2 * multiphase_time(float(m), d, (d,), params) * 1e-6
        print(
            f"{grid:4d}^2   {m:7d}   {label:14s}   {t_best:10.4f} s   {t_single:11.4f} s"
        )
    print("\nsmall grids (strong scaling) sit in the multiphase win region;")
    print("large grids amortize startups and the single phase takes over.")


if __name__ == "__main__":
    main()
