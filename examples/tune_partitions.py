#!/usr/bin/env python
"""Partition tuning: reproduce the paper's hull-of-optimality analysis.

Enumerates all p(d) multiphase algorithms for a chosen cube dimension
(the paper's §6 procedure), sweeps block sizes 0-400 B, prints the
hull with its switch points next to the paper's, and renders the
figure as ASCII art.

Usage::

    python examples/tune_partitions.py [d]    # d in 5..7, default 7
"""

from __future__ import annotations

import sys

from repro.analysis.figures import figure_data, render_figure
from repro.analysis.hull import PAPER_HULLS, PAPER_LAST_BOUNDARY, hull_agreement
from repro.core.partitions import partition_count
from repro.model.params import ipsc860
from repro.plan import CollectivePlanner, ModelPolicy


def fmt(partition) -> str:
    return "{" + ",".join(map(str, sorted(partition))) + "}"


def main() -> None:
    d = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    if d not in PAPER_HULLS:
        raise SystemExit(f"the paper evaluates d in {sorted(PAPER_HULLS)}; got {d}")
    params = ipsc860()

    print(f"partition tuning for a {1 << d}-node (d={d}) iPSC-860")
    print(f"candidate algorithms: p({d}) = {partition_count(d)} partitions")
    print("=" * 64)

    agreement = hull_agreement(d, params)
    table = agreement.table
    print("hull of optimality (model sweep 0-400 B):")
    lo = 0.0
    for idx, segment in enumerate(table.hull_partitions):
        hi = (
            table.boundaries[idx]
            if idx < len(table.boundaries)
            else 400.0
        )
        print(f"  {fmt(segment):12s} optimal for {lo:6.1f} .. {hi:6.1f} bytes")
        lo = hi
    paper = " -> ".join(fmt(h) for h in agreement.paper_hull)
    print(f"paper's hull: {paper} "
          f"(switch to single phase ~{PAPER_LAST_BOUNDARY[d]:.0f} B; "
          f"reproduced {agreement.reproduced_last_boundary:.1f} B)")

    # spot ranking at the paper's headline block size, via the planner
    # API (the model policy carries the optimizer's full ranking)
    m = 40.0
    planner = CollectivePlanner(ModelPolicy(params))
    decision = planner.decide(d, m)
    print(f"\nfull ranking at m={m:.0f} B:")
    for partition, time in decision.ranking[:6]:
        marker = "  <-- winner" if partition == decision.partition else ""
        print(f"  {fmt(partition):12s} {time * 1e-6:8.4f} s{marker}")
    if len(decision.ranking) > 6:
        print(f"  ... {len(decision.ranking) - 6} more")

    figure_number = {5: 4, 6: 5, 7: 6}[d]
    data = figure_data(figure_number, params=params, simulate=False)
    print()
    print(render_figure(data))


if __name__ == "__main__":
    main()
