#!/usr/bin/env python
"""Beyond the complete exchange: the paper's §9 outlook, implemented.

Three things the paper leaves as future work, run live:

1. the simpler collectives (broadcast, scatter, allgather) measured on
   the simulated iPSC-860 against the complete-exchange upper bound of
   §3;
2. the multiphase machinery routing an *arbitrary* traffic matrix (the
   §9 open problem), with the §6 optimizer generalized to pick a
   partition per requirement graph;
3. alternative within-phase schedule orderings (§4.2 / ICASE 91-4),
   shown byte-identical and lockstep-time-invariant.

Usage::

    python examples/beyond_the_exchange.py
"""

from __future__ import annotations

import numpy as np

from repro.comm.program import simulate_exchange
from repro.core.traffic import best_partition_for_traffic, uniform_traffic
from repro.core.variants import ORDERINGS, multiphase_schedule_ordered
from repro.model.optimizer import best_partition
from repro.model.params import ipsc860
from repro.patterns import simulate_allgather, simulate_broadcast, simulate_scatter


def fmt(partition) -> str:
    return "{" + ",".join(map(str, sorted(partition))) + "}"


def main() -> None:
    params = ipsc860()
    d, m = 5, 40

    # -- 1. simpler patterns vs the upper bound -------------------------
    print(f"collectives on a {1 << d}-node simulated iPSC-860, {m}-byte blocks")
    print("=" * 64)
    choice = best_partition(m, d, params)
    bound = simulate_exchange(d, m, choice.partition, params).time_us
    rows = [
        ("one-to-all broadcast", simulate_broadcast(d, m, params)[0]),
        ("one-to-all personalized", simulate_scatter(d, m, params)[0]),
        ("all-to-all broadcast", simulate_allgather(d, m, params)[0]),
        (f"complete exchange {fmt(choice.partition)}", bound),
    ]
    for name, t in rows:
        print(f"  {name:32s} {t * 1e-6:.5f} s   ({t / bound * 100:5.1f}% of the bound)")
    print("  (§3: the complete exchange upper-bounds every pattern — verified)")

    # -- 2. arbitrary traffic (§9 open problem) -------------------------
    print("\npartition choice per requirement graph (d=5, 40 B per pair):")
    n = 1 << d
    neighbour = np.zeros((n, n)); neighbour[np.arange(n), np.arange(n) ^ 1] = m
    hotspot = np.zeros((n, n)); hotspot[1:, 0] = m
    for name, traffic in [
        ("uniform (complete exchange)", uniform_traffic(d, m)),
        ("nearest-neighbour pairs", neighbour),
        ("hot-spot gather to node 0", hotspot),
    ]:
        partition, t = best_partition_for_traffic(traffic, params)
        print(f"  {name:30s} -> {fmt(partition):10s} {t * 1e-6:.5f} s")

    # -- 3. schedule-order variants --------------------------------------
    print("\nwithin-phase offset orderings (d=4, partition {2,2}):")
    from repro.comm.program import exchange_program
    from repro.sim.machine import SimulatedHypercube

    for ordering in ORDERINGS:
        steps = multiphase_schedule_ordered(4, (2, 2), ordering)
        machine = SimulatedHypercube(4, params)
        run = machine.run(exchange_program, steps=steps, m=16, engine="tags")
        for buf in run.node_results:
            buf.verify_complete_exchange_result()
        print(f"  {ordering:14s} {run.time * 1e-6:.5f} s  (byte-verified)")
    print("  orderings shape the temporal profile, not the lockstep total.")


if __name__ == "__main__":
    main()
