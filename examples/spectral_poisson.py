#!/usr/bin/env python
"""Pseudospectral Poisson solve with the distributed 2-D FFT (paper §3).

Solves ``-∇²u = f`` on the periodic unit square by transforming the
right-hand side with the transpose-based distributed FFT, dividing by
the Laplacian symbol, and transforming back.  The complete exchange
(two per FFT) is all of the solver's communication — the
pseudospectral pattern of the paper's reference [11].

Usage::

    python examples/spectral_poisson.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.fft2d import distributed_fft2, distributed_ifft2
from repro.apps.transpose import transpose_block_size
from repro.model.optimizer import best_partition
from repro.model.params import ipsc860


def main() -> None:
    n_nodes = 8
    size = 64

    # manufactured solution: u = sin(2πx) cos(6πy)
    x = np.arange(size) / size
    xx, yy = np.meshgrid(x, x, indexing="ij")
    u_exact = np.sin(2 * np.pi * xx) * np.cos(6 * np.pi * yy)
    f = (4 * np.pi ** 2 + 36 * np.pi ** 2) * u_exact  # -lap(u)

    print(f"spectral Poisson solve, {size}x{size} periodic grid, {n_nodes} nodes")
    print("=" * 60)

    # forward transform of the source, via two complete exchanges
    partition = (2, 1)
    f_hat = distributed_fft2(f, n_nodes, partition=partition)

    # divide by the Laplacian symbol (zero mean mode)
    k = np.fft.fftfreq(size, d=1.0 / size) * 2 * np.pi
    kx, ky = np.meshgrid(k, k, indexing="ij")
    symbol = kx ** 2 + ky ** 2
    symbol[0, 0] = 1.0
    u_hat = f_hat / symbol
    u_hat[0, 0] = 0.0

    u = distributed_ifft2(u_hat, n_nodes, partition=partition).real

    err = np.max(np.abs(u - u_exact))
    print(f"max error vs manufactured solution: {err:.2e}")
    assert err < 1e-10, "spectral solve lost accuracy"

    # communication profile of one solve (4 transposes: 2 per FFT)
    params = ipsc860()
    d = 3
    m = transpose_block_size(size, n_nodes, dtype=np.complex128)
    choice = best_partition(float(m), d, params)
    label = "{" + ",".join(map(str, sorted(choice.partition))) + "}"
    print(f"\nexchange block size at this geometry: {m} bytes")
    print(f"optimizer's partition for d={d}: {label} "
          f"({choice.time * 1e-6:.4f} s per exchange, 4 exchanges per solve)")
    print("verified: distributed spectra match numpy.fft exactly.")


if __name__ == "__main__":
    main()
