#!/usr/bin/env python
"""Quickstart: the multiphase complete exchange in five minutes.

Runs a byte-verified complete exchange three ways (Standard Exchange,
Optimal Circuit-Switched, multiphase), asks the optimizer which
partition a 128-node iPSC-860 should use for 40-byte blocks, and times
the winner on the simulated machine.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    d, m = 5, 40  # 32 nodes, 40-byte blocks (10 float32s per pair)
    n = 1 << d

    print(f"complete exchange on a {n}-node hypercube, {m}-byte blocks")
    print("=" * 60)

    # -- 1. run the three algorithms; every run is byte-verified -------
    for name, partition in [
        ("Standard Exchange   {1,1,1,1,1}", (1,) * d),
        ("Optimal CS          {5}", (d,)),
        ("Multiphase          {2,3}", (3, 2)),
    ]:
        outcome = repro.multiphase_exchange(d, m, partition)
        outcome.verify()
        print(
            f"{name}: {outcome.n_exchange_steps:3d} transmissions, "
            f"{outcome.bytes_sent_per_node:6d} B sent per node -- verified"
        )

    # -- 2. exchange real data (the defining transpose identity) -------
    rng = np.random.default_rng(0)
    send = [rng.integers(0, 256, size=(n, m), dtype=np.uint8) for _ in range(n)]
    recv = repro.run_exchange_on_rows(send, (3, 2))
    assert all(np.array_equal(recv[x][j], send[j][x]) for x in range(n) for j in range(n))
    print("\nuser-data exchange: recv[x][j] == send[j][x] for all pairs -- ok")

    # -- 3. ask the optimizer, then measure on the simulated iPSC-860 --
    params = repro.ipsc860()
    choice = repro.best_partition(m, 7, params)
    label = "{" + ",".join(map(str, sorted(choice.partition))) + "}"
    print(f"\noptimizer, d=7 at {m} B: best partition {label} "
          f"(predicted {choice.time * 1e-6:.4f} s)")

    for partition in [(1,) * 7, (7,), choice.partition]:
        result = repro.simulate_exchange(7, m, partition, params)
        plabel = "{" + ",".join(map(str, sorted(partition))) + "}"
        print(f"  simulated {plabel:15s}: {result.time_s:.4f} s "
              f"(queueing wait {result.trace.total_contention_wait:.0f} us)")

    print("\nthe multiphase partition more than halves the exchange time —")
    print("the paper's Figure 6 headline, regenerated on your machine.")


if __name__ == "__main__":
    main()
