"""Test package."""
