"""Membership/liveness tests against a fake clock.

:class:`~repro.fabric.membership.Membership` takes its clock by
injection, so every liveness transition — miss-K death, resurrection,
drain, clean leave — is tested here without sleeping.
"""

from __future__ import annotations

import pytest

from repro.fabric.membership import Membership, NodeInfo


class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def membership(clock):
    return Membership(replication=2, heartbeat_s=1.0, miss_limit=3, now=clock)


class TestLifecycle:
    def test_join_bumps_epoch_and_routes(self, membership):
        assert membership.epoch == 0
        membership.join("n0", "127.0.0.1:1", presets=["ipsc860"], default_preset="ipsc860")
        assert membership.epoch == 1
        table = membership.routing_table()
        assert table.epoch == 1
        assert table.nodes == (("n0", "127.0.0.1:1"),)
        assert table.default_preset == "ipsc860"

    def test_join_validates_identity(self, membership):
        with pytest.raises(ValueError):
            membership.join("", "127.0.0.1:1")
        with pytest.raises(ValueError):
            membership.join("n0", "")

    def test_routing_table_cached_per_epoch(self, membership):
        membership.join("n0", "127.0.0.1:1")
        assert membership.routing_table() is membership.routing_table()
        membership.join("n1", "127.0.0.1:2")
        assert membership.routing_table().epoch == 2

    def test_heartbeat_unknown_node_raises(self, membership):
        with pytest.raises(KeyError):
            membership.heartbeat("ghost")

    def test_sweep_declares_silent_nodes_dead(self, membership, clock):
        membership.join("n0", "127.0.0.1:1")
        membership.join("n1", "127.0.0.1:2")
        epoch = membership.epoch
        clock.advance(2.9)  # inside the 3 * 1.0 s window
        membership.heartbeat("n1")
        assert membership.sweep() == []
        clock.advance(0.2)  # n0 is now 3.1 s silent, n1 only 0.2 s
        assert membership.sweep() == ["n0"]
        assert membership.get("n0").state == "dead"
        assert membership.get("n1").state == "alive"
        assert membership.epoch == epoch + 1
        assert membership.routing_table().nodes == (("n1", "127.0.0.1:2"),)

    def test_heartbeat_resurrects_a_dead_node(self, membership, clock):
        membership.join("n0", "127.0.0.1:1")
        clock.advance(10.0)
        membership.sweep()
        assert membership.get("n0").state == "dead"
        epoch = membership.epoch
        membership.heartbeat("n0")
        assert membership.get("n0").state == "alive"
        assert membership.epoch == epoch + 1

    def test_drain_then_disconnect_is_a_clean_leave(self, membership):
        membership.join("n0", "127.0.0.1:1")
        membership.join("n1", "127.0.0.1:2")
        info = membership.drain("n0")
        assert info.state == "draining"
        # draining nodes are unroutable immediately
        assert membership.routing_table().nodes == (("n1", "127.0.0.1:2"),)
        epoch = membership.epoch
        membership.drain("n0")  # idempotent: no second bump
        assert membership.epoch == epoch
        membership.connection_lost("n0")
        assert membership.get("n0").state == "left"

    def test_disconnect_without_drain_is_death(self, membership):
        membership.join("n0", "127.0.0.1:1")
        membership.connection_lost("n0")
        assert membership.get("n0").state == "dead"

    def test_disconnect_of_unknown_or_settled_node_is_ignored(self, membership):
        membership.connection_lost("ghost")  # no crash, no epoch bump
        assert membership.epoch == 0
        membership.join("n0", "127.0.0.1:1")
        membership.connection_lost("n0")
        epoch = membership.epoch
        membership.connection_lost("n0")  # already dead
        assert membership.epoch == epoch

    def test_rejoin_after_death_is_routable_again(self, membership, clock):
        membership.join("n0", "127.0.0.1:1")
        membership.connection_lost("n0")
        membership.join("n0", "127.0.0.1:9", presets=["ipsc860"])
        info = membership.get("n0")
        assert info.state == "alive"
        assert info.address == "127.0.0.1:9"
        assert membership.routing_table().nodes == (("n0", "127.0.0.1:9"),)

    def test_draining_node_still_sweeps_to_dead(self, membership, clock):
        """A drained node that stops heartbeating without disconnecting
        is dead, not left: it never confirmed the clean exit."""
        membership.join("n0", "127.0.0.1:1")
        membership.drain("n0")
        clock.advance(10.0)
        assert membership.sweep() == ["n0"]
        assert membership.get("n0").state == "dead"


class TestStatus:
    def test_status_document(self, membership, clock):
        membership.join(
            "n0", "127.0.0.1:1", presets=["ipsc860"], shards=8,
            stats={"shed": 2},
        )
        clock.advance(0.5)
        doc = membership.status()
        assert doc["epoch"] == 1
        assert doc["replication"] == 2
        assert doc["heartbeat_s"] == 1.0
        assert doc["miss_limit"] == 3
        (node,) = doc["nodes"]
        assert node["node"] == "n0"
        assert node["state"] == "alive"
        assert node["age_s"] == pytest.approx(0.5)
        assert node["shards"] == 8
        assert node["stats"] == {"shed": 2}

    def test_node_info_age_never_negative(self):
        info = NodeInfo(node_id="n", address="a", last_seen=50.0)
        assert info.as_dict(now=40.0)["age_s"] == 0.0

    def test_validates_construction(self, clock):
        with pytest.raises(ValueError):
            Membership(replication=0, now=clock)
        with pytest.raises(ValueError):
            Membership(heartbeat_s=0.0, now=clock)
        with pytest.raises(ValueError):
            Membership(miss_limit=0, now=clock)
