"""Kill-a-node chaos test: SIGKILL a replica mid-load, lose nothing.

A real cluster — coordinator + three ``repro cluster join`` nodes as
subprocesses, replication 2 — takes pipelined load through the public
:func:`repro.service.connect` API while one node is SIGKILLed.  The
acceptance bar from the fabric design: **zero failed queries, zero
duplicated answers**, the coordinator marks the node dead within the
heartbeat window, and ``repro cluster status`` reflects it.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.fabric import RetryPolicy
from repro.service import connect

SRC = str(Path(__file__).resolve().parents[2] / "src")
HEARTBEAT_S = 0.2
MISS_LIMIT = 2


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _cli_status(coordinator: str) -> dict:
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "cluster", "status", coordinator, "--json"],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, timeout=10,
    )
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout)


def _wait_alive(coordinator: str, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status = _cli_status(coordinator)
        except (AssertionError, json.JSONDecodeError, subprocess.TimeoutExpired):
            status = {"nodes": []}
        alive = [n for n in status["nodes"] if n["state"] == "alive"]
        if len(alive) >= count:
            return
        time.sleep(0.2)
    raise AssertionError(f"cluster never reached {count} alive nodes")


@pytest.fixture()
def live_cluster():
    """Coordinator + 3 joined nodes (replication 2) as subprocesses."""
    coordinator = f"127.0.0.1:{_free_port()}"
    procs = [_spawn([
        "cluster", "coordinator", coordinator, "--replication", "2",
        "--heartbeat-s", str(HEARTBEAT_S), "--miss-limit", str(MISS_LIMIT),
    ])]
    try:
        time.sleep(0.5)
        procs.extend(
            _spawn(["cluster", "join", coordinator, "--listen", "127.0.0.1:0"])
            for _ in range(3)
        )
        _wait_alive(coordinator, 3)
        yield coordinator, procs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


QUERIES = [(d, float(m)) for d in range(3, 9) for m in (8, 40, 100)]


def test_sigkill_mid_load_loses_nothing(live_cluster):
    coordinator, procs = live_cluster
    node_procs = procs[1:]
    status = _cli_status(coordinator)
    assert [n["state"] for n in status["nodes"]] == ["alive"] * 3

    answered: Counter = Counter()
    rounds = 12
    kill_round = 4
    killed_at = None
    with connect(
        f"cluster:{coordinator}",
        retry=RetryPolicy(attempts=6, base_delay_s=0.05, max_delay_s=0.5),
    ) as client:
        for round_no in range(rounds):
            if round_no == kill_round:
                node_procs[0].send_signal(signal.SIGKILL)
                killed_at = time.monotonic()
            # query_many raises RouteError on any lost query; a short
            # answer list or a non-ok doc would be a failed query
            results = client.query_many(QUERIES)
            assert len(results) == len(QUERIES)
            for result in results:
                assert result["ok"], result
                answered[(result["d"], result["m"])] += 1

    # exactly one answer per query per round: nothing lost, nothing doubled
    assert answered == Counter({(d, m): rounds for d, m in QUERIES})

    # the coordinator noticed the death within the heartbeat window
    # (SIGKILL drops the registration connection, so usually instantly)
    deadline = killed_at + HEARTBEAT_S * MISS_LIMIT + 2.0
    while True:
        states = Counter(n["state"] for n in _cli_status(coordinator)["nodes"])
        if states.get("dead") == 1:
            break
        assert time.monotonic() < deadline, f"death never observed: {states}"
        time.sleep(0.1)
    assert states["alive"] == 2

    # and the survivors still answer through the refreshed routes
    with connect(f"cluster:{coordinator}") as client:
        follow_up = client.query_many(QUERIES)
    assert all(result["ok"] for result in follow_up)
    assert len(follow_up) == len(QUERIES)
