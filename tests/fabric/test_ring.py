"""Property tests for the consistent-hash ring and routing table.

The two load-bearing claims of consistent hashing are checked exactly,
not statistically, where possible: a leave only moves keys whose
primary was the leaver; a join only moves keys onto the joiner.  The
statistical claim (how *many* keys move) is bounded against the
1/k / 1/(k+1) expectation with generous slack.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.ring import DEFAULT_VNODES, HashRing, moved_fraction, shard_key
from repro.fabric.routing import RoutingTable

#: a key population big enough for the moved-fraction bounds to hold
KEYS = [shard_key(preset, d) for preset in ("ipsc860", "hypothetical") for d in range(1, 11)]
KEYS += [f"key-{i}" for i in range(4000)]

node_names = st.lists(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1, max_size=8, unique=True,
)


class TestHashRing:
    def test_vnode_count(self):
        ring = HashRing(["a", "b"])
        assert len(ring._points) == 2 * DEFAULT_VNODES

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_empty_ring(self):
        ring = HashRing([])
        assert not ring
        assert ring.replicas("anything", 2) == ()
        with pytest.raises(ValueError):
            ring.primary("anything")

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            HashRing(["a"]).replicas("k", 0)

    @settings(max_examples=50, deadline=None)
    @given(nodes=node_names, key=st.text(min_size=1, max_size=20), n=st.integers(1, 5))
    def test_replicas_distinct_and_known(self, nodes, key, n):
        ring = HashRing(nodes)
        replicas = ring.replicas(key, n)
        assert len(replicas) == min(n, len(nodes))
        assert len(set(replicas)) == len(replicas)
        assert set(replicas) <= set(nodes)
        assert ring.primary(key) == replicas[0]

    @settings(max_examples=25, deadline=None)
    @given(nodes=node_names, key=st.text(min_size=1, max_size=20))
    def test_placement_is_deterministic(self, nodes, key):
        assert HashRing(nodes).replicas(key, 2) == HashRing(nodes).replicas(key, 2)

    def test_leave_moves_only_the_leavers_keys(self):
        """Exact property: removing node X changes a key's primary iff
        the primary *was* X."""
        nodes = [f"n{i}" for i in range(6)]
        before = HashRing(nodes)
        after = HashRing(nodes[:-1])
        leaver = nodes[-1]
        for key in KEYS:
            if before.primary(key) == leaver:
                assert after.primary(key) != leaver
            else:
                assert after.primary(key) == before.primary(key)

    def test_join_moves_keys_only_onto_the_joiner(self):
        """Exact property: adding node X changes a key's primary only
        by claiming it *for* X."""
        nodes = [f"n{i}" for i in range(5)]
        before = HashRing(nodes)
        after = HashRing(nodes + ["newcomer"])
        for key in KEYS:
            if after.primary(key) != before.primary(key):
                assert after.primary(key) == "newcomer"

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_join_moved_fraction_near_expectation(self, k):
        nodes = [f"node-{i}" for i in range(k)]
        before = HashRing(nodes)
        after = HashRing(nodes + ["joiner"])
        moved = moved_fraction(before, after, KEYS)
        expected = 1.0 / (k + 1)
        assert 0.0 < moved <= 2.0 * expected

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_leave_moved_fraction_near_expectation(self, k):
        nodes = [f"node-{i}" for i in range(k)]
        before = HashRing(nodes)
        after = HashRing(nodes[:-1])
        moved = moved_fraction(before, after, KEYS)
        expected = 1.0 / k
        assert 0.0 < moved <= 2.0 * expected

    def test_moved_fraction_empty_keys(self):
        ring = HashRing(["a"])
        assert moved_fraction(ring, ring, []) == 0.0

    def test_load_spreads_across_nodes(self):
        ring = HashRing([f"n{i}" for i in range(4)])
        owners = {ring.primary(key) for key in KEYS[:200]}
        assert len(owners) == 4  # every node owns *something*


class TestRoutingTable:
    def _table(self, epoch=3, replication=2):
        return RoutingTable(
            epoch=epoch,
            replication=replication,
            nodes=(("n0", "127.0.0.1:1"), ("n1", "127.0.0.1:2"), ("n2", "127.0.0.1:3")),
            presets=("ipsc860",),
            default_preset="ipsc860",
        )

    def test_replicas_for_distinct_addresses(self):
        table = self._table()
        for d in range(1, 11):
            replicas = table.replicas_for("ipsc860", d)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2
            assert set(replicas) <= {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}

    def test_roundtrips_through_dict(self):
        table = self._table()
        clone = RoutingTable.from_dict(table.as_dict())
        assert clone == table
        assert clone.replicas_for("ipsc860", 7) == table.replicas_for("ipsc860", 7)

    def test_rejects_replication_below_one(self):
        with pytest.raises(ValueError):
            self._table(replication=0)

    @pytest.mark.parametrize(
        "doc",
        [
            {},
            {"epoch": 1},
            {"epoch": 1, "replication": 2, "nodes": "not-a-list"},
            {"epoch": "x", "replication": 2, "nodes": []},
        ],
    )
    def test_from_dict_rejects_malformed(self, doc):
        with pytest.raises(ValueError):
            RoutingTable.from_dict(doc)

    def test_empty_table_routes_nowhere(self):
        table = RoutingTable(epoch=1, replication=2, nodes=())
        assert table.replicas_for("ipsc860", 7) == ()
