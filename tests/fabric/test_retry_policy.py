"""Property tests for the cluster client's deterministic backoff.

:class:`repro.fabric.cluster.RetryPolicy` is load-bearing for replica
failover — every cross-replica retry sleeps by its schedule — but until
now it was only exercised incidentally through whole-cluster tests.
These pin its contract directly: deterministic, monotone non-decreasing,
capped, and exactly the documented doubling series.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.cluster import RetryPolicy

policies = st.builds(
    RetryPolicy,
    attempts=st.integers(min_value=1, max_value=16),
    base_delay_s=st.floats(
        min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
    ),
    max_delay_s=st.floats(
        min_value=10.0, max_value=1000.0, allow_nan=False, allow_infinity=False
    ),
)


class TestBackoffSchedule:
    def test_default_first_delays_pinned_exactly(self):
        """The documented schedule of the default policy: doubling from
        50 ms, capped at 1 s from the fifth failure on."""
        policy = RetryPolicy()
        assert [policy.delay_s(f) for f in range(8)] == [
            0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0, 1.0,
        ]

    @given(policies, st.integers(min_value=0, max_value=60))
    def test_monotone_non_decreasing(self, policy, failure):
        assert policy.delay_s(failure + 1) >= policy.delay_s(failure)

    @given(policies, st.integers(min_value=0, max_value=200))
    def test_capped_and_non_negative(self, policy, failure):
        delay = policy.delay_s(failure)
        assert 0.0 <= delay <= policy.max_delay_s

    @given(policies, st.integers(min_value=0, max_value=60))
    def test_deterministic(self, policy, failure):
        assert policy.delay_s(failure) == policy.delay_s(failure)

    @given(policies, st.integers(min_value=0, max_value=40))
    def test_exact_doubling_below_the_cap(self, policy, failure):
        """Before the cap bites, the schedule is exactly base * 2^f."""
        uncapped = policy.base_delay_s * (2.0 ** failure)
        if uncapped < policy.max_delay_s:
            assert policy.delay_s(failure) == uncapped
        else:
            assert policy.delay_s(failure) == policy.max_delay_s

    @given(
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=30),
    )
    def test_cap_reached_in_logarithmic_failures(self, base, failure):
        """Once a delay hits the cap it stays there forever."""
        policy = RetryPolicy(base_delay_s=base, max_delay_s=base * 8.0)
        if policy.delay_s(failure) == policy.max_delay_s:
            assert policy.delay_s(failure + 1) == policy.max_delay_s
            assert policy.delay_s(failure + 7) == policy.max_delay_s


class TestValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="base_delay_s <= max_delay_s"):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=-0.1)
