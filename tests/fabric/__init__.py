"""Tests for the shard fabric (coordinator, ring, cluster clients)."""
