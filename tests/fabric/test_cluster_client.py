"""Cluster-client failover tests against scripted flaky servers.

The servers here speak the JSON data plane but follow a per-connection
*script* — answer, shed, cut the connection mid-pipeline, or refuse
outright — so every failover path in :class:`ClusterClient` is driven
deterministically.  The invariant under test throughout: **exactly one
answer per query**, whatever the replicas do — a cut pipeline re-runs
its whole group on the next replica, shed queries stay pending, and
nothing is duplicated or lost.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import Counter, deque

import pytest

from repro.fabric import (
    AsyncClusterClient,
    ClusterClient,
    RetryPolicy,
    RouteError,
    RoutingTable,
    StaticRoutes,
)

#: twelve queries over distinct shard keys so both replicas get groups
QUERIES = [(d, 100.0 + d) for d in range(1, 13)]
EXPECTED_MS = sorted(m for _, m in QUERIES)


class ScriptedServer:
    """A JSON-lines optimizer server whose behavior per *connection* is
    scripted: ``ok`` answers everything, ``shed_all`` answers
    ``{"retry": true}``, ``drop_mid`` cuts the socket after one answer
    (mid-pipeline), ``refuse`` closes before reading anything."""

    def __init__(self, name: str, script: list[str]) -> None:
        self.name = name
        self.script: deque[str] = deque(script)
        self.address = ""
        self.answered: list[float] = []  # every ok answer written (by m)
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.address = f"{host}:{port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        behavior = self.script.popleft() if self.script else "ok"
        answered = 0
        try:
            if behavior == "refuse":
                return
            while True:
                line = await reader.readline()
                if not line:
                    return
                doc = json.loads(line)
                if behavior == "drop_mid" and answered >= 1:
                    return  # cut with answers still owed: mid-pipeline drop
                if behavior == "shed_all":
                    answer = {"ok": False, "retry": True, "error": "overloaded"}
                else:
                    answer = {
                        "ok": True, "d": doc["d"], "m": doc["m"],
                        "server": self.name,
                    }
                    self.answered.append(doc["m"])
                writer.write(json.dumps(answer).encode() + b"\n")
                await writer.drain()
                answered += 1
        finally:
            writer.close()


class ScriptedCluster:
    """Two scripted servers on a background event loop, plus the
    :class:`StaticRoutes` table that makes them a 2-replica cluster."""

    def __init__(self, script_a: list[str], script_b: list[str]) -> None:
        self.a = ScriptedServer("A", script_a)
        self.b = ScriptedServer("B", script_b)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)

    def __enter__(self) -> "ScriptedCluster":
        self._thread.start()
        for server in (self.a, self.b):
            asyncio.run_coroutine_threadsafe(server.start(), self._loop).result(5)
        return self

    def __exit__(self, *exc_info) -> None:
        for server in (self.a, self.b):
            asyncio.run_coroutine_threadsafe(server.stop(), self._loop).result(5)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(5)
        self._loop.close()

    def routes(self) -> StaticRoutes:
        return StaticRoutes(RoutingTable(
            epoch=1, replication=2,
            nodes=(("A", self.a.address), ("B", self.b.address)),
            presets=("ipsc860",), default_preset="ipsc860",
        ))


FAST_RETRY = RetryPolicy(attempts=4, base_delay_s=0.001, max_delay_s=0.01)


def assert_exactly_once(results: list[dict]) -> None:
    assert sorted(r["m"] for r in results) == EXPECTED_MS
    assert all(r["ok"] for r in results)


class TestFailover:
    def test_happy_path_spreads_over_both_replicas(self):
        with ScriptedCluster(["ok"], ["ok"]) as cluster:
            with ClusterClient(cluster.routes(), retry=FAST_RETRY) as client:
                results = client.query_many(QUERIES)
            assert_exactly_once(results)
            by_server = Counter(r["server"] for r in results)
            assert set(by_server) == {"A", "B"}  # both primaries used
            # the cluster served each query exactly once in total
            assert sorted(cluster.a.answered + cluster.b.answered) == EXPECTED_MS

    def test_mid_pipeline_drop_rolls_whole_group_to_replica(self):
        with ScriptedCluster(["drop_mid", "ok"], ["ok"]) as cluster:
            with ClusterClient(cluster.routes(), retry=FAST_RETRY) as client:
                results = client.query_many(QUERIES)
            assert_exactly_once(results)
            # A answered one query before the cut; the client must have
            # discarded it and re-run the *whole* group elsewhere, so the
            # one orphan is the only double-serve — and no client-visible
            # answer is duplicated or lost (assert_exactly_once above).
            orphans = [m for m in cluster.a.answered if m not in
                       [r["m"] for r in results if r["server"] == "A"]]
            assert len(orphans) <= 1

    def test_shed_queries_retry_on_next_replica(self):
        with ScriptedCluster(["shed_all", "ok"], ["ok"]) as cluster:
            with ClusterClient(cluster.routes(), retry=FAST_RETRY) as client:
                results = client.query_many(QUERIES)
            assert_exactly_once(results)
            # everything A shed was answered exactly once, by someone
            assert sorted(cluster.a.answered + cluster.b.answered) == EXPECTED_MS

    def test_total_refusal_exhausts_retry_budget(self):
        script = ["refuse"] * 10
        with ScriptedCluster(list(script), list(script)) as cluster:
            client = ClusterClient(
                cluster.routes(),
                retry=RetryPolicy(attempts=2, base_delay_s=0.001, max_delay_s=0.01),
            )
            with pytest.raises(RouteError, match="unanswered after 2 attempts"):
                client.query_many(QUERIES)
            client.close()

    def test_stale_routes_refresh_after_failure(self):
        """First table points at a dead port; the post-failure forced
        refresh must pick up the new epoch and succeed."""
        with ScriptedCluster(["ok", "ok"], ["ok", "ok"]) as cluster:
            routes = cluster.routes()
            live = routes.table(None)
            dead = RoutingTable(
                epoch=1, replication=2,
                nodes=(("A", "127.0.0.1:1"), ("B", "127.0.0.1:1")),
                presets=("ipsc860",), default_preset="ipsc860",
            )
            routes.set(dead)
            client = ClusterClient(routes, retry=FAST_RETRY)
            assert client.table.epoch == 1
            routes.set(RoutingTable(
                epoch=2, replication=2, nodes=live.nodes,
                presets=live.presets, default_preset=live.default_preset,
            ))
            results = client.query_many(QUERIES)
            assert_exactly_once(results)
            assert client.table.epoch == 2
            client.close()

    def test_async_client_mid_pipeline_drop(self):
        async def scenario():
            a = ScriptedServer("A", ["drop_mid", "ok"])
            b = ScriptedServer("B", ["ok"])
            await a.start()
            await b.start()
            routes = StaticRoutes(RoutingTable(
                epoch=1, replication=2,
                nodes=(("A", a.address), ("B", b.address)),
                presets=("ipsc860",), default_preset="ipsc860",
            ))
            try:
                async with AsyncClusterClient(routes, retry=FAST_RETRY) as client:
                    return await client.query_many(QUERIES)
            finally:
                await a.stop()
                await b.stop()

        assert_exactly_once(asyncio.run(scenario()))

    def test_empty_query_list(self):
        with ScriptedCluster(["ok"], ["ok"]) as cluster:
            with ClusterClient(cluster.routes(), retry=FAST_RETRY) as client:
                assert client.query_many([]) == []

    def test_single_query_and_presets(self):
        with ScriptedCluster(["ok"], ["ok"]) as cluster:
            with ClusterClient(cluster.routes(), retry=FAST_RETRY) as client:
                answer = client.query(7, 40.0)
                assert answer["ok"] and answer["m"] == 40.0
                assert client.presets() == ["ipsc860"]
                assert client.stats()["cluster"]["epoch"] == 1


class TestRetryPolicy:
    def test_deterministic_capped_backoff(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.05, max_delay_s=0.3)
        assert [policy.delay_s(i) for i in range(4)] == [0.05, 0.1, 0.2, 0.3]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay_s": -0.1},
            {"base_delay_s": 1.0, "max_delay_s": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
