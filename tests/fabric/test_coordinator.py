"""Live coordinator tests: the control protocol over real sockets.

Nodes here are raw control connections speaking JOIN/HEARTBEAT frames
by hand (the coordinator never dials a node's data plane, so no
optimizer servers are needed); heartbeat windows are tiny so miss-K
death is observed in tens of milliseconds.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.fabric.cluster import RouteError, fetch_routes, fetch_status, request_drain
from repro.fabric.coordinator import Coordinator
from repro.service import wire as wire_proto


async def control_request(address, opcode, doc):
    """One raw control round trip; returns (opcode, payload doc)."""
    reader, writer = await asyncio.open_connection(address.host, address.port)
    try:
        writer.write(wire_proto.pack_frame(opcode, wire_proto.fabric_payload(doc)))
        await writer.drain()
        _, answer_op, payload = await wire_proto.read_frame(reader)
    finally:
        writer.close()
        await writer.wait_closed()
    if answer_op == wire_proto.OP_ERROR:
        return answer_op, {"error": payload.decode("utf-8", "replace")}
    return answer_op, wire_proto.parse_fabric_payload(payload)


async def join(address, node_id, serving="127.0.0.1:9999", **extra):
    """JOIN on a long-lived connection; returns (reader, writer, welcome)."""
    reader, writer = await asyncio.open_connection(address.host, address.port)
    doc = {"node": node_id, "address": serving, **extra}
    writer.write(wire_proto.pack_frame(wire_proto.OP_JOIN, wire_proto.fabric_payload(doc)))
    await writer.drain()
    _, opcode, payload = await wire_proto.read_frame(reader)
    assert opcode == wire_proto.OP_JOIN_OK
    return reader, writer, wire_proto.parse_fabric_payload(payload)


async def close_conn(writer):
    writer.close()
    await writer.wait_closed()


class TestControlProtocol:
    def test_join_heartbeat_routes_status(self):
        async def scenario():
            coordinator = Coordinator(replication=2, heartbeat_s=5.0)
            await coordinator.start("127.0.0.1:0")
            try:
                addr = coordinator.address
                reader, writer, welcome = await join(
                    addr, "n0", presets=["ipsc860"], default_preset="ipsc860", shards=4
                )
                assert welcome == {"epoch": 1, "heartbeat_s": 5.0, "miss_limit": 3}
                writer.write(wire_proto.pack_frame(
                    wire_proto.OP_HEARTBEAT,
                    wire_proto.fabric_payload({"node": "n0", "stats": {"shed": 1}}),
                ))
                await writer.drain()
                _, opcode, payload = await wire_proto.read_frame(reader)
                assert opcode == wire_proto.OP_HEARTBEAT_OK
                assert wire_proto.parse_fabric_payload(payload) == {
                    "epoch": 1, "drain": False,
                }
                _, routes = await control_request(addr, wire_proto.OP_ROUTES, {"epoch": -1})
                assert routes["epoch"] == 1
                assert routes["nodes"] == [["n0", "127.0.0.1:9999"]]
                assert routes["default_preset"] == "ipsc860"
                # epoch-conditional: a current epoch gets the tiny answer
                _, unchanged = await control_request(
                    addr, wire_proto.OP_ROUTES, {"epoch": 1}
                )
                assert unchanged == {"unchanged": True, "epoch": 1}
                _, status = await control_request(addr, wire_proto.OP_STATUS, {})
                assert [n["node"] for n in status["nodes"]] == ["n0"]
                assert status["nodes"][0]["stats"]["shed"] == 1
                await close_conn(writer)
            finally:
                await coordinator.aclose()

        asyncio.run(scenario())

    def test_connection_loss_kills_the_node(self):
        async def scenario():
            coordinator = Coordinator(heartbeat_s=5.0)
            await coordinator.start("127.0.0.1:0")
            try:
                _, writer, _ = await join(coordinator.address, "n0")
                await close_conn(writer)
                for _ in range(50):
                    if coordinator.membership.get("n0").state == "dead":
                        break
                    await asyncio.sleep(0.01)
                assert coordinator.membership.get("n0").state == "dead"
                assert coordinator.membership.epoch == 2
            finally:
                await coordinator.aclose()

        asyncio.run(scenario())

    def test_silent_node_swept_dead_within_miss_window(self):
        async def scenario():
            coordinator = Coordinator(heartbeat_s=0.05, miss_limit=2)
            await coordinator.start("127.0.0.1:0")
            try:
                reader, writer, _ = await join(coordinator.address, "n0")
                # hold the connection open but never heartbeat: miss-K
                # (not connection loss) must declare the death
                deadline = asyncio.get_running_loop().time() + 2.0
                while coordinator.membership.get("n0").state != "dead":
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                _, status = await control_request(
                    coordinator.address, wire_proto.OP_STATUS, {}
                )
                assert status["nodes"][0]["state"] == "dead"
                await close_conn(writer)
            finally:
                await coordinator.aclose()

        asyncio.run(scenario())

    def test_drain_handshake(self):
        async def scenario():
            coordinator = Coordinator(heartbeat_s=5.0)
            await coordinator.start("127.0.0.1:0")
            try:
                addr = coordinator.address
                reader, writer, _ = await join(addr, "n0")
                _, answer = await control_request(addr, wire_proto.OP_DRAIN, {"node": "n0"})
                assert answer["state"] == "draining"
                # the next heartbeat carries the drain order
                writer.write(wire_proto.pack_frame(
                    wire_proto.OP_HEARTBEAT, wire_proto.fabric_payload({"node": "n0"})
                ))
                await writer.drain()
                _, opcode, payload = await wire_proto.read_frame(reader)
                assert wire_proto.parse_fabric_payload(payload)["drain"] is True
                # the node closes its connection: clean leave, not death
                await close_conn(writer)
                for _ in range(50):
                    if coordinator.membership.get("n0").state == "left":
                        break
                    await asyncio.sleep(0.01)
                assert coordinator.membership.get("n0").state == "left"
            finally:
                await coordinator.aclose()

        asyncio.run(scenario())

    def test_errors_are_in_band(self):
        async def scenario():
            coordinator = Coordinator(heartbeat_s=5.0)
            await coordinator.start("127.0.0.1:0")
            try:
                addr = coordinator.address
                # heartbeat from a stranger: re-join required
                op, doc = await control_request(
                    addr, wire_proto.OP_HEARTBEAT, {"node": "ghost"}
                )
                assert op == wire_proto.OP_ERROR
                assert "re-join required" in doc["error"]
                # drain of an unknown node
                op, doc = await control_request(addr, wire_proto.OP_DRAIN, {"node": "ghost"})
                assert op == wire_proto.OP_ERROR
                # a data-plane opcode on the control plane
                op, doc = await control_request(addr, wire_proto.OP_QUERY, {})
                assert op == wire_proto.OP_ERROR
                assert "unexpected control opcode" in doc["error"]
                # join with no identity
                op, doc = await control_request(addr, wire_proto.OP_JOIN, {})
                assert op == wire_proto.OP_ERROR
                assert "bad JOIN" in doc["error"]
            finally:
                await coordinator.aclose()

        asyncio.run(scenario())


class TestBlockingHelpers:
    """fetch_routes / fetch_status / request_drain — the sync control
    clients behind the CLI — against a live coordinator."""

    def test_sync_control_round_trips(self):
        async def start():
            coordinator = Coordinator(replication=2, heartbeat_s=5.0)
            await coordinator.start("127.0.0.1:0")
            _, writer, _ = await join(
                coordinator.address, "n0", presets=["ipsc860"], default_preset="ipsc860"
            )
            return coordinator, writer

        async def scenario():
            coordinator, writer = await start()
            try:
                addr = str(coordinator.address)
                loop = asyncio.get_running_loop()
                table = await loop.run_in_executor(None, fetch_routes, addr)
                assert table.epoch == 1
                assert table.replicas_for("ipsc860", 7) == ("127.0.0.1:9999",)
                unchanged = await loop.run_in_executor(
                    None, lambda: fetch_routes(addr, known_epoch=1)
                )
                assert unchanged is None
                status = await loop.run_in_executor(None, fetch_status, addr)
                assert status["epoch"] == 1
                answer = await loop.run_in_executor(None, request_drain, addr, "n0")
                assert answer["state"] == "draining"
                with pytest.raises(RouteError, match="unknown node"):
                    await loop.run_in_executor(None, request_drain, addr, "ghost")
                await close_conn(writer)
            finally:
                await coordinator.aclose()

        asyncio.run(scenario())
