"""Tests for the CheckReport/Violation result types."""

from __future__ import annotations

import json

from repro.check import CheckReport, Violation
from repro.hypercube.topology import Link


def make_violation(**overrides):
    base = dict(
        check="edge-contention",
        target="schedule d=4 {2,2}",
        message="link is oversubscribed",
        step_index=3,
        counterexample={"link": Link(0, 1), "circuits": [(0, 3), (1, 2)]},
        fix_hint="disjoint circuits",
    )
    base.update(overrides)
    return Violation(**base)


class TestViolation:
    def test_describe_includes_provenance(self):
        text = make_violation().describe()
        assert "[edge-contention]" in text
        assert "step 3" in text
        assert "hint:" in text

    def test_describe_line_provenance(self):
        text = make_violation(step_index=None, line=42).describe()
        assert ":42" in text

    def test_as_dict_is_json_serializable(self):
        doc = make_violation().as_dict()
        encoded = json.loads(json.dumps(doc))
        assert encoded["check"] == "edge-contention"
        # non-JSON values (the Link) were stringified
        assert isinstance(encoded["counterexample"]["link"], str)


class TestCheckReport:
    def test_empty_report_is_ok(self):
        report = CheckReport()
        assert report.ok
        assert "0 violation(s)" in report.render()

    def test_add_flips_ok(self):
        report = CheckReport()
        report.certify("schedule d=2 {2}")
        report.add(make_violation())
        assert not report.ok
        assert "edge-contention" in report.render()

    def test_extend_merges(self):
        left, right = CheckReport(), CheckReport()
        left.certify("a")
        right.certify("b")
        right.add(make_violation())
        merged = left.extend(right)
        assert merged is left
        assert left.certified == ["a", "b"]
        assert not left.ok

    def test_as_dict_round_trip(self):
        report = CheckReport()
        report.certify("x")
        report.add(make_violation())
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["ok"] is False
        assert doc["certified"] == ["x"]
        assert len(doc["violations"]) == 1
