"""Tests for the AST lint engine (repro.check.rules).

Every rule gets (a) a failing snippet that must be flagged, (b) a
clean/allowlisted snippet that must pass — a lint rule that cannot
distinguish the two is noise.  The suite ends by running the whole
engine over the repository's real ``src/`` tree, which must be clean:
the rules are gating in CI.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.check import RULES, run_rules
from repro.check.rules import LintRule

RULE_IDS = {rule.rule_id for rule in RULES}
SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def run_snippets(tmp_path, snippets, **kwargs):
    """Write ``{relpath: source}`` under tmp_path and lint them."""
    for relpath, source in snippets.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return run_rules(root=tmp_path, **kwargs)


def checks(report, rule_id):
    return [v for v in report.violations if v.check == rule_id]


class TestRegistry:
    def test_at_least_five_rules(self):
        assert len(RULES) >= 5

    def test_rules_have_hints_and_unique_ids(self):
        assert len(RULE_IDS) == len(RULES)
        for rule in RULES:
            assert rule.fix_hint
            assert rule.description
            assert rule.check_file or rule.check_project


class TestAsyncBlocking:
    def test_flags_sleep_in_async_def(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )})
        (violation,) = checks(report, "async-blocking")
        assert violation.line == 3
        assert "time.sleep" in violation.message

    def test_flags_open_and_subprocess(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import subprocess\n"
            "async def handler(path):\n"
            "    data = open(path).read()\n"
            "    subprocess.run(['ls'])\n"
        )})
        assert len(checks(report, "async-blocking")) == 2

    def test_sync_def_is_fine(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import time\n"
            "def handler():\n"
            "    time.sleep(1)\n"
        )})
        assert checks(report, "async-blocking") == []

    def test_nested_sync_def_resets_context(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import time\n"
            "async def handler():\n"
            "    def offloaded():\n"
            "        time.sleep(1)\n"
            "    return offloaded\n"
        )})
        assert checks(report, "async-blocking") == []


class TestEngineImport:
    def test_flags_unsanctioned_import(self, tmp_path):
        report = run_snippets(tmp_path, {"repro/plan/rogue.py": (
            "from repro.sim.engine import Engine\n"
        )})
        (violation,) = checks(report, "engine-import")
        assert violation.target.endswith("rogue.py")

    def test_flags_from_sim_import_engine(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "from repro.sim import engine\n"
        )})
        assert len(checks(report, "engine-import")) == 1

    def test_sanctioned_site_is_allowed(self, tmp_path):
        report = run_snippets(tmp_path, {"repro/sim/machine.py": (
            "from repro.sim.engine import Engine\n"
        )})
        assert checks(report, "engine-import") == []


class TestFloatEq:
    def test_flags_bare_float_equality(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "def f(x):\n"
            "    return x == 0.5 or 1.0 != x\n"
        )})
        assert len(checks(report, "float-eq")) == 2

    def test_inline_allow_suppresses(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "def f(x):\n"
            "    return x == 0.0  # repro: allow[float-eq]\n"
        )})
        assert checks(report, "float-eq") == []

    def test_integer_equality_is_fine(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": "ok = (3 == 3)\n"})
        assert checks(report, "float-eq") == []


class TestUnseededRand:
    def test_flags_argless_default_rng(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )})
        (violation,) = checks(report, "unseeded-rand")
        assert "default_rng" in violation.message

    def test_seeded_default_rng_is_fine(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import numpy as np\n"
            "rng = np.random.default_rng(1234)\n"
        )})
        assert checks(report, "unseeded-rand") == []

    def test_flags_legacy_numpy_global_rng(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
        )})
        assert len(checks(report, "unseeded-rand")) == 1

    def test_flags_stdlib_random(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import random\n"
            "x = random.choice([1, 2])\n"
        )})
        assert len(checks(report, "unseeded-rand")) == 1

    def test_local_name_random_not_confused(self, tmp_path):
        # a local object happening to be named `random` is not the module
        report = run_snippets(tmp_path, {"a.py": (
            "random = make_sampler()\n"
            "x = random.choice([1, 2])\n"
        )})
        assert checks(report, "unseeded-rand") == []


class TestWallClock:
    def test_flags_wall_clock_reads(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "import time\n"
            "t0 = time.perf_counter()\n"
            "t1 = time.time()\n"
        )})
        assert len(checks(report, "wall-clock")) == 2

    def test_simulated_clock_is_fine(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": (
            "def now(engine):\n"
            "    return engine.now\n"
        )})
        assert checks(report, "wall-clock") == []


class TestProtocolDrift:
    def test_flags_disagreeing_constants(self, tmp_path):
        report = run_snippets(tmp_path, {
            "svc/server.py": "MAX_BATCH_QUERIES = 4096\n",
            "svc/client.py": "MAX_BATCH_QUERIES = 1024\n",
        })
        violations = checks(report, "protocol-drift")
        assert len(violations) == 2  # one per disagreeing site
        assert all("MAX_BATCH_QUERIES" in v.message for v in violations)

    def test_agreeing_constants_pass(self, tmp_path):
        report = run_snippets(tmp_path, {
            "svc/server.py": "MAX_BATCH_QUERIES = 4096\nONLY_HERE = 1\n",
            "svc/async_server.py": "MAX_BATCH_QUERIES = 4096\n",
        })
        assert checks(report, "protocol-drift") == []

    def test_single_file_never_drifts(self, tmp_path):
        report = run_snippets(tmp_path, {
            "svc/server.py": "MAX_BATCH_QUERIES = 4096\n",
        })
        assert checks(report, "protocol-drift") == []

    def test_flags_binary_frame_constant_drift(self, tmp_path):
        # wire.py is a protocol file: a client re-defining a frame
        # constant (instead of importing it) must be caught the moment
        # the values disagree
        report = run_snippets(tmp_path, {
            "svc/wire.py": 'WIRE_MAGIC = b"RPRW"\nWIRE_VERSION = 1\nOP_QUERY = 3\n',
            "svc/client.py": 'WIRE_MAGIC = b"RPRW"\nWIRE_VERSION = 2\nOP_QUERY = 4\n',
        })
        violations = checks(report, "protocol-drift")
        names = {v.message.split()[2] for v in violations}
        assert names == {"WIRE_VERSION", "OP_QUERY"}  # magic agrees
        assert len(violations) == 4  # one per disagreeing site

    def test_agreeing_frame_constants_pass(self, tmp_path):
        report = run_snippets(tmp_path, {
            "svc/wire.py": 'WIRE_MAGIC = b"RPRW"\nHEADER_BYTES = 12\n',
            "svc/async_server.py": 'WIRE_MAGIC = b"RPRW"\n',
            "svc/server.py": "MAX_BATCH_QUERIES = 4096\n",
        })
        assert checks(report, "protocol-drift") == []


class TestEngine:
    def test_certifies_rules_with_no_findings(self, tmp_path):
        report = run_snippets(tmp_path, {"a.py": "x = 1\n"})
        assert report.ok
        assert len(report.certified) == len(RULES)

    def test_rule_subset(self, tmp_path):
        subset = [r for r in RULES if r.rule_id == "float-eq"]
        report = run_snippets(
            tmp_path,
            {"a.py": "import time\nasync def f():\n    time.sleep(1)\ny = 1 == 0.5\n"},
            rules=subset,
        )
        # only the selected rule ran
        assert {v.check for v in report.violations} == {"float-eq"}

    def test_syntax_error_files_are_skipped(self, tmp_path):
        report = run_snippets(tmp_path, {"broken.py": "def f(:\n"})
        assert report.ok

    def test_violation_lines_are_accurate(self, tmp_path):
        source = "x = 1\ny = 2\nz = 1.0 == q\n"
        report = run_snippets(tmp_path, {"a.py": source})
        (violation,) = checks(report, "float-eq")
        assert violation.line == 3
        assert "1.0" in source.splitlines()[violation.line - 1]


class TestRepositoryIsClean:
    """The gate itself: the real src/ tree passes every rule."""

    def test_src_tree_passes_all_rules(self):
        report = run_rules(root=SRC_ROOT)
        assert report.ok, report.render()
        assert len(report.certified) == len(RULES)

    def test_crossover_sentinels_are_allowlisted_not_invisible(self):
        """The float-eq bisection sentinels exist and are suppressed by
        inline allows — removing the comments must flag them again."""
        crossover = SRC_ROOT / "repro" / "model" / "crossover.py"
        text = crossover.read_text()
        assert text.count("# repro: allow[float-eq]") >= 6
