"""Tests for the static verification subsystem (repro.check)."""
