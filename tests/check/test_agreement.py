"""Verifier/engine agreement: static certificates hold dynamically.

The static verifier and the event engine are independent
implementations of the same physics.  A schedule the verifier
certifies contention-free must replay on the event engine with zero
contention wait and with per-step circuit sets that the per-step
oracle also calls clean; conversely the corruptions the verifier
rejects are exactly the ones that would make the engine contend or
lose data.
"""

from __future__ import annotations

import pytest

from repro.check import verify_schedule
from repro.comm.program import simulate_exchange
from repro.hypercube.contention import count_edge_conflicts
from repro.sim.trace import TransmissionRecord

CASES = [
    (3, (3,)),
    (4, (2, 2)),
    (4, (1, 1, 1, 1)),
    (5, (2, 3)),
]


def per_step_circuits(transmissions: list[TransmissionRecord]):
    """Group an exchange trace into per-step circuit sets by tag."""
    by_tag: dict[int, list[tuple[int, int]]] = {}
    for record in transmissions:
        by_tag.setdefault(record.tag, []).append((record.src, record.dst))
    return [by_tag[tag] for tag in sorted(by_tag)]


@pytest.mark.parametrize("d,parts", CASES)
def test_certified_schedules_replay_clean(d, parts, ipsc):
    # the static certificate...
    assert verify_schedule(d, parts) == []
    # ...agrees with the dynamic replay: no circuit ever waited
    result = simulate_exchange(d, 16, parts, ipsc)
    assert result.trace.total_contention_wait == 0.0
    # ...and the replayed per-step circuit sets are oracle-clean too
    steps = per_step_circuits(result.trace.transmissions)
    detail = count_edge_conflicts(steps)
    assert detail.clean, detail.summary()
    assert detail.n_steps == len(steps)


def test_trace_carries_every_exchange_step(ipsc):
    """The tag partition of the trace covers every compiled exchange
    step — the agreement check above is not vacuously grouping."""
    d, parts = 4, (2, 2)
    result = simulate_exchange(d, 16, parts, ipsc)
    steps = per_step_circuits(result.trace.transmissions)
    from repro.core.schedule import ExchangeStep, multiphase_schedule

    n_exchange = sum(
        isinstance(s, ExchangeStep) for s in multiphase_schedule(d, parts)
    )
    assert len(steps) == n_exchange
    # every step is a full pairing of the cube
    assert all(len(circuits) == (1 << d) for circuits in steps)


def test_rejected_corruption_would_contend(ipsc):
    """The duplicated-circuit corruption the verifier rejects is the
    same event the per-step oracle counts as a conflict."""
    from repro.check import verify_circuit_steps
    from repro.hypercube.contention import analyze_contention

    d = 4
    circuits = [(x, x ^ 3) for x in range(1 << d)] + [(0, 3)]
    static = verify_circuit_steps([circuits], d, target="t")
    assert any(v.check == "edge-contention" for v in static)
    dynamic = analyze_contention(circuits)
    assert not dynamic.edge_contention_free
    # the statically named links are exactly the oracle's conflicted ones
    named = {
        v.counterexample["link"]
        for v in static
        if v.check == "edge-contention"
    }
    assert named == {str(link) for link in dynamic.edge_conflicts}
