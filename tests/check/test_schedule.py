"""Tests for the static schedule verifier (repro.check.schedule).

The verifier is a prover: a clean schedule must certify with zero
violations, and every corruption class must be rejected with the
*right* violation kind and a usable counterexample — a verifier that
rejects everything is as useless as one that accepts everything.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import (
    verify_block_conservation,
    verify_circuit_steps,
    verify_fastpath_coefficients,
    verify_pattern,
    verify_plan_decision,
    verify_program_coefficients,
    verify_schedule,
)
from repro.check.schedule import check_schedules, pattern_variants
from repro.core.partitions import partitions
from repro.core.programs import SendStep, exchange_steps, pattern_program
from repro.core.schedule import ExchangeStep, multiphase_schedule
from repro.plan.decision import PlanDecision
from repro.sim.fastpath import compile_program, compile_schedule
from repro.util.bitops import bit_reverse


def exchange_positions(steps):
    return [i for i, s in enumerate(steps) if isinstance(s, ExchangeStep)]


class TestCleanSchedulesCertify:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_every_partition_certifies(self, d):
        for parts in partitions(d):
            assert verify_schedule(d, parts) == [], (d, parts)

    def test_default_partition_is_single_phase(self):
        assert verify_schedule(4) == []

    def test_d6_spot_checks(self):
        for parts in [(6,), (3, 3), (1,) * 6, (2, 4)]:
            assert verify_schedule(6, parts) == []


class TestCircuitChecks:
    def test_xor_step_is_clean(self):
        d = 4
        circuits = [(x, x ^ 5) for x in range(1 << d)]
        assert verify_circuit_steps([circuits], d, target="t") == []

    def test_bit_reversal_rejected_with_edge_counterexample(self):
        d = 4
        circuits = [(x, bit_reverse(x, d)) for x in range(1 << d)]
        violations = verify_circuit_steps([circuits], d, target="t")
        kinds = {v.check for v in violations}
        assert "edge-contention" in kinds
        edge = next(v for v in violations if v.check == "edge-contention")
        # the counterexample names the sharing circuits
        assert len(edge.counterexample["circuits"]) >= 2
        assert edge.counterexample["load"] >= 2

    def test_duplicated_circuit_is_port_contention(self):
        d = 4
        circuits = [(x, x ^ 3) for x in range(1 << d)] + [(0, 3)]
        violations = verify_circuit_steps([circuits], d, target="t")
        kinds = {v.check for v in violations}
        assert "port-contention" in kinds and "edge-contention" in kinds
        port = next(v for v in violations if v.check == "port-contention")
        assert port.counterexample["node"] == 0

    def test_out_of_cube_circuit_rejected(self):
        violations = verify_circuit_steps([[(0, 99)]], 4, target="t")
        assert [v.check for v in violations] == ["ecube-route"]

    def test_step_indices_provenance(self):
        d = 3
        bad = [(x, bit_reverse(x, d)) for x in range(1 << d)]
        violations = verify_circuit_steps(
            [bad], d, target="t", step_indices=[17]
        )
        assert all(v.step_index == 17 for v in violations)

    def test_self_circuits_ignored(self):
        assert verify_circuit_steps([[(2, 2), (5, 5)]], 3, target="t") == []


class TestBlockConservation:
    def test_clean_schedule_conserves(self):
        steps = multiphase_schedule(5, (2, 3))
        assert verify_block_conservation(steps, 5, target="t") == []

    def test_dropped_step_is_undelivered(self):
        d = 4
        steps = multiphase_schedule(d, (2, 2))
        drop = exchange_positions(steps)[2]
        corrupted = steps[:drop] + steps[drop + 1:]
        violations = verify_block_conservation(corrupted, d, target="t")
        kinds = {v.check for v in violations}
        assert "block-undelivered" in kinds
        missing = next(v for v in violations if v.check == "block-undelivered")
        # counterexample pins a concrete lost block
        assert {"origin", "dest"} <= set(missing.counterexample)

    def test_duplicated_step_is_vacuous(self):
        d = 4
        steps = multiphase_schedule(d, (2, 2))
        dup = exchange_positions(steps)[1]
        corrupted = steps[: dup + 1] + [steps[dup]] + steps[dup + 1:]
        violations = verify_block_conservation(corrupted, d, target="t")
        assert [v.check for v in violations] == ["vacuous-step"]
        assert violations[0].step_index == dup + 1

    def test_repeated_offset_is_rejected(self):
        d = 4
        steps = [
            dataclasses.replace(s, offset=1)
            if isinstance(s, ExchangeStep) and s.offset == 2
            else s
            for s in multiphase_schedule(d, (2, 2))
        ]
        violations = verify_block_conservation(steps, d, target="t")
        kinds = {v.check for v in violations}
        assert "vacuous-step" in kinds  # the second offset-1 step moves nothing
        assert "block-undelivered" in kinds  # offset-2 blocks never travel

    def test_exchange_before_phase_start_rejected(self):
        steps = multiphase_schedule(3, (3,))
        violations = verify_block_conservation(steps[1:], 3, target="t")
        assert any(v.check == "phase-structure" for v in violations)

    def test_oversized_group_rejected(self):
        steps = multiphase_schedule(4, (4,))
        violations = verify_block_conservation(steps, 3, target="t")
        assert any(v.check == "step-domain" for v in violations)


class TestFastpathCoefficients:
    @pytest.mark.parametrize("parts", [(4,), (2, 2), (1, 1, 1, 1), (1, 3)])
    def test_compiled_schedules_certify(self, parts):
        assert verify_fastpath_coefficients(compile_schedule(4, parts)) == []

    def test_forged_hops_rejected(self):
        compiled = compile_schedule(4, (2, 2))
        forged = dataclasses.replace(compiled, hops=compiled.hops.copy())
        forged.hops[3] += 1
        violations = verify_fastpath_coefficients(forged)
        assert all(v.check == "coeff-mismatch" for v in violations)
        assert any(v.step_index == 3 for v in violations)

    def test_forged_bytes_rejected(self):
        compiled = compile_schedule(3, (3,))
        forged = dataclasses.replace(
            compiled, bytes_per_m=compiled.bytes_per_m * 2
        )
        violations = verify_fastpath_coefficients(forged)
        assert any(v.check == "coeff-mismatch" for v in violations)

    def test_foreign_step_stream_rejected(self):
        compiled = compile_schedule(4, (2, 2))
        forged = dataclasses.replace(
            compiled, steps=tuple(multiphase_schedule(4, (1, 3)))
        )
        violations = verify_fastpath_coefficients(forged)
        assert any(v.check == "coeff-mismatch" for v in violations)


class TestProgramCoefficients:
    @pytest.mark.parametrize("pattern,algorithm", pattern_variants())
    @pytest.mark.parametrize("d", [1, 3, 5])
    def test_compiled_pattern_programs_certify(self, pattern, algorithm, d):
        compiled = compile_program(pattern_program(pattern, algorithm, d))
        assert verify_program_coefficients(compiled) == []

    @pytest.mark.parametrize("parts", [None, (2, 2), (1, 1, 1, 1)])
    def test_compiled_exchange_program_certifies(self, parts):
        compiled = compile_program(exchange_steps(4, parts))
        assert verify_program_coefficients(compiled) == []

    def test_forged_hops_rejected(self):
        compiled = compile_program(pattern_program("broadcast", "direct", 3))
        forged_hops = compiled.hops.copy()
        forged_hops[2] += 1
        forged = dataclasses.replace(compiled, hops=forged_hops)
        violations = verify_program_coefficients(forged)
        assert violations
        assert all(v.check == "coeff-mismatch" for v in violations)
        assert any(v.step_index == 2 for v in violations)

    def test_forged_bytes_rejected(self):
        compiled = compile_program(pattern_program("scatter", "halving", 4))
        forged = dataclasses.replace(
            compiled, bytes_per_m=compiled.bytes_per_m * 2
        )
        violations = verify_program_coefficients(forged)
        assert any(v.check == "coeff-mismatch" for v in violations)

    def test_forged_kind_rejected(self):
        compiled = compile_program(pattern_program("allgather", "doubling", 3))
        forged_kinds = compiled.kinds.copy()
        forged_kinds[-1] = 3  # a PairStep masquerading as a send
        forged = dataclasses.replace(compiled, kinds=forged_kinds)
        violations = verify_program_coefficients(forged)
        assert any(v.check == "coeff-mismatch" for v in violations)

    def test_structurally_broken_program_rejected(self):
        compiled = compile_program(pattern_program("broadcast", "binomial", 3))
        bad_steps = list(compiled.program.steps)
        bad_steps[1] = SendStep(src=2, dst=2, bytes_per_m=1)
        forged = dataclasses.replace(
            compiled, program=dataclasses.replace(
                compiled.program, steps=tuple(bad_steps)
            )
        )
        violations = verify_program_coefficients(forged)
        assert any(v.check == "program-structure" for v in violations)

    def test_truncated_arrays_rejected(self):
        compiled = compile_program(pattern_program("scatter", "direct", 3))
        forged = dataclasses.replace(compiled, kinds=compiled.kinds[:-1])
        violations = verify_program_coefficients(forged)
        assert any(v.check == "coeff-mismatch" for v in violations)


class TestPatterns:
    @pytest.mark.parametrize("pattern,algorithm", pattern_variants())
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_patterns_certify(self, pattern, algorithm, d):
        assert verify_pattern(pattern, algorithm, d) == []

    @pytest.mark.parametrize("root", [0, 1, 5])
    def test_nonzero_roots(self, root):
        for pattern, algorithm in pattern_variants():
            assert verify_pattern(pattern, algorithm, 3, root=root) == []

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError, match="allgather"):
            verify_pattern("allgather", "ring", 3)


class TestPlanDecisions:
    def _decision(self, **overrides):
        base = dict(
            d=4, m=32.0, algorithm="multiphase", partition=(2, 2),
            predicted_us=1.0, policy="model", source="policy",
        )
        base.update(overrides)
        return PlanDecision(**base)

    def test_partitioned_decision_certifies(self):
        assert verify_plan_decision(self._decision()) == []

    def test_naive_decision_certifies_per_step(self):
        decision = self._decision(
            algorithm="naive", partition=None, predicted_us=None
        )
        assert verify_plan_decision(decision) == []

    def test_illegal_partition_rejected(self):
        decision = self._decision(partition=(3, 3))
        violations = verify_plan_decision(decision)
        assert [v.check for v in violations] == ["plan-illegal"]


class TestDriver:
    def test_small_driver_run_certifies(self):
        report = check_schedules(dims=(2, 3), block_sizes=(40.0,))
        assert report.ok
        # schedules + patterns + planner decisions all certified
        assert any(c.startswith("schedule d=3") for c in report.certified)
        assert any(c.startswith("pattern ") for c in report.certified)
        assert any(c.startswith("plan ipsc860") for c in report.certified)

    def test_driver_respects_preset_subset(self):
        report = check_schedules(
            dims=(2,), presets=("hypothetical",), block_sizes=(8.0,)
        )
        assert report.ok
        assert not any("ipsc860" in c for c in report.certified)
