"""Tests for the distributed 2-D FFT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.fft2d import distributed_fft2, distributed_ifft2


class TestForward:
    @pytest.mark.parametrize("n_nodes,partition", [(2, None), (4, (2,)), (4, (1, 1)), (8, (2, 1))])
    def test_matches_numpy_real_input(self, n_nodes, partition):
        rng = np.random.default_rng(11)
        g = rng.normal(size=(16, 16))
        out = distributed_fft2(g, n_nodes, partition=partition)
        assert np.allclose(out, np.fft.fft2(g))

    def test_complex_input(self):
        rng = np.random.default_rng(12)
        g = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        assert np.allclose(distributed_fft2(g, 4), np.fft.fft2(g))

    def test_transposed_layout_option(self):
        rng = np.random.default_rng(13)
        g = rng.normal(size=(8, 8))
        spectrum_t = distributed_fft2(g, 4, restore_layout=False)
        assert np.allclose(spectrum_t, np.fft.fft2(g).T)

    def test_delta_function_flat_spectrum(self):
        g = np.zeros((8, 8))
        g[0, 0] = 1.0
        assert np.allclose(distributed_fft2(g, 8), np.ones((8, 8)))

    def test_parseval(self):
        rng = np.random.default_rng(14)
        g = rng.normal(size=(16, 16))
        spectrum = distributed_fft2(g, 4)
        assert np.sum(np.abs(g) ** 2) == pytest.approx(
            np.sum(np.abs(spectrum) ** 2) / g.size
        )


class TestInverse:
    def test_matches_numpy(self):
        rng = np.random.default_rng(15)
        s = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        assert np.allclose(distributed_ifft2(s, 4), np.fft.ifft2(s))

    @pytest.mark.parametrize("partition", [None, (1, 1, 1)])
    def test_roundtrip(self, partition):
        rng = np.random.default_rng(16)
        g = rng.normal(size=(8, 8))
        back = distributed_ifft2(distributed_fft2(g, 8, partition=partition), 8,
                                 partition=partition)
        assert np.allclose(back, g)


class TestValidation:
    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError):
            distributed_fft2(np.zeros((6, 6)), 3)

    def test_rejects_indivisible_grid(self):
        with pytest.raises(ValueError):
            distributed_fft2(np.zeros((6, 6)), 4)
