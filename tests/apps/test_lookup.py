"""Tests for the distributed table lookup."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lookup import DistributedTable, distributed_lookup


def make_table(n_nodes=4, capacity=64):
    keys = np.arange(0, capacity, 2)
    values = keys * 1.5
    return DistributedTable(keys, values, n_nodes, capacity)


class TestDistributedTable:
    def test_sharding(self):
        table = make_table(4, 64)
        assert table.owner(0) == 0
        assert table.owner(15) == 0
        assert table.owner(16) == 1
        assert table.owner(63) == 3

    def test_local_lookup(self):
        table = make_table()
        got = table.local_lookup(0, np.array([0, 2, 3]))
        assert got[0] == 0.0 and got[1] == 3.0 and np.isnan(got[2])

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ValueError):
            DistributedTable(np.array([0]), np.array([1.0]), 4, 30)

    def test_rejects_out_of_range_keys(self):
        with pytest.raises(ValueError):
            DistributedTable(np.array([70]), np.array([1.0]), 4, 64)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            DistributedTable(np.array([1, 1]), np.array([1.0, 2.0]), 4, 64)

    def test_rejects_misaligned_values(self):
        with pytest.raises(ValueError):
            DistributedTable(np.array([1, 2]), np.array([1.0]), 4, 64)


class TestDistributedLookup:
    @pytest.mark.parametrize("partition", [None, (1, 1), (2,)])
    def test_resolves_present_keys(self, partition):
        table = make_table(4, 64)
        rng = np.random.default_rng(21)
        queries = [rng.choice(np.arange(0, 64, 2), size=6, replace=False) for _ in range(4)]
        results = distributed_lookup(table, queries, partition=partition)
        for q, r in zip(queries, results):
            assert np.array_equal(r, q * 1.5)

    def test_missing_keys_are_nan(self):
        table = make_table(4, 64)
        queries = [np.array([1, 2]), np.array([3]), np.array([4, 5, 7]), np.array([62, 61])]
        results = distributed_lookup(table, queries)
        assert np.isnan(results[0][0]) and results[0][1] == 3.0
        assert np.isnan(results[1][0])
        assert results[3][0] == 93.0 and np.isnan(results[3][1])

    def test_empty_batches(self):
        table = make_table(4, 64)
        queries = [np.array([], dtype=np.int64) for _ in range(4)]
        results = distributed_lookup(table, queries)
        assert all(len(r) == 0 for r in results)

    def test_skewed_batches(self):
        """All queries hitting one shard still resolve (padding path)."""
        table = make_table(4, 64)
        queries = [np.arange(0, 16, 2) for _ in range(4)]  # all shard 0
        results = distributed_lookup(table, queries)
        for r in results:
            assert np.array_equal(r, np.arange(0, 16, 2) * 1.5)

    def test_preserves_query_order(self):
        table = make_table(4, 64)
        q = np.array([62, 0, 32, 2])  # deliberately shard-shuffled
        results = distributed_lookup(table, [q] + [np.array([], np.int64)] * 3)
        assert np.array_equal(results[0], q * 1.5)

    def test_rejects_wrong_batch_count(self):
        table = make_table(4, 64)
        with pytest.raises(ValueError):
            distributed_lookup(table, [np.array([0])] * 3)

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_random_workloads(self, seed):
        table = make_table(4, 64)
        rng = np.random.default_rng(seed)
        queries = [
            rng.integers(0, 64, size=rng.integers(0, 10)) for _ in range(4)
        ]
        results = distributed_lookup(table, queries)
        for q, r in zip(queries, results):
            expected = np.array([k * 1.5 if k % 2 == 0 else np.nan for k in q])
            assert np.allclose(r, expected, equal_nan=True)
