"""Tests for the distributed matrix-vector multiply."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matvec import matvec_allgather, matvec_transpose


class TestAllgatherMatvec:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
    def test_square_matches_numpy(self, n_nodes):
        rng = np.random.default_rng(41)
        a = rng.normal(size=(16, 16))
        x = rng.normal(size=16)
        assert np.allclose(matvec_allgather(a, x, n_nodes), a @ x)

    def test_rectangular_rows(self):
        rng = np.random.default_rng(42)
        a = rng.normal(size=(8, 12))
        x = rng.normal(size=12)
        assert np.allclose(matvec_allgather(a, x, 4), a @ x)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            matvec_allgather(np.zeros((4, 4)), np.zeros(5), 2)

    def test_indivisible_vector_rejected(self):
        with pytest.raises(ValueError):
            matvec_allgather(np.zeros((4, 6)), np.zeros(6), 4)

    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2 ** 32 - 1),
    )
    def test_random(self, log_nodes, per, seed):
        n_nodes = 1 << log_nodes
        size = n_nodes * per
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(size, size))
        x = rng.normal(size=size)
        assert np.allclose(matvec_allgather(a, x, n_nodes), a @ x)


class TestTransposeMatvec:
    @pytest.mark.parametrize("partition", [None, (1, 1), (2,)])
    def test_matches_numpy(self, partition):
        rng = np.random.default_rng(43)
        a = rng.normal(size=(8, 8))
        x = rng.normal(size=8)
        out = matvec_transpose(a, x, 4, partition=partition)
        assert np.allclose(out, a.T @ x)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            matvec_transpose(np.zeros((4, 6)), np.zeros(6), 2)

    def test_symmetric_matrix_equals_forward(self):
        rng = np.random.default_rng(44)
        a = rng.normal(size=(8, 8))
        a = a + a.T
        x = rng.normal(size=8)
        assert np.allclose(matvec_transpose(a, x, 4), matvec_allgather(a, x, 4))
