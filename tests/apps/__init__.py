"""Test package."""
