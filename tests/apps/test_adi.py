"""Tests for the ADI solver kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.adi import (
    ADIProblem,
    adi_reference_step,
    adi_step,
    run_adi,
    thomas_solve,
)


class TestThomas:
    def test_matches_dense_solver(self):
        rng = np.random.default_rng(31)
        size = 12
        lower, diag, upper = -0.3, 1.8, -0.25
        matrix = (
            np.diag(np.full(size, diag))
            + np.diag(np.full(size - 1, lower), -1)
            + np.diag(np.full(size - 1, upper), 1)
        )
        rhs = rng.normal(size=size)
        assert np.allclose(thomas_solve(lower, diag, upper, rhs), np.linalg.solve(matrix, rhs))

    def test_batched_systems(self):
        rng = np.random.default_rng(32)
        rhs = rng.normal(size=(5, 9))
        out = thomas_solve(-1.0, 4.0, -1.0, rhs)
        for i in range(5):
            assert np.allclose(out[i], thomas_solve(-1.0, 4.0, -1.0, rhs[i]))

    def test_identity_system(self):
        rhs = np.array([1.0, 2.0, 3.0])
        assert np.allclose(thomas_solve(0.0, 1.0, 0.0, rhs), rhs)

    def test_singular_rejected(self):
        with pytest.raises(ZeroDivisionError):
            thomas_solve(0.0, 0.0, 0.0, np.ones(3))


class TestADIStep:
    @pytest.mark.parametrize("n_nodes,partition", [(2, None), (4, (1, 1)), (8, (2, 1))])
    def test_distributed_matches_reference(self, n_nodes, partition):
        rng = np.random.default_rng(33)
        problem = ADIProblem(size=16)
        u = rng.normal(size=(16, 16))
        ref = adi_reference_step(u, problem)
        dist = adi_step(u, problem, n_nodes, partition=partition)
        assert np.allclose(dist, ref, atol=1e-13)

    def test_zero_field_stays_zero(self):
        problem = ADIProblem(size=8)
        u = np.zeros((8, 8))
        assert np.array_equal(adi_step(u, problem, 4), u)

    def test_symmetry_preserved(self):
        """A symmetric initial field stays symmetric under ADI (the
        operator is symmetric in x and y for this scheme)."""
        problem = ADIProblem(size=8)
        rng = np.random.default_rng(34)
        u = rng.normal(size=(8, 8))
        u = u + u.T
        stepped = adi_step(u, problem, 4)
        assert np.allclose(stepped, stepped.T)


class TestRunADI:
    def test_energy_dissipates(self):
        problem = ADIProblem(size=16, dt=1e-3)
        rng = np.random.default_rng(35)
        u0 = rng.normal(size=(16, 16))
        energies = [float(np.sum(u0 ** 2))]
        u = u0
        for _ in range(5):
            u = run_adi(u, problem, 4, steps=1)
            energies.append(float(np.sum(u ** 2)))
        assert all(b < a for a, b in zip(energies, energies[1:]))

    def test_smooth_mode_decay_rate(self):
        """The discrete fundamental mode decays at the scheme's known
        amplification factor (Peaceman-Rachford is exact per mode)."""
        size = 16
        problem = ADIProblem(size=size, dt=5e-4)
        x = np.arange(1, size + 1) / (size + 1)
        mode = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
        u1 = run_adi(mode, problem, 4, steps=1)
        # amplification of sin(pi x) sin(pi y): ((1 - r s)/(1 + r s))**2
        # with s = 2(1 - cos(pi h)) / h^2 * h^2/2 ... measured directly:
        ratio = u1 / mode
        assert np.allclose(ratio, ratio[1, 1], atol=1e-10)
        assert 0.0 < ratio[1, 1] < 1.0

    def test_multi_step_equals_repeated_reference(self):
        problem = ADIProblem(size=8)
        rng = np.random.default_rng(36)
        u0 = rng.normal(size=(8, 8))
        u_ref = u0.copy()
        for _ in range(3):
            u_ref = adi_reference_step(u_ref, problem)
        u_dist = run_adi(u0, problem, 8, steps=3, partition=(1, 1, 1))
        assert np.allclose(u_dist, u_ref, atol=1e-12)

    def test_shape_validation(self):
        problem = ADIProblem(size=8)
        with pytest.raises(ValueError):
            run_adi(np.zeros((4, 4)), problem, 4, steps=1)
