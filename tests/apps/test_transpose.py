"""Tests for the distributed matrix transpose."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.transpose import (
    distributed_transpose,
    gather_strips,
    split_into_strips,
    transpose_block_size,
)


class TestStrips:
    def test_roundtrip(self):
        a = np.arange(64).reshape(8, 8)
        strips = split_into_strips(a, 4)
        assert len(strips) == 4
        assert strips[1].shape == (2, 8)
        assert np.array_equal(gather_strips(strips), a)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            split_into_strips(np.zeros((4, 6)), 2)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            split_into_strips(np.zeros((6, 6)), 4)

    def test_block_size(self):
        assert transpose_block_size(16, 4) == 4 * 4 * 8
        assert transpose_block_size(16, 4, dtype=np.float32) == 64


class TestTranspose:
    @pytest.mark.parametrize("n_nodes,partition", [
        (2, None), (4, (2,)), (4, (1, 1)), (8, (2, 1)), (8, (1, 1, 1)), (8, (3,)),
    ])
    def test_matches_numpy(self, n_nodes, partition):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(16, 16))
        out = distributed_transpose(a, n_nodes, partition=partition)
        assert np.array_equal(out, a.T)

    def test_int_dtype(self):
        a = np.arange(64, dtype=np.int32).reshape(8, 8)
        assert np.array_equal(distributed_transpose(a, 4), a.T)

    def test_complex_dtype(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        assert np.array_equal(distributed_transpose(a, 4), a.T)

    def test_involution(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(8, 8))
        twice = distributed_transpose(distributed_transpose(a, 8), 8)
        assert np.array_equal(twice, a)

    def test_single_node(self):
        a = np.arange(9.0).reshape(3, 3)
        assert np.array_equal(distributed_transpose(a, 1), a.T)

    def test_rejects_non_power_of_two_nodes(self):
        with pytest.raises(ValueError):
            distributed_transpose(np.zeros((6, 6)), 3)

    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2 ** 32 - 1),
    )
    def test_random_shapes_and_nodes(self, log_nodes, blocks_per, seed):
        n_nodes = 1 << log_nodes
        size = n_nodes * blocks_per
        rng = np.random.default_rng(seed)
        a = rng.integers(-100, 100, size=(size, size)).astype(np.float64)
        assert np.array_equal(distributed_transpose(a, n_nodes), a.T)
