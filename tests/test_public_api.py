"""Tests for the top-level public API surface and doctests."""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_importable(self):
        for module_name in (
            "repro.core", "repro.model", "repro.hypercube", "repro.sim",
            "repro.comm", "repro.analysis", "repro.apps", "repro.util",
            "repro.service", "repro.plan", "repro.patterns", "repro.fabric",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_every_module_has_docstring(self):
        package = repro
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            if info.name == "repro.__main__":
                continue  # importing it would execute the CLI
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

    def test_quickstart_from_docstring(self):
        outcome = repro.multiphase_exchange(4, 32, (2, 2))
        outcome.verify()
        assert repro.best_partition(40, 7, repro.ipsc860()).partition == (4, 3)


DOCTEST_MODULES = [
    "repro",
    "repro.util.bitops",
    "repro.hypercube.topology",
    "repro.hypercube.routing",
    "repro.hypercube.subcube",
    "repro.core.partitions",
    "repro.core.blocks",
    "repro.core.shuffle",
    "repro.core.schedule",
    "repro.core.exchange",
    "repro.core.standard",
    "repro.core.optimal",
    "repro.core.multiphase",
    "repro.core.variants",
    "repro.model.cost",
    "repro.model.crossover",
    "repro.model.optimizer",
    "repro.model.vectorized",
    "repro.service.registry",
    "repro.service.batch",
    "repro.service.server",
    "repro.service.config",
    "repro.fabric.ring",
    "repro.sim.machine",
    "repro.sim.fastpath",
    "repro.comm.program",
    "repro.plan.decision",
    "repro.plan.planner",
    "repro.plan.policies",
    "repro.plan.patterns",
    "repro.apps.transpose",
    "repro.apps.fft2d",
    "repro.apps.matvec",
    "repro.patterns.broadcast",
    "repro.patterns.scatter",
    "repro.patterns.allgather",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


def test_doctests_carry_real_examples():
    attempted = 0
    for module_name in DOCTEST_MODULES:
        attempted += doctest.testmod(importlib.import_module(module_name)).attempted
    assert attempted >= 15  # the docs genuinely carry examples
