"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute
cleanly against the installed package and print its closing banner.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: (script, a phrase its successful run must print)
EXAMPLES = [
    ("quickstart.py", "regenerated on your machine"),
    ("figure3_walkthrough.py", "final state verified"),
    ("adi_transpose.py", "multiphase win region"),
    ("spectral_poisson.py", "match numpy.fft exactly"),
    ("tune_partitions.py", "hull of optimality"),
    ("beyond_the_exchange.py", "not the lockstep total"),
]


def test_all_examples_are_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {name for name, _ in EXAMPLES}


@pytest.mark.parametrize("script,phrase", EXAMPLES)
def test_example_runs(script, phrase):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert phrase in result.stdout, f"{script} did not print its closing banner"
