"""Tests for batched query resolution."""

from __future__ import annotations

import pytest

from repro.model.cost import multiphase_time
from repro.model.optimizer import best_partition
from repro.model.params import ipsc860
from repro.service.batch import Query, QueryBatch, resolve_queries
from repro.service.registry import OptimizerRegistry


@pytest.fixture()
def registry():
    return OptimizerRegistry()


class TestResolution:
    def test_results_in_input_order(self, registry):
        batch = QueryBatch(registry)
        batch.add("ipsc860", 7, 40.0)
        batch.add("hypothetical", 6, 24.0)
        batch.add("ipsc860", 5, 40.0)
        results = batch.resolve()
        assert [r.partition for r in results] == [(4, 3), (3, 3), (3, 2)]
        assert [(r.preset, r.d, r.m) for r in results] == [
            ("ipsc860", 7, 40.0),
            ("hypothetical", 6, 24.0),
            ("ipsc860", 5, 40.0),
        ]

    def test_times_bitwise_equal_scalar_model(self, registry):
        queries = [
            ("ipsc860", d, m) for d in (5, 6, 7) for m in (1.0, 24.0, 80.0, 320.0)
        ]
        for result in resolve_queries(registry, queries):
            expected = multiphase_time(
                result.m, result.d, result.partition, registry.params(result.preset)
            )
            assert result.time_us == expected

    def test_partitions_match_optimizer(self, registry):
        """Away from the ~1e-3 B switch-point refinement, the served
        partition is exactly the optimizer's choice."""
        for d in (5, 6, 7):
            for m in (1.0, 24.0, 40.0, 80.0, 160.0, 320.0):
                result = resolve_queries(registry, [("ipsc860", d, m)])[0]
                assert result.partition == best_partition(m, d, ipsc860()).partition

    def test_tags_echoed(self, registry):
        batch = QueryBatch(registry)
        batch.add("ipsc860", 6, 24.0, tag="a")
        batch.add("ipsc860", 6, 24.0, tag="b")
        assert [r.tag for r in batch.resolve()] == ["a", "b"]

    def test_tuple_and_query_inputs(self, registry):
        mixed = [("ipsc860", 6, 24.0), Query("ipsc860", 6, 24)]
        results = resolve_queries(registry, mixed)
        assert results[0].partition == results[1].partition
        assert results[1].m == 24.0

    def test_batch_clears_after_resolve(self, registry):
        batch = QueryBatch(registry)
        batch.add("ipsc860", 6, 24.0)
        assert len(batch) == 1
        batch.resolve()
        assert len(batch) == 0
        assert batch.resolve() == []


class TestCoalescing:
    def test_one_grid_call_per_winning_partition(self, registry):
        # each group's block sizes share a winner here, so each group
        # is priced by exactly one grid call over exactly its cells
        queries = [("ipsc860", 6, m) for m in (1.0, 2.0, 3.0)]
        queries += [("ipsc860", 7, m) for m in (1.0, 2.0)]
        queries += [("hypothetical", 6, 1.0)]
        resolve_queries(registry, queries)
        assert registry.stats.grid_calls == 3
        assert registry.stats.grid_cells == 6  # no cross-product waste

    def test_duplicates_cost_one_cell(self, registry):
        resolve_queries(registry, [("ipsc860", 6, 24.0)] * 10)
        assert registry.stats.grid_calls == 1
        assert registry.stats.coalesced == 9
        # 1 unique m x 1 winning partition
        assert registry.stats.grid_cells == 1

    def test_second_batch_is_all_memo(self, registry):
        queries = [("ipsc860", 6, m) for m in (1.0, 24.0, 80.0)]
        resolve_queries(registry, queries)
        calls_after_first = registry.stats.grid_calls
        results = resolve_queries(registry, queries)
        assert all(r.source == "memo" for r in results)
        assert registry.stats.grid_calls == calls_after_first
        # exactly one cell per unique block size was ever evaluated
        assert registry.stats.grid_cells == 3

    def test_extend(self, registry):
        batch = QueryBatch(registry)
        batch.extend([("ipsc860", 6, 1.0), ("ipsc860", 6, 2.0)])
        assert len(batch) == 2
        assert len(batch.resolve()) == 2

    def test_failed_extend_leaves_batch_unchanged(self, registry):
        batch = QueryBatch(registry)
        with pytest.raises(ValueError):
            batch.extend([("ipsc860", 6, 1.0), ("ipsc860", 0, 2.0)])
        assert len(batch) == 0


class TestCoverageBound:
    """Beyond the table's sweep bound the last hull segment is only an
    extrapolation, so the service re-evaluates exactly."""

    def test_beyond_bound_matches_exact_optimizer(self):
        registry = OptimizerRegistry(m_max=100.0)
        result = resolve_queries(registry, [("ipsc860", 7, 300.0)])[0]
        # the d=7 table swept to 100 B ends on (4, 3); at 300 B the true
        # optimum is the single-phase algorithm
        assert result.partition == best_partition(300.0, 7, ipsc860()).partition == (7,)
        assert result.time_us == multiphase_time(300.0, 7, (7,), ipsc860())

    def test_beyond_bound_results_are_memoized(self):
        registry = OptimizerRegistry(m_max=100.0)
        resolve_queries(registry, [("ipsc860", 7, 300.0)])
        assert resolve_queries(registry, [("ipsc860", 7, 300.0)])[0].source == "memo"

    def test_shard_records_its_sweep_bound(self, tmp_path):
        OptimizerRegistry(m_max=100.0).save_shards(tmp_path, dims=(7,))
        serving = OptimizerRegistry.from_shards(tmp_path)  # default m_max=400
        assert serving.coverage("ipsc860", 7) == 100.0
        result = resolve_queries(serving, [("ipsc860", 7, 300.0)])[0]
        assert result.partition == (7,)

    def test_shard_without_recorded_bound_is_never_trusted(self, tmp_path):
        # save_shard's public default records no sweep bound; such a
        # shard's tables must not be served as exact at any block size
        from repro.model.optimizer import hull_of_optimality
        from repro.model.store import save_shard

        save_shard(
            {7: hull_of_optimality(7, ipsc860(), m_max=100.0)},
            ipsc860(),
            tmp_path / "ipsc860.shard",
        )
        serving = OptimizerRegistry.from_shards(tmp_path)
        assert serving.coverage("ipsc860", 7) == 0.0
        result = resolve_queries(serving, [("ipsc860", 7, 300.0)])[0]
        assert result.source == "pool"
        assert result.partition == best_partition(300.0, 7, ipsc860()).partition

    def test_within_bound_uses_the_table(self):
        registry = OptimizerRegistry(m_max=100.0)
        result = resolve_queries(registry, [("ipsc860", 7, 40.0)])[0]
        assert result.partition == (4, 3)

    def test_beyond_bound_reports_pool_source(self):
        registry = OptimizerRegistry(m_max=100.0)
        result = resolve_queries(registry, [("ipsc860", 7, 300.0)])[0]
        assert result.source == "pool"

    def test_all_beyond_group_never_touches_the_table(self, tmp_path):
        # a group whose every block size exceeds the sweep bound is
        # answered by one full-pool grid call; the table must not be
        # swept (fresh registry) nor loaded (shard-backed registry)
        fresh = OptimizerRegistry(m_max=100.0)
        resolve_queries(fresh, [("ipsc860", 7, 300.0), ("ipsc860", 7, 500.0)])
        assert fresh.stats.tables_built == 0
        assert fresh.stats.tables_loaded == 0

        OptimizerRegistry(m_max=100.0).save_shards(tmp_path, dims=(7,))
        serving = OptimizerRegistry.from_shards(tmp_path)
        resolve_queries(serving, [("ipsc860", 7, 300.0)])
        assert serving.stats.tables_loaded == 0
        assert serving.stats.tables_built == 0


class TestValidation:
    def test_rejects_bad_dimension(self, registry):
        with pytest.raises(ValueError):
            QueryBatch(registry).add("ipsc860", -1, 24.0)

    def test_rejects_bad_block_size(self, registry):
        with pytest.raises(ValueError):
            QueryBatch(registry).add("ipsc860", 6, float("nan"))

    def test_unknown_preset_raises_at_resolve(self, registry):
        batch = QueryBatch(registry)
        batch.add("cray", 6, 24.0)
        with pytest.raises(ValueError, match="unknown machine preset"):
            batch.resolve()

    def test_failed_batch_leaves_no_partial_state(self, registry):
        # presets are validated before any group resolves, so a batch
        # with one bad query neither serves nor memoizes the good ones
        with pytest.raises(ValueError, match="unknown machine preset"):
            resolve_queries(
                registry, [("ipsc860", 6, 24.0), ("cray", 6, 24.0)]
            )
        assert registry.stats.queries == 0
        assert registry.stats.grid_calls == 0
        assert registry.memo_get(("ipsc860", 6, 24.0)) is None
