"""Tests for the sync/async client library and address parsing."""

from __future__ import annotations

import contextlib
import threading

import pytest

from repro.service import OptimizerRegistry
from repro.service.async_server import run_server
from repro.service.client import (
    Address,
    ServiceClient,
    ServiceError,
    parse_address,
)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.1.2.3:7831") == Address("tcp", host="10.1.2.3", port=7831)

    def test_bare_port_binds_loopback(self):
        assert parse_address(":7831") == Address("tcp", host="127.0.0.1", port=7831)

    def test_unix_prefix(self):
        addr = parse_address("unix:/tmp/x.sock")
        assert addr.kind == "unix" and addr.path == "/tmp/x.sock"
        assert str(addr) == "unix:/tmp/x.sock"

    def test_bare_path_is_unix(self):
        assert parse_address("/var/run/repro.sock").kind == "unix"

    def test_address_passthrough(self):
        addr = Address("tcp", host="h", port=1)
        assert parse_address(addr) is addr

    @pytest.mark.parametrize(
        "bad",
        ["", "localhost", "host:notaport", "host:70000", "unix:"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_tcp_str_roundtrips(self):
        assert str(parse_address("127.0.0.1:7831")) == "127.0.0.1:7831"


@pytest.fixture(scope="module")
def live_server():
    """One socket server on a background thread for the sync client."""
    holder: dict = {}
    started = threading.Event()

    def runner():
        registry = OptimizerRegistry()

        def ready(server):
            holder["address"] = str(server.address)
            started.set()

        holder["stats"] = run_server(
            registry,
            "127.0.0.1:0",
            default_preset="ipsc860",
            install_signal_handlers=False,
            ready=ready,
        )

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server never came up"
    yield holder["address"]
    if thread.is_alive():
        with contextlib.suppress(Exception):
            with ServiceClient(holder["address"]) as client:
                client.shutdown()
        thread.join(10)
    assert not thread.is_alive()


class TestServiceClient:
    def test_query(self, live_server):
        with ServiceClient(live_server) as client:
            response = client.query(7, 40)
        assert response["partition"] == [4, 3]
        assert response["preset"] == "ipsc860"

    def test_query_preset_override(self, live_server):
        with ServiceClient(live_server) as client:
            response = client.query(6, 24, preset="hypothetical")
        assert response["partition"] == [3, 3]

    def test_query_error_raises(self, live_server):
        with ServiceClient(live_server) as client:
            with pytest.raises(ServiceError, match="unknown machine preset"):
                client.query(7, 40, preset="cray")

    def test_query_many_pipelines_in_order(self, live_server):
        queries = [(5, 10.0 * i + 1) for i in range(20)]
        with ServiceClient(live_server) as client:
            responses = client.query_many(queries)
        assert len(responses) == 20
        assert all(r["ok"] for r in responses)
        assert [r["m"] for r in responses] == [m for _, m in queries]

    def test_query_many_accepts_triples_and_dicts(self, live_server):
        with ServiceClient(live_server) as client:
            responses = client.query_many(
                [("hypothetical", 6, 24.0), {"d": 7, "m": 40, "id": "x"}],
            )
        assert responses[0]["preset"] == "hypothetical"
        assert responses[1]["id"] == "x"

    def test_query_many_empty_is_noop(self, live_server):
        with ServiceClient(live_server) as client:
            assert client.query_many([]) == []

    def test_query_many_rejects_garbage_shape(self, live_server):
        with ServiceClient(live_server) as client:
            with pytest.raises(ValueError, match="query must be"):
                client.query_many([(1, 2, 3, 4)])

    def test_stats_and_presets(self, live_server):
        with ServiceClient(live_server) as client:
            client.query(7, 40)
            stats = client.stats()
            presets = client.presets()
        assert stats["stats"]["queries"] >= 1
        assert stats["server"]["connections_opened"] >= 1
        assert "ipsc860" in presets

    def test_connection_refused_is_an_oserror(self):
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1:1", timeout=0.5)
