"""Tests for memo warm-up from a JSON-lines query log."""

from __future__ import annotations

import json

from repro.service import OptimizerRegistry
from repro.service.warmup import load_query_log, warm_registry


def log_lines():
    return [
        '{"preset": "ipsc860", "d": 7, "m": 40}',
        '{"d": 5, "m": 8}',  # needs the default preset
        '{"queries": [{"preset": "ipsc860", "d": 7, "m": 40}, '
        '{"preset": "hypothetical", "d": 6, "m": 24}]}',
        json.dumps([{"preset": "ipsc860", "d": 5, "m": 8.0, "id": 3}]),  # bare array
        "",  # blank lines are not log entries
        '{"op": "stats"}',  # ops carry nothing to warm
        "{nonsense",  # logs are history: bad lines skip, never raise
        '{"preset": "ipsc860", "d": 0, "m": 40}',  # invalid query skips too
        '{"preset": "andromeda", "d": 5, "m": 8}',  # unknown preset skips
    ]


class TestLoadQueryLog:
    def test_parses_dedupes_and_counts(self):
        queries, report = load_query_log(
            log_lines(),
            default_preset="ipsc860",
            known_presets=("ipsc860", "hypothetical"),
        )
        cells = [(q.preset, q.d, q.m) for q in queries]
        assert cells == [
            ("ipsc860", 7, 40.0),
            ("ipsc860", 5, 8.0),
            ("hypothetical", 6, 24.0),
        ]
        assert report.lines == 8  # the blank line is not counted
        assert report.queries == 7  # every query parsed out of a query line
        assert report.unique == 3
        assert report.skipped == 4  # op, bad JSON, d=0, unknown preset
        assert "3 unique" in report.describe()

    def test_reads_from_a_file(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(log_lines()) + "\n")
        queries, report = load_query_log(path, default_preset="ipsc860")
        assert report.unique == len(queries) == 4  # no preset filter here
        assert any(q.preset == "andromeda" for q in queries)

    def test_no_default_preset_skips_bare_queries(self):
        queries, report = load_query_log(['{"d": 5, "m": 8}'])
        assert queries == [] and report.skipped == 1

    def test_tags_are_dropped(self):
        queries, _ = load_query_log(['{"preset": "ipsc860", "d": 5, "m": 8, "id": 77}'])
        assert queries[0].tag is None


class TestWarmRegistry:
    def test_logged_cells_answer_from_memo(self):
        registry = OptimizerRegistry()
        report = warm_registry(registry, log_lines(), default_preset="ipsc860")
        assert report.unique == 3
        # replaying the logged traffic is now free: all memo hits
        results = registry.resolve(
            [("ipsc860", 7, 40.0), ("ipsc860", 5, 8.0), ("hypothetical", 6, 24.0)]
        )
        assert [r.source for r in results] == ["memo", "memo", "memo"]

    def test_unknown_preset_in_log_never_breaks_warmup(self):
        registry = OptimizerRegistry(presets={"ipsc860": __import__("repro").ipsc860()})
        report = warm_registry(
            registry,
            ['{"preset": "hypothetical", "d": 6, "m": 24}',
             '{"preset": "ipsc860", "d": 5, "m": 8}'],
        )
        assert report.unique == 1 and report.skipped == 1

    def test_empty_log_is_fine(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        registry = OptimizerRegistry()
        report = warm_registry(registry, path)
        assert report.unique == 0 and registry.stats.queries == 0
