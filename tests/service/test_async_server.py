"""Tests for the asyncio socket transport and its micro-batcher."""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.service.async_server import AsyncOptimizerServer
from repro.service.client import AsyncServiceClient
from repro.service.registry import OptimizerRegistry
from repro.service.server import handle_request
from tests.service.protocol_cases import CASE_IDS, CASE_MAX_QUERIES, ERROR_CASES, VALID_LINE

HAS_UNIX = hasattr(socket, "AF_UNIX")


def sock_address(tmp_path):
    """A unix path where available (deterministic loopback), else TCP."""
    if HAS_UNIX:
        return f"unix:{tmp_path / 'server.sock'}"
    return "127.0.0.1:0"


async def started_server(tmp_path, registry=None, **kwargs):
    server = AsyncOptimizerServer(
        registry if registry is not None else OptimizerRegistry(), **kwargs
    )
    await server.start(sock_address(tmp_path))
    return server


class TestSingleClient:
    def test_roundtrip_matches_stdio_semantics(self, tmp_path):
        """The socket answer is the stdio answer, field for field."""

        async def scenario():
            server = await started_server(tmp_path, default_preset="ipsc860")
            async with await AsyncServiceClient.connect(server.address) as client:
                response = await client.request({"d": 7, "m": 40, "id": 9})
            await server.aclose()
            return response

        response = asyncio.run(scenario())
        expected = handle_request(
            {"d": 7, "m": 40, "id": 9}, OptimizerRegistry(), default_preset="ipsc860"
        )
        assert response == expected
        assert response["partition"] == [4, 3] and response["id"] == 9

    def test_pipelined_responses_come_back_in_request_order(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path, default_preset="ipsc860")
            async with await AsyncServiceClient.connect(server.address) as client:
                responses = await client.query_many(
                    [{"d": 5 + (i % 3), "m": 1.0 + i, "id": i} for i in range(30)]
                )
            await server.aclose()
            return responses, server

        responses, server = asyncio.run(scenario())
        assert [r["id"] for r in responses] == list(range(30))
        assert all(r["ok"] for r in responses)
        assert server.stats.requests == 30 and server.stats.responses == 30

    def test_batch_and_bare_array_forms(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path, default_preset="ipsc860")
            async with await AsyncServiceClient.connect(server.address) as client:
                wrapped = await client.request(
                    {"queries": [{"d": 7, "m": 40}, {"d": 5, "m": 40}], "id": 3}
                )
                bare_line = json.dumps([{"d": 7, "m": 40}])
                client._writer.write(bare_line.encode() + b"\n")
                await client._writer.drain()
                bare = await client._read_response()
            await server.aclose()
            return wrapped, bare

        wrapped, bare = asyncio.run(scenario())
        assert wrapped["ok"] and wrapped["id"] == 3
        assert [r["partition"] for r in wrapped["results"]] == [[4, 3], [3, 2]]
        assert bare["ok"] and bare["results"][0]["source"] == "memo"


class TestCrossClientBatching:
    def test_one_write_two_queries_coalesce_into_one_flush(self, tmp_path):
        """Two pipelined queries arrive in one segment, so both are
        admitted in the same event-loop turn — exactly one batch."""

        async def scenario():
            server = await started_server(tmp_path, default_preset="ipsc860")
            async with await AsyncServiceClient.connect(server.address) as client:
                responses = await client.query_many([(7, 40.0), (7, 80.0)])
            await server.aclose()
            return responses, server

        responses, server = asyncio.run(scenario())
        assert all(r["ok"] for r in responses)
        assert server.stats.batches == 1
        assert server.stats.peak_batch_queries == 2
        # the flush fired at the end of the admission turn, not because
        # a hold window expired
        assert server.stats.flushes_drain == 1
        assert server.stats.flushes_timer == 0

    def test_hold_window_gathers_occupancy_across_turns(self, tmp_path):
        """With ``hold_us > 0`` the batch waits out the window, so two
        *separate* round-trip-spaced writes still share one flush."""

        async def scenario():
            server = await started_server(
                tmp_path, default_preset="ipsc860", hold_us=100_000.0
            )
            async with await AsyncServiceClient.connect(server.address) as client:
                client._writer.write(b'{"d": 7, "m": 40, "id": 1}\n')
                await client._writer.drain()
                await asyncio.sleep(0.01)  # a later turn, well inside the hold
                client._writer.write(b'{"d": 7, "m": 80, "id": 2}\n')
                await client._writer.drain()
                first = await client._read_response()
                second = await client._read_response()
            await server.aclose()
            return first, second, server

        first, second, server = asyncio.run(scenario())
        assert first["ok"] and second["ok"]
        assert server.stats.batches == 1
        assert server.stats.peak_batch_queries == 2
        assert server.stats.flushes_timer == 1

    def test_eight_concurrent_clients_share_batches(self, tmp_path):
        n_clients, per_client = 8, 10

        async def scenario():
            registry = OptimizerRegistry()
            server = await started_server(tmp_path, registry=registry)

            async def one_client(k):
                async with await AsyncServiceClient.connect(server.address) as client:
                    return await client.query_many(
                        [("ipsc860", 7, 1.0 + k * per_client + i) for i in range(per_client)]
                    )

            answers = await asyncio.gather(*[one_client(k) for k in range(n_clients)])
            await server.aclose()
            return answers, server

        answers, server = asyncio.run(scenario())
        flat = [r for per in answers for r in per]
        assert len(flat) == n_clients * per_client and all(r["ok"] for r in flat)
        # ground truth from a fresh registry
        expected = OptimizerRegistry().resolve(
            [("ipsc860", r["d"], r["m"]) for r in flat]
        )
        assert [r["partition"] for r in flat] == [list(e.partition) for e in expected]
        assert [r["time_us"] for r in flat] == [e.time_us for e in expected]
        # cross-client coalescing actually happened
        stats = server.stats
        assert stats.batched_queries == n_clients * per_client
        assert stats.batches <= (n_clients * per_client) // 2
        assert stats.peak_batch_queries > 1

    def test_max_batch_triggers_size_flush(self, tmp_path):
        async def scenario():
            server = await started_server(
                tmp_path, default_preset="ipsc860", max_batch=4
            )
            async with await AsyncServiceClient.connect(server.address) as client:
                await client.query_many([(5, 1.0 + i) for i in range(8)])
            await server.aclose()
            return server

        server = asyncio.run(scenario())
        assert server.stats.flushes_size >= 1
        assert server.stats.peak_batch_queries <= 8


class TestOps:
    def test_stats_op_reports_registry_and_server(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path, default_preset="ipsc860")
            async with await AsyncServiceClient.connect(server.address) as client:
                await client.query(7, 40)
                stats = await client.stats()
                presets = await client.presets()
            await server.aclose()
            return stats, presets

        stats, presets = asyncio.run(scenario())
        assert stats["ok"] and stats["op"] == "stats"
        assert stats["stats"]["queries"] == 1  # the registry section
        server_section = stats["server"]  # socket transport addition
        assert server_section["connections_active"] == 1
        assert server_section["batches"] == 1
        assert presets == ["hypothetical", "ipsc860"]


class TestShutdownAndDrain:
    def test_shutdown_op_acks_then_drains(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path, default_preset="ipsc860")
            client = await AsyncServiceClient.connect(server.address)
            # pipelined work and the shutdown on one connection: every
            # response precedes the ack, strictly in order
            docs = [{"d": 7, "m": 40, "id": 1}, {"d": 5, "m": 8, "id": 2}, {"op": "shutdown"}]
            await client._write_lines(docs)
            responses = [await client._read_response() for _ in docs]
            await asyncio.wait_for(server.wait_closed(), timeout=10)
            refused = None
            try:
                await AsyncServiceClient.connect(server.address)
            except OSError as exc:
                refused = exc
            await client.aclose()
            return responses, refused, server

        responses, refused, server = asyncio.run(scenario())
        assert [r.get("id") for r in responses[:2]] == [1, 2]
        assert all(r["ok"] for r in responses)
        assert responses[2]["op"] == "shutdown" and responses[2]["draining"]
        assert refused is not None  # nothing listens after the drain
        assert server.stats.connections_closed == server.stats.connections_opened
        assert server.stats.in_flight == 0

    def test_drain_answers_admitted_requests_after_client_half_close(self, tmp_path):
        """A connection whose read loop already ended (client EOF) still
        gets every admitted response during aclose(): the drain cancel
        must not tear down the response writer mid-queue."""

        async def scenario():
            # a long hold window parks the admitted queries un-resolved,
            # so aclose() arrives while the writer is still waiting
            server = await started_server(
                tmp_path, default_preset="ipsc860", hold_us=250_000.0
            )
            client = await AsyncServiceClient.connect(server.address)
            client._writer.write(
                b'{"d": 7, "m": 40, "id": 1}\n{"d": 5, "m": 8, "id": 2}\n'
            )
            await client._writer.drain()
            client._writer.write_eof()  # half-close: no more requests
            await asyncio.sleep(0.05)  # server admits both, then parks
            await asyncio.wait_for(server.aclose(), timeout=10)
            responses = [await client._read_response() for _ in range(2)]
            eof = await client._reader.readline()
            await client.aclose()
            return responses, eof, server

        responses, eof, server = asyncio.run(scenario())
        assert [r["id"] for r in responses] == [1, 2]
        assert all(r["ok"] for r in responses)
        assert eof == b""
        assert server.stats.responses == 2 and server.stats.in_flight == 0

    def test_aclose_terminates_when_client_never_reads(self, tmp_path):
        """A client that pipelines forever and reads nothing fills the
        socket buffers; shutdown must still finish — the drain waits
        ``drain_timeout`` for that connection, then drops its backlog
        (and the pipelining window keeps the backlog bounded)."""

        async def scenario():
            server = await started_server(
                tmp_path,
                default_preset="ipsc860",
                max_pipeline=64,
                drain_timeout=0.2,
            )
            client = await AsyncServiceClient.connect(server.address)
            # several MB of eventual responses, far beyond socket and
            # transport buffers, written without ever reading one
            line = json.dumps({"queries": [{"d": 7, "m": 40.0}] * 200}).encode() + b"\n"
            client._writer.write(line * 100)
            await asyncio.sleep(0.2)  # let the server admit and stall
            await asyncio.wait_for(server.aclose(), timeout=10)
            await client.aclose()
            return server

        server = asyncio.run(scenario())
        assert server.stats.connections_closed == server.stats.connections_opened
        # the gauge reconciles even for responses that were dropped
        assert server.stats.in_flight == 0
        # backpressure really kicked in: the pipelining window stopped
        # admission well before the 100 requests the client wrote
        assert server.stats.requests < 100

    def test_aclose_is_idempotent(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            await server.aclose()
            await server.aclose()
            return server

        server = asyncio.run(scenario())
        assert server.stats.connections_opened == 0

    def test_unix_socket_file_removed_on_close(self, tmp_path):
        if not HAS_UNIX:
            pytest.skip("no unix sockets on this platform")
        path = tmp_path / "server.sock"

        async def scenario():
            server = await started_server(tmp_path)
            assert path.exists()
            await server.aclose()

        asyncio.run(scenario())
        assert not path.exists()


class TestSharedErrorPaths:
    """The transport-independent error table, over a socket.

    Mirrors ``TestSharedErrorPaths`` in ``test_server.py`` — the stdio
    loop and this transport must answer malformed traffic identically.
    """

    @pytest.mark.parametrize("case_id,line,needle", ERROR_CASES, ids=CASE_IDS)
    def test_error_then_keep_serving(self, tmp_path, case_id, line, needle):
        async def scenario():
            server = await started_server(
                tmp_path, max_queries=CASE_MAX_QUERIES
            )
            async with await AsyncServiceClient.connect(server.address) as client:
                client._writer.write(line.encode() + b"\n" + VALID_LINE.encode() + b"\n")
                await client._writer.drain()
                first = await client._read_response()
                second = await client._read_response()
            await server.aclose()
            return first, second

        first, second = asyncio.run(scenario())
        assert not first["ok"], case_id
        assert needle in first["error"], first["error"]
        # the connection survives every malformed request
        assert second["ok"] and second["partition"] == [4, 3]

    def test_error_text_identical_to_stdio(self, tmp_path):
        """Not just 'an error': the same error documents, byte for byte."""

        async def scenario():
            server = await started_server(tmp_path, max_queries=CASE_MAX_QUERIES)
            async with await AsyncServiceClient.connect(server.address) as client:
                responses = []
                for _, line, _ in ERROR_CASES:
                    client._writer.write(line.encode() + b"\n")
                    await client._writer.drain()
                    responses.append(await client._read_response())
            await server.aclose()
            return responses

        socket_responses = asyncio.run(scenario())
        registry = OptimizerRegistry()
        for (case_id, line, _), got in zip(ERROR_CASES, socket_responses):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                expected = {"ok": False, "error": f"invalid JSON: {exc}"}
            else:
                expected = handle_request(
                    obj, registry, max_queries=CASE_MAX_QUERIES
                )
            assert got == expected, case_id


class TestTransportLimits:
    def test_overlong_line_answers_in_band_then_closes(self, tmp_path):
        async def scenario():
            server = await started_server(
                tmp_path, default_preset="ipsc860", max_line_bytes=1024
            )
            async with await AsyncServiceClient.connect(server.address) as client:
                client._writer.write(b'{"d": 7, "m": ' + b"1" * 4096 + b"}\n")
                await client._writer.drain()
                response = await client._read_response()
                eof = await client._reader.readline()
            await server.aclose()
            return response, eof

        response, eof = asyncio.run(scenario())
        assert not response["ok"] and "exceeds" in response["error"]
        assert eof == b""  # framing is gone, so the server hung up
